//! Integer histograms.
//!
//! Used for cluster-size distributions (Figure 10) and per-iteration pair
//! counts (Figures 13/14). Keys are `usize` buckets; values are counts.

use crate::FxHashMap;

/// A sparse histogram over non-negative integer buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: FxHashMap<usize, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the count for `bucket` by one.
    pub fn record(&mut self, bucket: usize) {
        *self.counts.entry(bucket).or_insert(0) += 1;
    }

    /// Increments the count for `bucket` by `n`.
    pub fn record_n(&mut self, bucket: usize, n: u64) {
        if n > 0 {
            *self.counts.entry(bucket).or_insert(0) += n;
        }
    }

    /// Count stored for `bucket` (zero if never recorded).
    #[must_use]
    pub fn count(&self, bucket: usize) -> u64 {
        self.counts.get(&bucket).copied().unwrap_or(0)
    }

    /// Total number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct buckets with a non-zero count.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Largest bucket with a non-zero count.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.keys().copied().max()
    }

    /// `(bucket, count)` pairs sorted by bucket, for stable reporting.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(usize, u64)> {
        let mut entries: Vec<(usize, u64)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(bucket, _)| bucket);
        entries
    }

    /// Weighted sum `Σ bucket · count` — e.g. total objects when buckets are
    /// cluster sizes and counts are numbers of clusters.
    #[must_use]
    pub fn weighted_total(&self) -> u64 {
        self.counts.iter().map(|(&b, &c)| b as u64 * c).sum()
    }

    /// Renders a compact one-line-per-bucket table, used by experiment
    /// binaries for Figure-10-style output.
    #[must_use]
    pub fn render_table(&self, bucket_label: &str, count_label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{bucket_label:>12}  {count_label:>12}");
        for (bucket, count) in self.sorted_entries() {
            let _ = writeln!(out, "{bucket:>12}  {count:>12}");
        }
        out
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for bucket in iter {
            h.record(bucket);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(7);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(5), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.num_buckets(), 2);
        assert_eq!(h.max_bucket(), Some(7));
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(4, 0);
        assert_eq!(h.num_buckets(), 0);
        h.record_n(4, 5);
        assert_eq!(h.count(4), 5);
    }

    #[test]
    fn sorted_entries_and_weighted_total() {
        let h: Histogram = vec![2, 2, 2, 102, 1].into_iter().collect();
        assert_eq!(h.sorted_entries(), vec![(1, 1), (2, 3), (102, 1)]);
        // 1*1 + 2*3 + 102*1 = 109 objects in total.
        assert_eq!(h.weighted_total(), 109);
    }

    #[test]
    fn render_table_contains_rows() {
        let h: Histogram = vec![1, 1, 5].into_iter().collect();
        let table = h.render_table("size", "clusters");
        assert!(table.contains("size"));
        assert!(table.contains("clusters"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_bucket(), None);
        assert!(h.sorted_entries().is_empty());
    }
}
