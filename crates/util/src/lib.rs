//! Shared utilities for the `crowdjoin` workspace.
//!
//! This crate deliberately has a tiny, dependency-light surface:
//!
//! * [`hash`] — an Fx-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases. Entity-resolution workloads hash millions of small integer keys
//!   (object ids, cluster roots); SipHash dominates profiles there, so the
//!   perf-book recommendation of an Fx-style multiply hasher is implemented
//!   in-tree rather than pulling an extra dependency.
//! * [`interner`] — a dense `str -> u32` token dictionary. The matcher
//!   tokenizes every record field exactly once into interned ids and all
//!   downstream similarity machinery (tf-idf postings, Jaccard merges,
//!   prefix filters) works on sorted integer slices instead of `String`s.
//! * [`rng`] — deterministic seeding helpers. Every stochastic component in
//!   the workspace (dataset generators, the crowd simulator, random labeling
//!   orders) takes an explicit `u64` seed so experiments reproduce
//!   bit-for-bit.
//! * [`stats`] — streaming summary statistics and percentile helpers used by
//!   the benchmark harness when reporting experiment rows.
//! * [`histogram`] — small integer histograms (cluster-size distributions,
//!   per-iteration pair counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod histogram;
pub mod interner;
pub mod rng;
pub mod stats;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use histogram::Histogram;
pub use interner::Interner;
pub use rng::{derive_seed, seeded_rng, SplitMix64};
pub use stats::Summary;
