//! String interning: a workspace-level token dictionary.
//!
//! Entity-resolution pipelines tokenize every record field and then compare
//! token *sets* millions of times. Comparing `String`s re-hashes and
//! re-compares bytes on every probe; interning maps each distinct token to a
//! dense `u32` id once, so the hot paths (tf-idf postings, Jaccard merges,
//! prefix filters) work on sorted integer slices instead.
//!
//! Ids are assigned densely in first-encounter order, which makes every
//! structure built on top of an [`Interner`] deterministic for a fixed input
//! order.

use crate::hash::FxHashMap;

/// A dense `str -> u32` dictionary with reverse lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `token`, assigning the next dense id on first
    /// encounter.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct tokens are interned.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow: > u32::MAX tokens");
        let boxed: Box<str> = token.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// The id of `token`, if it has been interned.
    #[must_use]
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`Interner::intern`].
    #[must_use]
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct tokens interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Merges `other`'s dictionary into `self`, returning the id remap
    /// table: `remap[local_id] = global_id` for every id of `other`.
    ///
    /// `other`'s tokens are interned in ascending local-id order — i.e. in
    /// `other`'s first-encounter order. This is what makes parallel
    /// tokenization deterministic: workers intern disjoint input chunks into
    /// local dictionaries, and absorbing the chunk dictionaries *in chunk
    /// order* assigns every token the exact id a sequential pass over the
    /// concatenated input would have assigned (a token's global first
    /// encounter is in the first chunk that saw it, and within that chunk
    /// local-id order is first-encounter order).
    ///
    /// # Panics
    ///
    /// Panics if the merged dictionary exceeds `u32::MAX` tokens.
    #[must_use]
    pub fn absorb(&mut self, other: &Interner) -> Vec<u32> {
        other.names.iter().map(|name| self.intern(name)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_first_encounter_ids() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern("sony"), 0);
        assert_eq!(interner.intern("tv"), 1);
        assert_eq!(interner.intern("sony"), 0, "re-interning is stable");
        assert_eq!(interner.intern("black"), 2);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let ids: Vec<u32> = ["a", "bb", "ccc", "a"].iter().map(|t| interner.intern(t)).collect();
        assert_eq!(ids, vec![0, 1, 2, 0]);
        assert_eq!(interner.resolve(1), "bb");
        assert_eq!(interner.get("ccc"), Some(2));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn empty_dictionary() {
        let interner = Interner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
        assert_eq!(interner.get(""), None);
    }

    #[test]
    fn absorb_reproduces_the_sequential_id_assignment() {
        // Tokens interned in one pass over the concatenated input...
        let stream = ["tv", "sony", "tv", "black", "sony", "eos", "canon", "black"];
        let mut sequential = Interner::new();
        let seq_ids: Vec<u32> = stream.iter().map(|t| sequential.intern(t)).collect();
        // ...versus two chunk-local interners absorbed in chunk order.
        let (left, right) = stream.split_at(3);
        let mut a = Interner::new();
        let a_ids: Vec<u32> = left.iter().map(|t| a.intern(t)).collect();
        let mut b = Interner::new();
        let b_ids: Vec<u32> = right.iter().map(|t| b.intern(t)).collect();
        let mut merged = Interner::new();
        let remap_a = merged.absorb(&a);
        let remap_b = merged.absorb(&b);
        let merged_ids: Vec<u32> = a_ids
            .iter()
            .map(|&id| remap_a[id as usize])
            .chain(b_ids.iter().map(|&id| remap_b[id as usize]))
            .collect();
        assert_eq!(merged_ids, seq_ids);
        assert_eq!(merged.len(), sequential.len());
        for id in 0..merged.len() as u32 {
            assert_eq!(merged.resolve(id), sequential.resolve(id));
        }
    }

    #[test]
    fn absorb_into_empty_is_the_identity() {
        let mut src = Interner::new();
        for t in ["a", "b", "c"] {
            src.intern(t);
        }
        let mut dst = Interner::new();
        let remap = dst.absorb(&src);
        assert_eq!(remap, vec![0, 1, 2]);
        assert_eq!(dst.len(), 3);
    }

    #[test]
    fn empty_string_is_a_token() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern(""), 0);
        assert_eq!(interner.get(""), Some(0));
        assert_eq!(interner.resolve(0), "");
    }
}
