//! String interning: a workspace-level token dictionary.
//!
//! Entity-resolution pipelines tokenize every record field and then compare
//! token *sets* millions of times. Comparing `String`s re-hashes and
//! re-compares bytes on every probe; interning maps each distinct token to a
//! dense `u32` id once, so the hot paths (tf-idf postings, Jaccard merges,
//! prefix filters) work on sorted integer slices instead.
//!
//! Ids are assigned densely in first-encounter order, which makes every
//! structure built on top of an [`Interner`] deterministic for a fixed input
//! order.

use crate::hash::FxHashMap;

/// A dense `str -> u32` dictionary with reverse lookup.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Interner {
    /// An empty dictionary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `token`, assigning the next dense id on first
    /// encounter.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct tokens are interned.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow: > u32::MAX tokens");
        let boxed: Box<str> = token.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// The id of `token`, if it has been interned.
    #[must_use]
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never returned by [`Interner::intern`].
    #[must_use]
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct tokens interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_first_encounter_ids() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern("sony"), 0);
        assert_eq!(interner.intern("tv"), 1);
        assert_eq!(interner.intern("sony"), 0, "re-interning is stable");
        assert_eq!(interner.intern("black"), 2);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let ids: Vec<u32> = ["a", "bb", "ccc", "a"].iter().map(|t| interner.intern(t)).collect();
        assert_eq!(ids, vec![0, 1, 2, 0]);
        assert_eq!(interner.resolve(1), "bb");
        assert_eq!(interner.get("ccc"), Some(2));
        assert_eq!(interner.get("missing"), None);
    }

    #[test]
    fn empty_dictionary() {
        let interner = Interner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
        assert_eq!(interner.get(""), None);
    }

    #[test]
    fn empty_string_is_a_token() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern(""), 0);
        assert_eq!(interner.get(""), Some(0));
        assert_eq!(interner.resolve(0), "");
    }
}
