//! Summary statistics for experiment reporting.

/// Accumulated summary of a sample of `f64` observations.
///
/// Built either incrementally via [`Summary::push`] or in one shot with
/// [`Summary::from_slice`]. Percentiles use the nearest-rank method on a
/// sorted copy of the data (the sample sizes in this workspace are small
/// enough that keeping the observations is cheap and exact).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from a slice of observations.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation. Non-finite values are ignored (they would poison
    /// every aggregate); callers that care should validate before pushing.
    pub fn push(&mut self, value: f64) {
        if value.is_finite() {
            self.values.push(value);
        }
    }

    /// Number of (finite) observations recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or `None` for an empty summary.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Minimum observation.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Sample standard deviation (Bessel-corrected). `None` when fewer than
    /// two observations are available.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        let n = self.values.len();
        if n < 2 {
            return None;
        }
        let mean = self.mean()?;
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Some(var.sqrt())
    }

    /// Percentile in `[0, 100]` via nearest-rank on sorted data.
    ///
    /// Returns `None` for an empty summary or an out-of-range `p`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.values.is_empty() || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare totally"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_yields_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.median().is_none());
    }

    #[test]
    fn basic_aggregates() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        let sd = s.std_dev().unwrap();
        assert!((sd - 1.2909944487).abs() < 1e-9);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_slice(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(0.0), Some(10.0));
        assert_eq!(s.percentile(20.0), Some(10.0));
        assert_eq!(s.percentile(50.0), Some(30.0));
        assert_eq!(s.percentile(100.0), Some(50.0));
        assert!(s.percentile(101.0).is_none());
        assert!(s.percentile(-1.0).is_none());
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut s = Summary::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn single_value_std_dev_is_none() {
        let s = Summary::from_slice(&[5.0]);
        assert!(s.std_dev().is_none());
        assert_eq!(s.median(), Some(5.0));
    }
}
