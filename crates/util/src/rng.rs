//! Deterministic random-number helpers.
//!
//! All stochastic behaviour in the workspace flows through explicit `u64`
//! seeds. Two tools are provided:
//!
//! * [`seeded_rng`] — builds a [`rand::rngs::StdRng`] from a seed; used where
//!   rich distributions (`random_range`, shuffles) are needed.
//! * [`SplitMix64`] — a tiny, allocation-free generator used to *derive*
//!   independent child seeds from a parent seed (e.g. one seed per worker in
//!   the crowd simulator) without correlating their streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

// Re-exported so downstream crates get the full method surface (`random_range`
// and friends live on `RngExt` in rand 0.10) with one import.
pub use rand::{Rng, RngExt};

/// Builds a deterministic [`StdRng`] from a `u64` seed.
///
/// ```
/// use rand::RngExt;
/// let mut a = crowdjoin_util::seeded_rng(7);
/// let mut b = crowdjoin_util::seeded_rng(7);
/// assert_eq!(a.random_range(0..1_000_000), b.random_range(0..1_000_000));
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from `(parent, stream)`.
///
/// Used to fan one experiment seed out into per-component seeds (dataset,
/// worker pool, labeling order, ...) so that changing one component's stream
/// id never perturbs another component's randomness.
#[must_use]
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut mix = SplitMix64::new(parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    mix.next_u64()
}

/// The SplitMix64 generator (Steele, Lea & Flood; public domain reference
/// algorithm). Passes BigCrush when used as a raw stream and is the standard
/// tool for seed derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let second = g.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), first);
        assert_eq!(h.next_u64(), second);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn derived_seeds_differ_by_stream() {
        let parent = 42;
        let a = derive_seed(parent, 0);
        let b = derive_seed(parent, 1);
        let c = derive_seed(parent, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // And are stable.
        assert_eq!(derive_seed(parent, 0), a);
    }

    #[test]
    fn seeded_rng_reproducible() {
        use rand::RngExt;
        let mut a = seeded_rng(5);
        let mut b = seeded_rng(5);
        let va: Vec<u32> = (0..16).map(|_| a.random_range(0..1000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.random_range(0..1000)).collect();
        assert_eq!(va, vb);
    }
}
