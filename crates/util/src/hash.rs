//! Fx-style hashing.
//!
//! The algorithm is the one popularized by Firefox and rustc: a rotate / xor /
//! multiply loop over machine words. It is not HashDoS-resistant, which is
//! acceptable everywhere in this workspace: keys are internally generated
//! object/cluster/worker ids, never attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the 64-bit Fx hash ("golden ratio" prime).
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys.
///
/// Drop-in replacement for the default SipHash hasher via the
/// [`FxHashMap`]/[`FxHashSet`] aliases:
///
/// ```
/// use crowdjoin_util::FxHashMap;
///
/// let mut m: FxHashMap<u32, &str> = FxHashMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // The chunk is exactly 8 bytes, so the conversion cannot fail.
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so prefixes hash differently.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_one(12345u64), hash_one(12345u64));
        assert_eq!(hash_one("crowdjoin"), hash_one("crowdjoin"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Not a distribution test, just a sanity check that the mixer is live.
        let hashes: Vec<u64> = (0u32..64).map(hash_one).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn distinguishes_prefixes() {
        assert_ne!(hash_one("ab"), hash_one("ab\0"));
        assert_ne!(hash_one(b"abcdefg".as_slice()), hash_one(b"abcdefgh".as_slice()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i + 1), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i + 1)), Some(&i));
        }

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.extend(0..100u64);
        assert!(set.contains(&42));
        assert!(!set.contains(&100));
    }
}
