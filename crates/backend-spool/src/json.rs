//! A deliberately tiny JSON subset: enough to write HIT files and read
//! answer files, with zero dependencies (the build container has no
//! registry access, so `serde` is not an option).
//!
//! Supported: objects, arrays, double-quoted strings with the standard
//! escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`), numbers (parsed as `f64`;
//! integers round-trip exactly up to 2⁵³), `true`/`false`/`null`, and
//! arbitrary whitespace. Trailing garbage after the top-level value is an
//! error — an answer file must be exactly one JSON document.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (keys are not deduplicated; lookups take
    /// the first match).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// First value of `key` in an object, if any.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives and fractions).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses exactly one JSON document.
///
/// # Errors
///
/// A human-readable description (with byte offset) of the first syntax
/// error, or of trailing non-whitespace after the document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogates are not paired (the writer never emits
                        // them); map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Advance one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_roundtrip_document() {
        let doc = r#"{"hit": "h-0-1", "tasks": [{"id": 42, "truth": true, "priority": 0.95},
                      {"id": 7, "truth": false, "priority": 0.5}], "note": null}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(v.get("hit").and_then(Value::as_str), Some("h-0-1"));
        let tasks = v.get("tasks").and_then(Value::as_arr).expect("tasks");
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(tasks[0].get("truth").and_then(Value::as_bool), Some(true));
        assert_eq!(tasks[1].get("priority").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("note"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}ü");
        let v = parse(&out).expect("parse escaped string");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}ü"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err(), "trailing comma");
        assert!(parse("true false").is_err(), "trailing data");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err(), "missing colon");
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert!(parse("1..2").is_err());
    }

    #[test]
    fn big_task_ids_roundtrip_exactly() {
        // Packed pair ids reach (a << 32) | b; both halves must survive.
        let id = (123_456u64 << 32) | 789_012;
        let doc = format!("{{\"id\": {id}}}");
        assert_eq!(parse(&doc).unwrap().get("id").and_then(Value::as_u64), Some(id));
    }
}
