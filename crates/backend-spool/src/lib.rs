//! # crowdjoin-backend-spool — drive the engine with an external crowd
//!
//! The engine's `CrowdBackend` layer (see `crowdjoin-sim`) makes the crowd
//! a pluggable choice; this crate is the first backend whose answers come
//! from **outside the process**. It publishes HITs as JSON files into a
//! spool directory and polls an answers directory on wall-clock time —
//! making a crowdjoin job drivable by another program, a queue worker
//! fleet, or a human with a text editor, end-to-end testable without any
//! network.
//!
//! ```text
//! engine ──ShardTask── SpoolBackend ──writes──▶ <spool>/hits/h-0-0.json
//!                            ▲                          │
//!                            │                          ▼   (anything:
//!                       polls answers/          external answerer  a script,
//!                            │                          │    a human, qurk…)
//!                            └──reads── <spool>/answers/h-0-0.json
//! ```
//!
//! The engine side is *identical* to the simulator path — same `ShardTask`
//! state machines, same event loop, same write-ahead journal — only the
//! backend (and its wall-clock `TimeSource`) differs. With a journal
//! attached, a killed spool job resumes without re-asking a single
//! journaled question: the answers are fed back through the labelers and
//! only the unanswered remainder is re-published.
//!
//! See [`SpoolBackend`] for the exact file protocol and [`answer_pending`]
//! for a reference external answerer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod spool;

pub use spool::{
    answer_pending, pending_hits, retract_unanswered_hits, write_answers, SpoolBackend,
    SpoolConfig, SpoolFactory, SpoolQuestion,
};
