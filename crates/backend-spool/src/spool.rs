//! The spool-directory backend: HITs out as JSON files, answers back as
//! JSON files, wall-clock time in between.

use crate::json::{self, Value};
use crowdjoin_sim::{
    BackendFactory, CrowdBackend, PlatformConfig, PlatformStats, ResolvedTask, ShardContext,
    SimDuration, TaskSpec, TimeSource, VirtualTime, WallClock,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide uniquifier folded into each backend's run nonce.
static INSTANCE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A nonce unique across processes and across backend instances within a
/// process, so HIT names from different runs (e.g. a crashed job and its
/// resume) sharing one spool directory can never collide — a stale
/// `answers/` file must never be taken as the answer to a *new* HIT that
/// happens to reuse the name.
fn run_nonce() -> String {
    let millis = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    // Separators matter: concatenated hex would be ambiguous across
    // (pid, counter) boundaries and could collide between processes.
    format!(
        "{millis:x}.{:x}.{:x}",
        std::process::id(),
        INSTANCE_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Consecutive failed parses of one answer file before the backend
/// declares it malformed and fails stop (a partially-written file from a
/// non-atomic answerer looks malformed briefly; a genuinely bad file looks
/// malformed forever).
const MALFORMED_POLL_LIMIT: u32 = 200;

/// Tunables of the spool backend.
#[derive(Debug, Clone)]
pub struct SpoolConfig {
    /// Spool root. HITs appear under `<dir>/hits/`, answers are read from
    /// `<dir>/answers/`.
    pub dir: PathBuf,
    /// How long the event loop waits between polls of the answers
    /// directory while HITs are outstanding.
    pub poll_interval: SimDuration,
}

impl SpoolConfig {
    /// Default configuration over `dir`: 25 ms poll interval.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), poll_interval: SimDuration(25) }
    }
}

/// One published, not-yet-answered HIT.
#[derive(Debug)]
struct PendingHit {
    name: String,
    tasks: Vec<TaskSpec>,
    /// Polls that found this HIT's answer file present but unparsable.
    malformed_polls: u32,
}

/// A [`CrowdBackend`] that publishes HITs as JSON files into a spool
/// directory and polls an answers directory — the engine's first backend
/// whose answers come from *outside the process*: another program, a
/// shell script, or a human with a text editor.
///
/// ## File protocol
///
/// Publishing a HIT atomically creates `<dir>/hits/<name>.json`, where
/// `<name>` is `h-<shard>-<seq>-<nonce>` (shard incarnation, sequence
/// number, and a run nonce that keeps names from a crashed run and its
/// resume — or any two runs sharing the directory — from ever colliding):
///
/// ```json
/// {"hit": "h-3-0-18f2ab11",
///  "shard": 3,
///  "tasks": [{"id": 4294967298, "a": 1, "b": 2, "truth": true, "priority": 0.95}]}
/// ```
///
/// `a`/`b` are the global record indices of the pair in question (decoded
/// from the id, which packs `(a << 32) | b`); `truth` is the machine's
/// expected answer (scripted answerers echo it; humans should ignore it).
/// The answerer replies by creating `<dir>/answers/<name>.json` — the
/// same file name, in the sibling directory:
///
/// ```json
/// {"answers": [{"id": 4294967298, "matching": true, "yes": 3, "no": 0}]}
/// ```
///
/// `yes`/`no` vote counts are optional (default 1/0 per the `matching`
/// verdict). Every task of the HIT must be answered. **Write atomically**
/// (write to a temp name, then rename into `answers/`): the backend
/// tolerates a briefly half-written file by retrying, but fails stop if a
/// file stays unparsable for 200 consecutive polls.
///
/// Consumed answer files are left in place; the backend tracks
/// consumption in memory, so a spool directory is also a human-readable
/// record of the job. Money is accounted as one assignment per answered
/// HIT at the configured price.
#[derive(Debug)]
pub struct SpoolBackend {
    hits_dir: PathBuf,
    answers_dir: PathBuf,
    shard: usize,
    /// Unique-per-instance component of this backend's HIT names.
    nonce: String,
    clock: Arc<WallClock>,
    batch_size: usize,
    price_cents: u32,
    poll_interval: SimDuration,
    next_seq: u64,
    pending: Vec<PendingHit>,
    resolved: VecDeque<(VirtualTime, Vec<ResolvedTask>)>,
    stats: PlatformStats,
}

impl SpoolBackend {
    /// One backend instance for shard incarnation `shard` (usually built
    /// via [`SpoolFactory`]). `cfg` supplies the knobs that apply to an
    /// external crowd: `batch_size` (pairs per HIT file) and
    /// `price_per_assignment_cents`; the simulated-worker fields are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if the spool subdirectories cannot be created — a spool
    /// backend without its directories can never make progress.
    #[must_use]
    pub fn new(
        spool: &SpoolConfig,
        cfg: &PlatformConfig,
        shard: usize,
        clock: Arc<WallClock>,
    ) -> Self {
        let hits_dir = spool.dir.join("hits");
        let answers_dir = spool.dir.join("answers");
        for dir in [&hits_dir, &answers_dir] {
            fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create spool directory {}: {e}", dir.display()));
        }
        Self {
            hits_dir,
            answers_dir,
            shard,
            nonce: run_nonce(),
            clock,
            batch_size: cfg.batch_size,
            price_cents: cfg.price_per_assignment_cents,
            poll_interval: spool.poll_interval,
            next_seq: 0,
            pending: Vec::new(),
            resolved: VecDeque::new(),
            stats: PlatformStats::default(),
        }
    }

    /// Renders one HIT file's JSON.
    fn hit_json(&self, name: &str, tasks: &[TaskSpec]) -> String {
        let mut out = String::with_capacity(64 + tasks.len() * 80);
        out.push_str("{\"hit\": ");
        json::write_str(&mut out, name);
        let _ = write!(out, ", \"shard\": {}, \"tasks\": [", self.shard);
        for (i, t) in tasks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let (a, b) = (t.id >> 32, t.id & u64::from(u32::MAX));
            let _ = write!(
                out,
                "{{\"id\": {}, \"a\": {a}, \"b\": {b}, \"truth\": {}, \"priority\": {}}}",
                t.id, t.truth, t.priority
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Scans the answers directory and moves every ready HIT's resolutions
    /// into the resolved queue, in publish order. Returns how many HITs
    /// resolved.
    fn consume_ready(&mut self) -> usize {
        // Wall-clock span: the real filesystem latency of one answers scan.
        let mut span = crowdjoin_obs::obs_span!(
            "backend",
            "spool.scan",
            self.shard as u32,
            pending = self.pending.len(),
        );
        let mut consumed = 0;
        let mut i = 0;
        while i < self.pending.len() {
            let path = self.answers_dir.join(format!("{}.json", self.pending[i].name));
            let text = match fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    i += 1;
                    continue;
                }
                Err(e) => panic!("cannot read answer file {}: {e}", path.display()),
            };
            match parse_answers(&text, &self.pending[i].tasks) {
                Ok(resolved) => {
                    let hit = self.pending.remove(i);
                    let now = self.clock.now();
                    self.stats.assignments_completed += 1;
                    self.stats.total_cost_cents += u64::from(self.price_cents);
                    self.stats.last_resolution = now;
                    consumed += 1;
                    drop(hit);
                    self.resolved.push_back((now, resolved));
                }
                Err(reason) => {
                    self.pending[i].malformed_polls += 1;
                    assert!(
                        self.pending[i].malformed_polls < MALFORMED_POLL_LIMIT,
                        "answer file {} stayed malformed for {MALFORMED_POLL_LIMIT} polls \
                         ({reason}); answerers must write complete JSON atomically \
                         (write to a temp file, then rename into answers/)",
                        path.display()
                    );
                    i += 1;
                }
            }
        }
        span.set_field("resolved_hits", consumed);
        consumed
    }
}

/// Decodes an answers file against the HIT's task list: every task must be
/// answered exactly once, unknown ids are rejected.
fn parse_answers(text: &str, tasks: &[TaskSpec]) -> Result<Vec<ResolvedTask>, String> {
    let doc = json::parse(text)?;
    let answers = doc
        .get("answers")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing \"answers\" array".to_string())?;
    let mut by_id: crowdjoin_util::FxHashMap<u64, ResolvedTask> =
        crowdjoin_util::FxHashMap::default();
    for a in answers {
        let id = a.get("id").and_then(Value::as_u64).ok_or("answer without numeric \"id\"")?;
        let matching =
            a.get("matching").and_then(Value::as_bool).ok_or("answer without \"matching\"")?;
        let default_votes = if matching { (1, 0) } else { (0, 1) };
        let yes = a.get("yes").and_then(Value::as_u64).map_or(default_votes.0, |v| v as u32);
        let no = a.get("no").and_then(Value::as_u64).map_or(default_votes.1, |v| v as u32);
        // A verdict contradicting its own majority would journal a
        // self-contradictory durable record; refuse at the boundary. A
        // tie is legal — the verdict field breaks it.
        if (matching && no > yes) || (!matching && yes > no) {
            return Err(format!(
                "answer for task id {id} says matching={matching} but votes are {yes} yes / \
                 {no} no"
            ));
        }
        if tasks.iter().all(|t| t.id != id) {
            return Err(format!("answer for unknown task id {id}"));
        }
        if by_id
            .insert(id, ResolvedTask { id, label: matching, yes_votes: yes, no_votes: no })
            .is_some()
        {
            return Err(format!("duplicate answer for task id {id}"));
        }
    }
    // Resolutions in the HIT's task order, every task covered.
    tasks
        .iter()
        .map(|t| by_id.get(&t.id).copied().ok_or_else(|| format!("task id {} unanswered", t.id)))
        .collect()
}

impl CrowdBackend for SpoolBackend {
    fn post_hits(&mut self, tasks: Vec<TaskSpec>) {
        if tasks.is_empty() {
            return;
        }
        // Wall-clock span: the tmp-write + rename latency of publishing.
        let _span = crowdjoin_obs::obs_span!(
            "backend",
            "spool.write",
            self.shard as u32,
            pairs = tasks.len(),
            hits = tasks.len().div_ceil(self.batch_size),
        );
        self.stats.pairs_published += tasks.len();
        for chunk in tasks.chunks(self.batch_size) {
            let name = format!("h-{}-{}-{}", self.shard, self.next_seq, self.nonce);
            self.next_seq += 1;
            let body = self.hit_json(&name, chunk);
            // Atomic appear: a reader never sees a half-written HIT file.
            let tmp = self.hits_dir.join(format!(".{name}.tmp"));
            let path = self.hits_dir.join(format!("{name}.json"));
            fs::write(&tmp, body)
                .and_then(|()| fs::rename(&tmp, &path))
                .unwrap_or_else(|e| panic!("cannot publish HIT {}: {e}", path.display()));
            self.stats.hits_published += 1;
            self.stats.pair_slots += self.batch_size;
            self.pending.push(PendingHit { name, tasks: chunk.to_vec(), malformed_polls: 0 });
        }
    }

    fn poll_completions(
        &mut self,
        _until: VirtualTime,
    ) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        if self.resolved.is_empty() {
            self.consume_ready();
        }
        self.resolved.pop_front()
    }

    fn next_event_time(&self) -> Option<VirtualTime> {
        if !self.resolved.is_empty() {
            return Some(self.clock.now());
        }
        if self.pending.is_empty() {
            return None;
        }
        Some(self.clock.now().after(self.poll_interval))
    }

    fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    fn num_unresolved_pairs(&self) -> usize {
        self.pending.iter().map(|h| h.tasks.len()).sum::<usize>()
            + self.resolved.iter().map(|(_, r)| r.len()).sum::<usize>()
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn stats(&self) -> PlatformStats {
        self.stats
    }

    fn warp_to(&mut self, _t: VirtualTime) {
        // Wall-clock time cannot warp; incarnation timelines are already
        // continuous because every backend shares the job's WallClock.
    }

    fn absorb_replayed_cost(&mut self, cents: u64) {
        self.stats.total_cost_cents += cents;
    }
}

/// Creates the per-shard [`SpoolBackend`]s of a run: one shared spool
/// directory, one shared [`WallClock`] epoch, feed-mode journal replay.
#[derive(Debug)]
pub struct SpoolFactory {
    config: SpoolConfig,
    clock: Arc<WallClock>,
}

impl SpoolFactory {
    /// A factory over `config`, creating the `hits/` and `answers/`
    /// subdirectories up front so external answerers can start watching
    /// before the first HIT — and retracting any unanswered HIT files a
    /// previous run left behind ([`retract_unanswered_hits`]), so the
    /// crowd is never asked a question nobody will collect. A spool
    /// directory therefore serves **one live job at a time**.
    ///
    /// # Errors
    ///
    /// I/O errors creating the spool directories or retracting stale
    /// HITs.
    pub fn new(config: SpoolConfig) -> io::Result<Self> {
        fs::create_dir_all(config.dir.join("hits"))?;
        fs::create_dir_all(config.dir.join("answers"))?;
        retract_unanswered_hits(&config.dir)?;
        Ok(Self { config, clock: Arc::new(WallClock::new()) })
    }

    /// The spool root this factory publishes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }
}

impl BackendFactory for SpoolFactory {
    type Backend = SpoolBackend;

    fn create(&self, cfg: &PlatformConfig, shard: &ShardContext) -> SpoolBackend {
        SpoolBackend::new(&self.config, cfg, shard.report_index, Arc::clone(&self.clock))
    }

    fn time_source(&self) -> &dyn TimeSource {
        self.clock.as_ref()
    }

    fn deterministic_replay(&self) -> bool {
        false
    }
}

/// Retracts every published-but-unanswered HIT file in the spool: renames
/// `hits/<name>.json` to `hits/<name>.json.retracted` (kept for audit;
/// [`pending_hits`] and answerers ignore the suffix). Returns how many
/// HITs were retracted.
///
/// A crashed run's unanswered questions would otherwise sit in `hits/`
/// forever: its resume re-publishes them under fresh names (journaled
/// answers are never re-posted, but unanswered ones must be), and a real
/// crowd would spend money and effort answering both copies.
/// [`SpoolFactory::new`] runs this automatically when a job takes over
/// the directory.
///
/// # Errors
///
/// I/O errors scanning or renaming within the spool.
pub fn retract_unanswered_hits(dir: &Path) -> io::Result<usize> {
    let hits_dir = dir.join("hits");
    let answers_dir = dir.join("answers");
    let mut retracted = 0;
    for entry in fs::read_dir(&hits_dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".json") {
            if !answers_dir.join(format!("{stem}.json")).exists() {
                fs::rename(hits_dir.join(&name), hits_dir.join(format!("{name}.retracted")))?;
                retracted += 1;
            }
        }
    }
    Ok(retracted)
}

/// One question parsed back from a published HIT file — what an external
/// answerer sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoolQuestion {
    /// Task id to echo back in the answer.
    pub id: u64,
    /// Global index of the first record of the pair.
    pub a: u32,
    /// Global index of the second record of the pair.
    pub b: u32,
    /// The machine's expected answer (scripted answerers echo it).
    pub truth: bool,
    /// Machine likelihood of the pair.
    pub priority: f64,
}

/// Lists the currently **unanswered** HITs of a spool directory, oldest
/// name first: `(hit name, its questions)`. The reference scan loop for
/// external answerers.
///
/// # Errors
///
/// I/O errors reading the spool, or a malformed HIT file (the engine
/// writes them atomically, so that is corruption, not a race).
pub fn pending_hits(dir: &Path) -> io::Result<Vec<(String, Vec<SpoolQuestion>)>> {
    let hits_dir = dir.join("hits");
    let answers_dir = dir.join("answers");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&hits_dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name.strip_suffix(".json") {
            if !answers_dir.join(format!("{stem}.json")).exists() {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let text = fs::read_to_string(hits_dir.join(format!("{name}.json")))?;
        let doc = json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("HIT {name}: {e}")))?;
        let tasks = doc.get("tasks").and_then(Value::as_arr).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("HIT {name}: no tasks"))
        })?;
        let mut questions = Vec::with_capacity(tasks.len());
        for t in tasks {
            let field = |k: &str| {
                t.get(k).and_then(Value::as_u64).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("HIT {name}: bad {k}"))
                })
            };
            questions.push(SpoolQuestion {
                id: field("id")?,
                a: field("a")? as u32,
                b: field("b")? as u32,
                truth: t.get("truth").and_then(Value::as_bool).unwrap_or(false),
                priority: t.get("priority").and_then(Value::as_f64).unwrap_or(0.0),
            });
        }
        out.push((name, questions));
    }
    Ok(out)
}

/// Atomically writes the answers file for `hit`: `(task id, matching)`
/// verdicts with implicit 1/0 votes.
///
/// # Errors
///
/// I/O errors writing into the spool.
pub fn write_answers(dir: &Path, hit: &str, answers: &[(u64, bool)]) -> io::Result<()> {
    let mut body = String::from("{\"answers\": [");
    for (i, (id, matching)) in answers.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        let _ = write!(body, "{{\"id\": {id}, \"matching\": {matching}}}");
    }
    body.push_str("]}\n");
    let answers_dir = dir.join("answers");
    let tmp = answers_dir.join(format!(".{hit}.tmp"));
    fs::write(&tmp, body)?;
    fs::rename(&tmp, answers_dir.join(format!("{hit}.json")))
}

/// Scripted answerer: answers every pending HIT with `verdict` and returns
/// how many HITs it answered. Looping this (with a small sleep) until the
/// engine reports completion is a complete external crowd.
///
/// # Errors
///
/// Everything [`pending_hits`] and [`write_answers`] raise.
pub fn answer_pending(
    dir: &Path,
    mut verdict: impl FnMut(&SpoolQuestion) -> bool,
) -> io::Result<usize> {
    let pending = pending_hits(dir)?;
    let count = pending.len();
    for (hit, questions) in pending {
        let answers: Vec<(u64, bool)> = questions.iter().map(|q| (q.id, verdict(q))).collect();
        write_answers(dir, &hit, &answers)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crowdjoin-spool-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: u64, truth: bool) -> TaskSpec {
        TaskSpec { id, truth, priority: 0.5 }
    }

    fn make_backend(dir: &Path) -> SpoolBackend {
        let cfg = PlatformConfig::perfect_workers(1);
        SpoolBackend::new(&SpoolConfig::new(dir), &cfg, 0, Arc::new(WallClock::new()))
    }

    #[test]
    fn publish_poll_answer_roundtrip() {
        let dir = temp_spool("roundtrip");
        let mut backend = make_backend(&dir);
        // 45 tasks at batch size 20 → three HIT files (20+20+5).
        backend.post_hits((0..45).map(|i| spec(i, i % 2 == 0)).collect());
        assert_eq!(backend.stats().hits_published, 3);
        assert_eq!(backend.stats().pair_slots, 60);
        assert_eq!(backend.num_unresolved_pairs(), 45);
        assert!(backend.next_event_time().is_some(), "pending HITs must schedule a poll");

        // Nothing answered yet: polling finds nothing.
        assert!(backend.poll_completions(VirtualTime::MAX).is_none());

        // Answer everything via the reference answerer (echo the truth).
        let answered = answer_pending(&dir, |q| q.truth).expect("answerer");
        assert_eq!(answered, 3);
        assert_eq!(pending_hits(&dir).expect("rescan").len(), 0, "all answered");

        let mut resolved = Vec::new();
        while let Some((t, batch)) = backend.poll_completions(VirtualTime::MAX) {
            assert!(t <= backend.now());
            resolved.extend(batch);
        }
        assert_eq!(resolved.len(), 45);
        for r in &resolved {
            assert_eq!(r.label, r.id % 2 == 0, "echoed truth for task {}", r.id);
            assert_eq!((r.yes_votes + r.no_votes), 1);
        }
        assert_eq!(backend.num_unresolved_pairs(), 0);
        assert_eq!(backend.next_event_time(), None, "drained backend has no events");
        // One assignment per answered HIT at 2¢.
        assert_eq!(backend.stats().assignments_completed, 3);
        assert_eq!(backend.stats().total_cost_cents, 6);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn hit_files_expose_the_global_pair() {
        let dir = temp_spool("pairs");
        let mut backend = make_backend(&dir);
        let id = (7u64 << 32) | 9;
        backend.post_hits(vec![spec(id, true)]);
        let pending = pending_hits(&dir).expect("scan");
        assert_eq!(pending.len(), 1);
        let (_, questions) = &pending[0];
        assert_eq!(questions[0].a, 7);
        assert_eq!(questions[0].b, 9);
        assert_eq!(questions[0].id, id);
        assert!(questions[0].truth);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Name of the only pending HIT in the spool.
    fn only_hit(dir: &Path) -> String {
        let pending = pending_hits(dir).expect("scan");
        assert_eq!(pending.len(), 1);
        pending[0].0.clone()
    }

    #[test]
    fn incomplete_answer_file_is_retried_then_fatal() {
        let dir = temp_spool("malformed");
        let mut backend = make_backend(&dir);
        backend.post_hits(vec![spec(1, true), spec(2, false)]);
        let hit = only_hit(&dir);
        // An answer file missing task 2: retried quietly...
        write_answers(&dir, &hit, &[(1, true)]).expect("write partial");
        for _ in 0..10 {
            assert!(backend.poll_completions(VirtualTime::MAX).is_none());
        }
        // ...until the answerer completes it.
        write_answers(&dir, &hit, &[(1, true), (2, false)]).expect("complete");
        let (_, batch) = backend.poll_completions(VirtualTime::MAX).expect("resolves");
        assert_eq!(batch.len(), 2);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    #[should_panic(expected = "stayed malformed")]
    fn forever_malformed_answer_file_fails_stop() {
        let dir = temp_spool("fatal");
        let mut backend = make_backend(&dir);
        backend.post_hits(vec![spec(1, true)]);
        let hit = only_hit(&dir);
        fs::write(dir.join("answers").join(format!("{hit}.json")), "{not json").expect("garbage");
        for _ in 0..MALFORMED_POLL_LIMIT + 1 {
            let _ = backend.poll_completions(VirtualTime::MAX);
        }
    }

    #[test]
    fn answers_may_carry_explicit_votes() {
        let dir = temp_spool("votes");
        let mut backend = make_backend(&dir);
        backend.post_hits(vec![spec(5, true)]);
        let hit = only_hit(&dir);
        fs::write(
            dir.join("answers").join(format!(".{hit}.tmp")),
            "{\"answers\": [{\"id\": 5, \"matching\": true, \"yes\": 3, \"no\": 1}]}",
        )
        .expect("write");
        fs::rename(
            dir.join("answers").join(format!(".{hit}.tmp")),
            dir.join("answers").join(format!("{hit}.json")),
        )
        .expect("rename");
        let (_, batch) = backend.poll_completions(VirtualTime::MAX).expect("resolves");
        assert_eq!(batch, vec![ResolvedTask { id: 5, label: true, yes_votes: 3, no_votes: 1 }]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn backend_instances_never_collide_on_hit_names() {
        let dir = temp_spool("nonce");
        // Two backends for the *same* shard index (a crashed run and its
        // resume) publishing into one spool: names must stay distinct, and
        // an answer to the first run's HIT must not resolve the second's.
        let mut first = make_backend(&dir);
        first.post_hits(vec![spec(1, true)]);
        let stale = only_hit(&dir);
        let mut second = make_backend(&dir);
        second.post_hits(vec![spec(2, true)]);
        write_answers(&dir, &stale, &[(1, true)]).expect("answer the stale hit");
        for _ in 0..5 {
            assert!(
                second.poll_completions(VirtualTime::MAX).is_none(),
                "a stale answer file must not resolve a new HIT"
            );
        }
        let (_, batch) = first.poll_completions(VirtualTime::MAX).expect("stale hit resolves");
        assert_eq!(batch[0].id, 1);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn contradictory_votes_are_rejected() {
        let tasks = vec![spec(5, true)];
        // Verdict against its own majority: refused at the parse boundary.
        let bad = "{\"answers\": [{\"id\": 5, \"matching\": true, \"yes\": 0, \"no\": 3}]}";
        let err = parse_answers(bad, &tasks).expect_err("must refuse");
        assert!(err.contains("matching=true"), "got {err:?}");
        // A tie is legal; the verdict field breaks it.
        let tie = "{\"answers\": [{\"id\": 5, \"matching\": false, \"yes\": 1, \"no\": 1}]}";
        let resolved = parse_answers(tie, &tasks).expect("tie is legal");
        assert!(!resolved[0].label);
    }

    #[test]
    fn factory_retracts_stale_unanswered_hits() {
        let dir = temp_spool("retract");
        // A "crashed run" leaves one answered and one unanswered HIT.
        let mut crashed = make_backend(&dir);
        crashed.post_hits(vec![spec(1, true)]);
        crashed.post_hits(vec![spec(2, true)]);
        let pending = pending_hits(&dir).expect("scan");
        assert_eq!(pending.len(), 2);
        write_answers(&dir, &pending[0].0, &[(1, true)]).expect("answer the first");
        drop(crashed);

        // A new job takes over the spool: the unanswered leftover is
        // retracted so no answerer wastes effort on it.
        let factory = SpoolFactory::new(SpoolConfig::new(&dir)).expect("factory");
        assert_eq!(pending_hits(factory.dir()).expect("rescan").len(), 0);
        let retracted: Vec<String> = fs::read_dir(dir.join("hits"))
            .expect("ls")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".retracted"))
            .collect();
        assert_eq!(retracted.len(), 1, "only the unanswered HIT is retracted");
        assert!(retracted[0].contains(&pending[1].0));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn absorbed_cost_lands_in_the_ledger() {
        let dir = temp_spool("absorb");
        let mut backend = make_backend(&dir);
        backend.absorb_replayed_cost(42);
        assert_eq!(backend.stats().total_cost_cents, 42);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
