//! Trace sinks: where enabled recordings go.
//!
//! * [`JsonlSink`] — one JSON object per line, streamed as events arrive.
//!   The stable machine-readable format (schema pinned by
//!   `tests/trace_schema.rs`): every line carries `ts` (µs since the
//!   trace epoch), `kind`, and `shard`; spans add `dur_us`, simulated
//!   timelines add `virt_ms`, payloads nest under `fields`.
//! * [`ChromeTraceSink`] — buffers events and writes a Chrome
//!   trace-event JSON file on finish, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`. Each shard
//!   becomes a process row ("shard N"), shard-less events go to the
//!   "job" row, spans render as complete (`"ph": "X"`) slices.
//! * [`CaptureSink`] — in-memory, for tests.

use crate::event::{FieldValue, TraceEvent, NO_SHARD};
use crate::json::{js_str, JsonObject};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for recorded events. `record` runs under the global
/// sink lock — keep it cheap (buffered writes, no fsync).
pub trait TraceSink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes and finalizes the output.
    fn finish(&mut self) -> std::io::Result<()>;
}

/// Renders a [`FieldValue`] as JSON (non-finite floats become `null` —
/// the JSON subset has no NaN).
fn render_field(v: FieldValue) -> String {
    match v {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) if v.is_finite() => format!("{v}"),
        FieldValue::F64(_) => "null".to_string(),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Str(s) => js_str(s),
    }
}

fn render_fields(fields: &[(&'static str, FieldValue)]) -> String {
    let mut obj = JsonObject::new();
    for &(k, v) in fields {
        obj.field(k, render_field(v));
    }
    obj.render()
}

/// Streaming line-per-event JSON writer. See the module docs for the
/// line schema.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: W,
    /// First write error, reported at finish (recording cannot fail).
    err: Option<std::io::Error>,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates a sink writing to `path` (truncating).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out, err: None }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.err.is_some() {
            return;
        }
        let mut line = JsonObject::new();
        line.field("ts", event.wall_us.to_string());
        line.field("kind", js_str(event.kind));
        line.field("shard", event.shard.to_string());
        line.field("cat", js_str(event.cat));
        line.field("tid", event.tid.to_string());
        if let Some(dur) = event.dur_us {
            line.field("dur_us", dur.to_string());
        }
        if let Some(virt) = event.virt_ms {
            line.field("virt_ms", virt.to_string());
        }
        if !event.fields.is_empty() {
            line.field("fields", render_fields(&event.fields));
        }
        if let Err(e) = writeln!(self.out, "{}", line.render()) {
            self.err = Some(e);
        }
    }

    fn finish(&mut self) -> std::io::Result<()> {
        match self.err.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// Chrome trace-event exporter: buffers rendered events in memory and
/// writes one `{"traceEvents": […]}` document on finish.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write + Send> {
    out: W,
    rows: Vec<String>,
    /// Shard pids seen, for the process-name metadata rows.
    pids: BTreeSet<u32>,
}

/// Chrome pid of a shard row (`pid 0` is the shard-less "job" row).
fn pid_of(shard: u32) -> u32 {
    if shard == NO_SHARD {
        0
    } else {
        shard.saturating_add(1)
    }
}

impl ChromeTraceSink<std::io::BufWriter<std::fs::File>> {
    /// Creates a sink writing to `path` (truncating) on finish.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> ChromeTraceSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out, rows: Vec::new(), pids: BTreeSet::new() }
    }
}

impl<W: Write + Send> TraceSink for ChromeTraceSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        self.pids.insert(pid_of(event.shard));
        let mut row = JsonObject::new();
        row.field("name", js_str(event.kind));
        row.field("cat", js_str(event.cat));
        match event.dur_us {
            Some(dur) => {
                row.field("ph", js_str("X"));
                row.field("dur", dur.to_string());
            }
            None => {
                row.field("ph", js_str("i"));
                row.field("s", js_str("t"));
            }
        }
        row.field("ts", event.wall_us.to_string());
        row.field("pid", pid_of(event.shard).to_string());
        row.field("tid", event.tid.to_string());
        let mut args = event.fields.clone();
        if let Some(virt) = event.virt_ms {
            args.push(("virt_ms", FieldValue::U64(virt)));
        }
        if !args.is_empty() {
            row.field("args", render_fields(&args));
        }
        self.rows.push(row.render());
    }

    fn finish(&mut self) -> std::io::Result<()> {
        // Process-name metadata first, so viewers label the shard rows.
        let mut rows = Vec::with_capacity(self.rows.len() + self.pids.len());
        for &pid in &self.pids {
            let name = if pid == 0 { "job".to_string() } else { format!("shard {}", pid - 1) };
            let mut meta = JsonObject::new();
            meta.field("name", js_str("process_name"));
            meta.field("ph", js_str("M"));
            meta.field("pid", pid.to_string());
            meta.field("tid", "0");
            meta.field("args", format!("{{\"name\": {}}}", js_str(&name)));
            rows.push(meta.render());
        }
        rows.append(&mut self.rows);
        writeln!(self.out, "{{\"traceEvents\": [")?;
        for (i, row) in rows.iter().enumerate() {
            writeln!(self.out, "  {row}{}", if i + 1 == rows.len() { "" } else { "," })?;
        }
        writeln!(self.out, "], \"displayTimeUnit\": \"ms\"}}")?;
        self.out.flush()
    }
}

/// Test sink: appends every event to a shared vector.
#[derive(Debug)]
pub struct CaptureSink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl CaptureSink {
    /// A capture sink plus the handle its events land in.
    #[must_use]
    pub fn new() -> (Self, Arc<Mutex<Vec<TraceEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (Self { events: Arc::clone(&events) }, events)
    }
}

impl TraceSink for CaptureSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.lock().expect("capture sink poisoned").push(event.clone());
    }

    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> TraceEvent {
        TraceEvent {
            kind: "task.publish",
            cat: "engine",
            shard: 2,
            tid: 1,
            wall_us: 1000,
            dur_us: Some(50),
            virt_ms: Some(90_000),
            fields: vec![("pairs", FieldValue::U64(40)), ("flush", FieldValue::Bool(true))],
        }
    }

    #[test]
    fn jsonl_line_shape() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample_span());
        sink.record(&TraceEvent { dur_us: None, virt_ms: None, fields: vec![], ..sample_span() });
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"ts\": 1000, \"kind\": \"task.publish\", \"shard\": 2, \"cat\": \"engine\", \
             \"tid\": 1, \"dur_us\": 50, \"virt_ms\": 90000, \"fields\": {\"pairs\": 40, \
             \"flush\": true}}"
        );
        assert_eq!(
            lines[1],
            "{\"ts\": 1000, \"kind\": \"task.publish\", \"shard\": 2, \"cat\": \"engine\", \
             \"tid\": 1}"
        );
    }

    #[test]
    fn chrome_trace_document_shape() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.record(&sample_span());
        let mut instant = sample_span();
        instant.shard = NO_SHARD;
        instant.dur_us = None;
        sink.record(&instant);
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert!(text.starts_with("{\"traceEvents\": ["));
        assert!(text.trim_end().ends_with("], \"displayTimeUnit\": \"ms\"}"));
        // Metadata rows name both process rows.
        assert!(text.contains("{\"name\": \"job\"}"));
        assert!(text.contains("{\"name\": \"shard 2\"}"));
        // The span renders as a complete slice on pid 3 (shard 2 + 1).
        assert!(text.contains("\"ph\": \"X\", \"dur\": 50, \"ts\": 1000, \"pid\": 3"));
        // The instant event renders thread-scoped on the job row.
        assert!(text.contains("\"ph\": \"i\", \"s\": \"t\", \"ts\": 1000, \"pid\": 0"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(render_field(FieldValue::F64(f64::NAN)), "null");
        assert_eq!(render_field(FieldValue::F64(0.25)), "0.25");
        assert_eq!(render_field(FieldValue::I64(-3)), "-3");
    }
}
