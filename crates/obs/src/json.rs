//! Hand-rolled JSON writer helpers.
//!
//! The container this workspace builds in has no crates.io access, so
//! every JSON producer hand-rolls the small subset it needs. These
//! helpers are the shared writer side: `crowdjoin-bench` re-exports them
//! for its benchmark snapshots, the trace sinks render event lines with
//! them, and the CLI's `--report json` / `--metrics` output goes through
//! them too. The matching reader lives in `crowdjoin-backend-spool`'s
//! `json` module.

/// Renders a JSON string literal (the workspace only emits ASCII
/// identifiers, but quotes and backslashes are escaped defensively).
#[must_use]
pub fn js_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` with fixed decimals.
#[must_use]
pub fn js_f64(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Renders an optional `f64` (`None` → `null`).
#[must_use]
pub fn js_opt_f64(v: Option<f64>, decimals: usize) -> String {
    v.map_or_else(|| "null".to_string(), |v| js_f64(v, decimals))
}

/// An object under construction: `key: pre-rendered value` pairs joined
/// into `{…}`. Values must already be valid JSON (use the `js_*` helpers
/// for strings and floats).
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    pairs: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field with a pre-rendered JSON value.
    pub fn field(&mut self, key: &str, rendered: impl Into<String>) -> &mut Self {
        self.pairs.push((key.to_string(), rendered.into()));
        self
    }

    /// Renders `{"k": v, …}` on one line.
    #[must_use]
    pub fn render(&self) -> String {
        let body: Vec<String> =
            self.pairs.iter().map(|(k, v)| format!("{}: {v}", js_str(k))).collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(js_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(js_str("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(js_str("tab\tchar"), "\"tab\\u0009char\"");
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(js_f64(1.0 / 3.0, 4), "0.3333");
        assert_eq!(js_opt_f64(Some(2.5), 1), "2.5");
        assert_eq!(js_opt_f64(None, 1), "null");
    }

    #[test]
    fn object_renders_in_insertion_order() {
        let mut obj = JsonObject::new();
        obj.field("b", "1").field("a", js_str("x"));
        assert_eq!(obj.render(), "{\"b\": 1, \"a\": \"x\"}");
    }
}
