//! The structured trace record: [`TraceEvent`] and its typed fields.

/// Shard sentinel for events that are not scoped to any shard (matcher
/// stages, job-level engine events). Serialized as the literal
/// `4294967295` so every event line still carries a `shard` key.
pub const NO_SHARD: u32 = u32::MAX;

/// A typed field value. Field keys are `&'static str` so building an
/// event never allocates for names; only the field vector itself does,
/// and only when recording is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, ids, byte sizes).
    U64(u64),
    /// Signed integer (deltas, gauge levels).
    I64(i64),
    /// Floating point (ratios, scores).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (state names, modes).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded observation: an instant event (`dur_us == None`) or a
/// completed span (`dur_us == Some`). See the crate docs for the
/// timestamp semantics.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event kind, dot-namespaced by layer — the stable taxonomy external
    /// consumers match on (e.g. `task.state`, `backend.poll`,
    /// `matcher.probe`, `wal.append`). See ARCHITECTURE.md for the full
    /// list.
    pub kind: &'static str,
    /// Coarse layer category (`engine`, `matcher`, `backend`, `wal`,
    /// `sim`) — becomes the Chrome trace category.
    pub cat: &'static str,
    /// Report index of the shard incarnation the event belongs to, or
    /// [`NO_SHARD`].
    pub shard: u32,
    /// Small per-thread ordinal (first thread to record gets 0).
    pub tid: u64,
    /// Microseconds since the process-wide trace epoch (monotonic).
    pub wall_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// The backend's [`VirtualTime`] milliseconds when the event comes
    /// from a simulated timeline, `None` on pure wall-clock paths.
    ///
    /// [`VirtualTime`]: https://docs.rs/crowdjoin-sim
    pub virt_ms: Option<u64>,
    /// Typed payload fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}
