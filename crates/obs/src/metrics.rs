//! Allocation-free counters, gauges, and log₂-bucketed histograms,
//! registered per `(name, shard)`.
//!
//! Handles are `Arc`s acquired once (at task/stage construction) from a
//! global registry; the hot-path operations are single relaxed atomic
//! instructions. The registry is a [`BTreeMap`], so snapshots iterate in
//! a deterministic order regardless of registration interleaving — a
//! `--metrics` file from a 4-thread run diffs cleanly against a 1-thread
//! run's.
//!
//! Metrics are always-on: they cannot change what a run computes, and a
//! relaxed add is cheaper than gating one.

use crate::json::{js_str, JsonObject};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depths, staged pairs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket *i* holds
/// values in `[2^(i−1), 2^i)`, and every `u64` fits.
const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram (latencies in µs, batch sizes): recording
/// is one relaxed add into one of 65 buckets plus count/sum bookkeeping —
/// no allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty `(exclusive upper bound, count)` buckets, ascending.
    /// Bucket 0 reports bound 1 (it holds only the value 0).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (1u64.checked_shl(i as u32).unwrap_or(u64::MAX), n))
            })
            .collect()
    }
}

/// One registered metric (snapshots borrow the same handles the hot
/// paths update).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

static REGISTRY: Mutex<BTreeMap<(&'static str, u32), Metric>> = Mutex::new(BTreeMap::new());

/// The counter registered as `(name, shard)`, created on first use. Use
/// [`NO_SHARD`](crate::event::NO_SHARD) for job-level metrics.
///
/// # Panics
///
/// Panics if `(name, shard)` is already registered as a different metric
/// kind.
#[must_use]
pub fn counter(name: &'static str, shard: u32) -> Arc<Counter> {
    let mut reg = REGISTRY.lock().expect("obs metric registry poisoned");
    let metric =
        reg.entry((name, shard)).or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
    match metric {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric {name} (shard {shard}) is not a counter"),
    }
}

/// The gauge registered as `(name, shard)`, created on first use.
///
/// # Panics
///
/// Panics if `(name, shard)` is already registered as a different metric
/// kind.
#[must_use]
pub fn gauge(name: &'static str, shard: u32) -> Arc<Gauge> {
    let mut reg = REGISTRY.lock().expect("obs metric registry poisoned");
    let metric =
        reg.entry((name, shard)).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
    match metric {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {name} (shard {shard}) is not a gauge"),
    }
}

/// The histogram registered as `(name, shard)`, created on first use.
///
/// # Panics
///
/// Panics if `(name, shard)` is already registered as a different metric
/// kind.
#[must_use]
pub fn histogram(name: &'static str, shard: u32) -> Arc<Histogram> {
    let mut reg = REGISTRY.lock().expect("obs metric registry poisoned");
    let metric = reg
        .entry((name, shard))
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
    match metric {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {name} (shard {shard}) is not a histogram"),
    }
}

/// A point-in-time view of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: &'static str,
    /// Shard the metric is scoped to ([`NO_SHARD`](crate::NO_SHARD) for
    /// job-level).
    pub shard: u32,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Snapshot value of a metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary: observation count, sum, and non-empty
    /// `(exclusive upper bound, count)` buckets.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of all observations.
        sum: u64,
        /// Non-empty buckets, ascending by bound.
        buckets: Vec<(u64, u64)>,
    },
}

/// Snapshots every registered metric, in deterministic `(name, shard)`
/// order.
#[must_use]
pub fn snapshot_metrics() -> Vec<MetricSnapshot> {
    let reg = REGISTRY.lock().expect("obs metric registry poisoned");
    reg.iter()
        .map(|(&(name, shard), metric)| MetricSnapshot {
            name,
            shard,
            value: match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.nonzero_buckets(),
                },
            },
        })
        .collect()
}

/// Clears the registry (tests and multi-job processes).
pub fn reset_metrics() {
    REGISTRY.lock().expect("obs metric registry poisoned").clear();
}

/// Renders every registered metric as one JSON object (the `--metrics`
/// file format): a `schema` tag plus a `metrics` array of
/// `{name, shard, kind, …}` rows in deterministic order.
#[must_use]
pub fn metrics_json() -> String {
    let mut out = String::from("{\n  \"schema\": \"crowdjoin-metrics/1\",\n  \"metrics\": [\n");
    let snaps = snapshot_metrics();
    for (i, snap) in snaps.iter().enumerate() {
        let mut row = JsonObject::new();
        row.field("name", js_str(snap.name));
        row.field("shard", snap.shard.to_string());
        match &snap.value {
            MetricValue::Counter(v) => {
                row.field("kind", js_str("counter"));
                row.field("value", v.to_string());
            }
            MetricValue::Gauge(v) => {
                row.field("kind", js_str("gauge"));
                row.field("value", v.to_string());
            }
            MetricValue::Histogram { count, sum, buckets } => {
                row.field("kind", js_str("histogram"));
                row.field("count", count.to_string());
                row.field("sum", sum.to_string());
                let rendered: Vec<String> =
                    buckets.iter().map(|(le, n)| format!("[{le}, {n}]")).collect();
                row.field("buckets", format!("[{}]", rendered.join(", ")));
            }
        }
        out.push_str("    ");
        out.push_str(&row.render());
        out.push_str(if i + 1 == snaps.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_SHARD;
    use crate::recorder::tests::GLOBAL_TEST_LOCK;

    #[test]
    fn registry_is_deterministic_and_shared() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        reset_metrics();
        let c1 = counter("z.pairs", 1);
        let c0 = counter("a.rounds", NO_SHARD);
        let again = counter("z.pairs", 1);
        c1.add(5);
        again.add(2);
        c0.inc();
        let snaps = snapshot_metrics();
        assert_eq!(snaps.len(), 2);
        // BTreeMap order: name first, then shard.
        assert_eq!(snaps[0].name, "a.rounds");
        assert_eq!(snaps[0].value, MetricValue::Counter(1));
        assert_eq!(snaps[1].name, "z.pairs");
        assert_eq!(snaps[1].shard, 1);
        assert_eq!(snaps[1].value, MetricValue::Counter(7));
        reset_metrics();
        assert!(snapshot_metrics().is_empty());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0, bound 1
        h.record(1); // bucket 1, bound 2
        h.record(3); // bucket 2, bound 4
        h.record(3);
        h.record(1024); // bucket 11, bound 2048
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1031);
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (2, 1), (4, 2), (2048, 1)]);
        h.record(u64::MAX); // top bucket saturates its bound
        assert_eq!(*h.nonzero_buckets().last().unwrap(), (u64::MAX, 1));
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::default();
        g.set(10);
        g.adjust(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn json_rendering_is_stable() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        reset_metrics();
        counter("answers", 0).add(3);
        gauge("queue.depth", 0).set(4);
        histogram("poll.us", 0).record(100);
        let json = metrics_json();
        assert!(json.contains("\"schema\": \"crowdjoin-metrics/1\""));
        assert!(json.contains(
            "{\"name\": \"answers\", \"shard\": 0, \"kind\": \"counter\", \"value\": 3}"
        ));
        assert!(json.contains(
            "{\"name\": \"poll.us\", \"shard\": 0, \"kind\": \"histogram\", \"count\": 1, \
             \"sum\": 100, \"buckets\": [[128, 1]]}"
        ));
        reset_metrics();
    }
}
