//! Zero-cost observability for the crowdjoin workspace: structured trace
//! events and spans, per-shard metrics, and pluggable sinks — with a hard
//! guarantee that none of it can change what a run computes.
//!
//! The paper this workspace reproduces ("Leveraging Transitive Relations
//! for Crowdsourced Joins", SIGMOD 2013) argues with numbers — questions
//! crowdsourced vs deduced, rounds, dollars, waste — so every layer here
//! is built to be *measured*. This crate is the shared measurement
//! substrate:
//!
//! * [`event`] — the typed [`TraceEvent`] record: a kind, a category, a
//!   shard, a monotonic wall timestamp (microseconds since the trace
//!   epoch), an optional duration (spans), an optional virtual-time stamp
//!   (the simulator's millisecond clock), and a small list of typed fields.
//! * [`recorder`] — the global recording gate and the [`obs_event!`] /
//!   [`obs_span!`] entry points. Recording is **off by default**; a
//!   disabled site costs one relaxed atomic load (and compiles out
//!   entirely when the `trace` feature is off, see below).
//! * [`metrics`] — allocation-free counters, gauges, and log₂-bucketed
//!   histograms, registered per `(name, shard)` in a deterministic-order
//!   registry so snapshots diff cleanly.
//! * [`sink`] — where enabled traces go: a line-per-event JSONL writer
//!   ([`JsonlSink`]), a Chrome trace-event exporter loadable in Perfetto /
//!   `chrome://tracing` ([`ChromeTraceSink`]), and an in-memory
//!   [`CaptureSink`] for tests.
//! * [`json`] — the workspace's hand-rolled JSON writer helpers (shared
//!   with `crowdjoin-bench`'s snapshot writer).
//!
//! ## The zero-cost contract
//!
//! Instrumented code must behave bit-identically whether tracing is off,
//! on, or compiled out:
//!
//! * **compiled out** (`trace` feature disabled): [`recorder::enabled`]
//!   is a compile-time `false`, so every `if enabled() { … }` site is
//!   dead code and vanishes;
//! * **off** (the default at runtime): one relaxed [`std::sync::atomic::AtomicBool`]
//!   load per site, no allocation, no lock;
//! * **on**: events are recorded to sinks behind a mutex, but nothing an
//!   event records feeds back into the computation — labels, money,
//!   per-shard stats, and journal bytes stay bit-identical (pinned by
//!   `tests/obs_determinism.rs` in the workspace root).
//!
//! Metrics are always-on (a relaxed atomic add is cheaper than gating it)
//! and equally side-effect-free.
//!
//! ## Timestamps
//!
//! Every event carries `wall_us`, microseconds on the process-wide
//! monotonic trace epoch (first use wins) — that is what profiles order
//! by. Events from virtual-time runs *additionally* carry the backend's
//! `VirtualTime` milliseconds in `virt_ms`, so a simulated timeline can
//! be reconstructed even though the whole run executes in a burst of
//! wall-clock microseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;

pub use event::{FieldValue, TraceEvent, NO_SHARD};
pub use metrics::{counter, gauge, histogram, metrics_json, reset_metrics, snapshot_metrics};
pub use recorder::{enabled, finish_sinks, install_sink, record, EventBuilder, SpanGuard};
pub use sink::{CaptureSink, ChromeTraceSink, JsonlSink, TraceSink};
