//! The global recording gate, event/span builders, and the
//! [`obs_event!`](crate::obs_event) / [`obs_span!`](crate::obs_span) macros.
//!
//! Recording state is process-global: a relaxed [`AtomicBool`] gate, a
//! mutex-guarded sink list, a monotonic trace epoch, and a per-thread
//! ordinal. Installing the first sink turns the gate on; finishing the
//! sinks turns it back off. Instrumentation sites check
//! [`enabled`] *first* and only then pay for timestamps, field vectors,
//! and the sink lock — so a run with no sinks attached does one relaxed
//! load per site and nothing else.

use crate::event::{FieldValue, TraceEvent, NO_SHARD};
use crate::sink::TraceSink;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The runtime gate. Only [`install_sink`] / [`finish_sinks`] flip it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Attached sinks. Locked only while recording an event (gate already
/// checked) or installing/finishing.
static SINKS: Mutex<Vec<Box<dyn TraceSink>>> = Mutex::new(Vec::new());

/// Monotonic epoch all `wall_us` timestamps count from; first use wins.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Allocator for per-thread ordinals.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Whether event recording is live. Compile-time `false` without the
/// `trace` feature (every guarded site becomes dead code); otherwise one
/// relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "trace") && ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch (established on first
/// call).
#[must_use]
pub fn wall_micros() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// This thread's small recording ordinal (first recording thread is 0).
#[must_use]
pub fn thread_ordinal() -> u64 {
    TID.with(|t| *t)
}

/// Attaches a sink and turns recording on.
pub fn install_sink(sink: Box<dyn TraceSink>) {
    // Pin the epoch before the first event so timestamps never precede it.
    let _ = wall_micros();
    let mut sinks = SINKS.lock().expect("obs sink registry poisoned");
    sinks.push(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Detaches every sink, finishing each (flushing buffered output), and
/// turns recording off. Returns the first I/O error encountered after
/// finishing all of them.
pub fn finish_sinks() -> std::io::Result<()> {
    let mut sinks = std::mem::take(&mut *SINKS.lock().expect("obs sink registry poisoned"));
    ENABLED.store(false, Ordering::Relaxed);
    let mut first_err = None;
    for sink in &mut sinks {
        if let Err(e) = sink.finish() {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Delivers one event to every attached sink. Callers gate on
/// [`enabled`] first; a racing [`finish_sinks`] just means the event is
/// dropped, never an error.
pub fn record(event: TraceEvent) {
    let mut sinks = SINKS.lock().expect("obs sink registry poisoned");
    for sink in sinks.iter_mut() {
        sink.record(&event);
    }
}

/// Builder for an instant event. Construct only behind an
/// `if enabled()` guard (the [`obs_event!`](crate::obs_event) macro does):
/// the builder
/// itself allocates its field vector.
#[derive(Debug)]
pub struct EventBuilder {
    event: TraceEvent,
}

impl EventBuilder {
    /// Starts an event of `kind` in layer `cat`, stamped now.
    #[must_use]
    pub fn new(cat: &'static str, kind: &'static str, shard: u32) -> Self {
        Self {
            event: TraceEvent {
                kind,
                cat,
                shard,
                tid: thread_ordinal(),
                wall_us: wall_micros(),
                dur_us: None,
                virt_ms: None,
                fields: Vec::new(),
            },
        }
    }

    /// Attaches the virtual-time stamp (simulated-timeline events).
    #[must_use]
    pub fn virt(mut self, ms: u64) -> Self {
        self.event.virt_ms = Some(ms);
        self
    }

    /// Appends a typed field.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.event.fields.push((key, value.into()));
        self
    }

    /// Records the event.
    pub fn emit(self) {
        record(self.event);
    }
}

/// A live span: started at construction, recorded as a completed event
/// (with `dur_us`) on drop. When recording is disabled at construction
/// the guard is inert — no timestamp is read and drop does nothing.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    inner: Option<TraceEvent>,
}

impl SpanGuard {
    /// Starts a span of `kind` in layer `cat` (inert when recording is
    /// off).
    pub fn new(cat: &'static str, kind: &'static str, shard: u32) -> Self {
        if !enabled() {
            return Self { inner: None };
        }
        Self {
            inner: Some(TraceEvent {
                kind,
                cat,
                shard,
                tid: thread_ordinal(),
                wall_us: wall_micros(),
                dur_us: None,
                virt_ms: None,
                fields: Vec::new(),
            }),
        }
    }

    /// An inert span (useful as a default before deciding to measure).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Attaches the virtual-time stamp.
    pub fn virt(mut self, ms: u64) -> Self {
        if let Some(e) = &mut self.inner {
            e.virt_ms = Some(ms);
        }
        self
    }

    /// Appends a typed field (before or after construction-time ones).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(e) = &mut self.inner {
            e.fields.push((key, value.into()));
        }
        self
    }

    /// Appends a typed field through a mutable reference (for fields only
    /// known mid-span, e.g. a result count).
    pub fn set_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(e) = &mut self.inner {
            e.fields.push((key, value.into()));
        }
    }

    /// Whether this guard is live (recording was enabled when it started).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut event) = self.inner.take() {
            event.dur_us = Some(wall_micros().saturating_sub(event.wall_us));
            record(event);
        }
    }
}

/// Records an instant event when tracing is enabled; otherwise costs one
/// relaxed atomic load. Field keys are bare identifiers, values anything
/// `Into<FieldValue>`:
///
/// ```
/// crowdjoin_obs::obs_event!("engine", "task.publish", 3, pairs = 40usize, flush = true);
/// ```
#[macro_export]
macro_rules! obs_event {
    ($cat:expr, $kind:expr, $shard:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::EventBuilder::new($cat, $kind, $shard)
                $(.field(stringify!($key), $value))*
                .emit();
        }
    };
}

/// Starts a [`SpanGuard`] measuring until the end of the enclosing scope
/// (inert when tracing is off):
///
/// ```
/// let _span = crowdjoin_obs::obs_span!("matcher", "matcher.index", crowdjoin_obs::NO_SHARD);
/// ```
#[macro_export]
macro_rules! obs_span {
    ($cat:expr, $kind:expr, $shard:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::SpanGuard::new($cat, $kind, $shard)
            $(.field(stringify!($key), $value))*
    };
}

/// Convenience for job-level events with no shard.
#[must_use]
pub fn job_event(cat: &'static str, kind: &'static str) -> EventBuilder {
    EventBuilder::new(cat, kind, NO_SHARD)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::sink::CaptureSink;

    /// The recorder is process-global; tests that install sinks serialize
    /// on this lock so parallel test threads cannot observe each other's
    /// sinks.
    pub(crate) static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_inert() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        assert!(!enabled());
        obs_event!("test", "test.instant", 1, n = 3u64);
        let span = SpanGuard::new("test", "test.span", 2);
        assert!(!span.is_live());
        drop(span);
        // Nothing panicked, nothing was delivered (no sink to deliver to).
    }

    #[test]
    fn events_and_spans_reach_installed_sinks() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        let (sink, captured) = CaptureSink::new();
        install_sink(Box::new(sink));
        assert!(enabled());

        obs_event!("test", "test.instant", 7, count = 4usize, mode = "flush");
        {
            let _span = obs_span!("test", "test.span", NO_SHARD, items = 2u64).virt(1500);
        }
        finish_sinks().unwrap();
        assert!(!enabled());

        let events = captured.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "test.instant");
        assert_eq!(events[0].shard, 7);
        assert_eq!(events[0].dur_us, None);
        assert_eq!(
            events[0].fields,
            vec![("count", FieldValue::U64(4)), ("mode", FieldValue::Str("flush"))]
        );
        assert_eq!(events[1].kind, "test.span");
        assert_eq!(events[1].shard, NO_SHARD);
        assert_eq!(events[1].virt_ms, Some(1500));
        assert!(events[1].dur_us.is_some(), "spans carry a duration");
        assert!(events[1].wall_us <= wall_micros());
    }

    #[test]
    fn events_after_finish_are_dropped() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap();
        let (sink, captured) = CaptureSink::new();
        install_sink(Box::new(sink));
        finish_sinks().unwrap();
        obs_event!("test", "test.late", 0);
        assert!(captured.lock().unwrap().is_empty());
    }
}
