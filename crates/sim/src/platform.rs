//! The discrete-event crowdsourcing platform.
//!
//! Mechanics modeled (each matters for a paper experiment):
//!
//! * **Batching** — published tasks are grouped into HITs of
//!   `batch_size` pairs (money saver from [14, 25], used in Section 6.4).
//! * **Replicated assignments + majority vote** — each HIT is completed by
//!   `assignments_per_hit` distinct workers; per-task majority decides the
//!   label (quality control of Table 2).
//! * **Qualification tests** — workers that fail a 3-question test never
//!   take HITs, filtering most spammers.
//! * **Worker latency** — off-platform workers only notice new work after a
//!   lognormal revisit delay; this is what makes sequential publishing take
//!   ~10× longer than parallel publishing (Table 1).
//! * **Assignment policy** — AMT's random HIT assignment, or the
//!   *non-matching first* priority order (Figure 15's `Parallel(ID+NF)`).
//!
//! The platform is intentionally independent of the labeling framework: it
//! labels opaque boolean tasks. The `crowdjoin` facade crate adapts
//! `crowdjoin-core` pairs onto it.

use crate::config::{AssignmentPolicy, PlatformConfig};
use crate::dist::bernoulli;
use crate::time::{SimDuration, VirtualTime};
use crate::vote::majority;
use crowdjoin_util::{derive_seed, FxHashSet, SplitMix64};
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A unit of work: one pair to label, with its ground-truth answer (used to
/// synthesize worker responses) and a priority key (its machine likelihood,
/// consumed by the non-matching-first policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Caller-assigned task id (the facade uses it to map back to pairs).
    pub id: u64,
    /// Ground-truth answer ("are these matching?").
    pub truth: bool,
    /// Priority key; **lower** keys are served first under
    /// [`AssignmentPolicy::NonMatchingFirst`].
    pub priority: f64,
}

/// A task whose label the platform has decided by majority vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedTask {
    /// Caller-assigned task id.
    pub id: u64,
    /// Majority-vote label.
    pub label: bool,
    /// Votes for `true`.
    pub yes_votes: u32,
    /// Votes for `false`.
    pub no_votes: u32,
}

/// Aggregate platform statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlatformStats {
    /// HITs published so far.
    pub hits_published: usize,
    /// Pairs published so far (tasks actually placed into HITs).
    pub pairs_published: usize,
    /// Pair capacity of the published HITs (`hits_published × batch_size`).
    /// `pair_slots - pairs_published` is the number of paid-for HIT slots
    /// left empty by partial HITs — the fragmentation the engine's
    /// `partial_hit_waste` metric quantifies.
    pub pair_slots: usize,
    /// Assignments completed so far.
    pub assignments_completed: usize,
    /// Total cost in cents (completed assignments × price).
    pub total_cost_cents: u64,
    /// Time the last task resolution happened.
    pub last_resolution: VirtualTime,
    /// Number of workers that passed qualification.
    pub qualified_workers: usize,
    /// Assignments abandoned by workers (re-opened after the timeout).
    pub assignments_abandoned: usize,
}

#[derive(Debug, Clone)]
struct Worker {
    accuracy: f64,
    qualified: bool,
    /// Worker is neither busy nor scheduled to check for work.
    idle: bool,
    rng: SplitMix64,
    hits_taken: FxHashSet<u32>,
    assignments_completed: u32,
}

/// Per-worker observability snapshot (see [`Platform::worker_stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// The worker's answer accuracy.
    pub accuracy: f64,
    /// Whether the worker passed the qualification test.
    pub qualified: bool,
    /// Assignments the worker has completed.
    pub assignments_completed: u32,
}

#[derive(Debug, Clone)]
struct Hit {
    tasks: Vec<TaskSpec>,
    assignments_launched: u32,
    /// Completed assignments: per assignment, one answer per task.
    answers: Vec<Vec<bool>>,
    resolved: bool,
    /// Mean task priority; used by the non-matching-first policy.
    priority: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Worker visits the platform looking for work.
    WorkerCheck { worker: u32 },
    /// Worker finishes an assignment of a HIT.
    AssignmentDone { worker: u32, hit: u32 },
    /// Worker walked away; the assignment times out and re-opens.
    AssignmentAbandoned { worker: u32, hit: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedEvent {
    time: VirtualTime,
    seq: u64,
    kind: EventKind,
}

// BinaryHeap is a max-heap; invert the ordering on (time, seq) to pop the
// earliest event first. `seq` breaks ties deterministically.
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated crowdsourcing platform.
#[derive(Debug, Clone)]
pub struct Platform {
    cfg: PlatformConfig,
    workers: Vec<Worker>,
    hits: Vec<Hit>,
    /// HITs that can still launch assignments.
    open_hits: Vec<u32>,
    queue: BinaryHeap<QueuedEvent>,
    seq: u64,
    now: VirtualTime,
    resolved: VecDeque<(VirtualTime, Vec<ResolvedTask>)>,
    pick_rng: SplitMix64,
    stats: PlatformStats,
    open_pair_count: usize,
    unresolved_pair_count: usize,
}

impl Platform {
    /// Builds the platform: spawns the worker pool and runs qualification
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or qualification leaves fewer
    /// qualified workers than `assignments_per_hit`.
    #[must_use]
    pub fn new(cfg: PlatformConfig) -> Self {
        cfg.validate();
        let mut qual_rng = SplitMix64::new(derive_seed(cfg.seed, 101));
        let mut workers = Vec::with_capacity(cfg.num_workers);
        for w in 0..cfg.num_workers {
            let accuracy = if bernoulli(&mut qual_rng, cfg.spammer_fraction) {
                cfg.spammer_accuracy
            } else {
                cfg.good_accuracy
            };
            // Qualification: all questions must be answered correctly.
            let qualified = !cfg.qualification_test
                || (0..cfg.qualification_questions).all(|_| bernoulli(&mut qual_rng, accuracy));
            workers.push(Worker {
                accuracy,
                qualified,
                idle: true,
                rng: SplitMix64::new(derive_seed(cfg.seed, 1000 + w as u64)),
                hits_taken: FxHashSet::default(),
                assignments_completed: 0,
            });
        }
        let qualified_workers = workers.iter().filter(|w| w.qualified).count();
        assert!(
            qualified_workers >= cfg.assignments_per_hit as usize,
            "only {qualified_workers} workers passed qualification; HITs need {}",
            cfg.assignments_per_hit
        );
        let pick_rng = SplitMix64::new(derive_seed(cfg.seed, 102));
        Self {
            cfg,
            workers,
            hits: Vec::new(),
            open_hits: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: VirtualTime::ZERO,
            resolved: VecDeque::new(),
            pick_rng,
            stats: PlatformStats { qualified_workers, ..PlatformStats::default() },
            open_pair_count: 0,
            unresolved_pair_count: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The configured HIT batch size (pairs per HIT).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.cfg.batch_size
    }

    /// Per-worker observability: accuracy, qualification, work done.
    #[must_use]
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.workers
            .iter()
            .map(|w| WorkerStats {
                accuracy: w.accuracy,
                qualified: w.qualified,
                assignments_completed: w.assignments_completed,
            })
            .collect()
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// Pairs in HITs that still have unclaimed assignments — the paper's
    /// "number of available pairs in the crowdsourcing platform" (Figure 15).
    #[must_use]
    pub fn num_open_pairs(&self) -> usize {
        self.open_pair_count
    }

    /// Pairs published but not yet majority-resolved.
    #[must_use]
    pub fn num_unresolved_pairs(&self) -> usize {
        self.unresolved_pair_count
    }

    /// Publishes tasks, batching them into HITs of `batch_size`, and wakes
    /// idle qualified workers (they arrive after their revisit delay).
    pub fn publish(&mut self, tasks: Vec<TaskSpec>) {
        if tasks.is_empty() {
            return;
        }
        self.unresolved_pair_count += tasks.len();
        self.open_pair_count += tasks.len();
        self.stats.pairs_published += tasks.len();
        for chunk in tasks.chunks(self.cfg.batch_size) {
            let priority = chunk.iter().map(|t| t.priority).sum::<f64>() / chunk.len() as f64;
            let id = self.hits.len() as u32;
            self.hits.push(Hit {
                tasks: chunk.to_vec(),
                assignments_launched: 0,
                answers: Vec::new(),
                resolved: false,
                priority,
            });
            self.open_hits.push(id);
            self.stats.hits_published += 1;
            self.stats.pair_slots += self.cfg.batch_size;
        }
        self.wake_idle_workers();
    }

    /// Non-blocking submit half of the poll-based interface: posts tasks as
    /// HITs and returns immediately. Alias of [`Self::publish`]; paired with
    /// [`Self::poll_completions`] by event-loop drivers that multiplex many
    /// platforms on one thread.
    pub fn post_hits(&mut self, tasks: Vec<TaskSpec>) {
        self.publish(tasks);
    }

    /// Wakes every idle qualified worker with a fresh revisit delay (used on
    /// publish and when an abandoned assignment re-opens a HIT).
    fn wake_idle_workers(&mut self) {
        for w in 0..self.workers.len() {
            if self.workers[w].idle && self.workers[w].qualified {
                self.workers[w].idle = false;
                let delay = SimDuration::from_secs_f64(
                    self.cfg.revisit_delay.sample(&mut self.workers[w].rng),
                );
                self.schedule(self.now.after(delay), EventKind::WorkerCheck { worker: w as u32 });
            }
        }
    }

    /// The virtual time of the earliest pending event, or `None` when the
    /// platform is fully idle (nothing queued, nothing left to resolve).
    /// A resolution batch that has been produced but not yet polled reports
    /// the current time — it is ready immediately.
    ///
    /// This is the scheduling hook for event-loop drivers: poll the platform
    /// with the earliest `next_event_time` first and nothing ever runs ahead
    /// of virtual time.
    #[must_use]
    pub fn next_event_time(&self) -> Option<VirtualTime> {
        if !self.resolved.is_empty() {
            return Some(self.now);
        }
        self.queue.peek().map(|e| e.time)
    }

    /// Non-blocking poll half of the poll-based interface: processes queued
    /// events **no later than `until`** and returns the first resolution
    /// batch produced, or `None` once no event at or before `until` remains.
    ///
    /// Events strictly after `until` are left queued and the clock never
    /// advances past them, so a caller multiplexing many platforms can
    /// interleave them fairly by always polling the platform whose
    /// [`Self::next_event_time`] is earliest. Polling with
    /// [`VirtualTime::MAX`] reproduces the blocking [`Self::step`] exactly.
    pub fn poll_completions(
        &mut self,
        until: VirtualTime,
    ) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        loop {
            if let Some(batch) = self.resolved.pop_front() {
                return Some(batch);
            }
            if self.queue.peek()?.time > until {
                return None;
            }
            let event = self.queue.pop().expect("peeked event must pop");
            debug_assert!(event.time >= self.now, "event from the past");
            self.now = event.time;
            match event.kind {
                EventKind::WorkerCheck { worker } => self.worker_check(worker),
                EventKind::AssignmentDone { worker, hit } => self.assignment_done(worker, hit),
                EventKind::AssignmentAbandoned { worker, hit } => {
                    self.assignment_abandoned(worker, hit);
                }
            }
        }
    }

    /// Advances the simulation until the next batch of task resolutions (or
    /// `None` when no events remain — either everything resolved or no
    /// worker can make progress).
    ///
    /// Compatibility wrapper over [`Self::poll_completions`] with no time
    /// bound; blocking drive loops keep using it unchanged.
    pub fn step(&mut self) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        self.poll_completions(VirtualTime::MAX)
    }

    /// Advances an **idle** platform's clock to `t` (keeping the maximum of
    /// the two). Used when a platform is constructed mid-job — e.g. after
    /// dynamic re-sharding merges shards into a fresh platform — so its
    /// resolutions continue the merged shards' virtual timeline instead of
    /// restarting at zero.
    ///
    /// # Panics
    ///
    /// Panics if events are queued or resolutions are unpolled: time may
    /// only warp while nothing is in flight.
    pub fn warp_to(&mut self, t: VirtualTime) {
        assert!(
            self.queue.is_empty() && self.resolved.is_empty(),
            "cannot warp a platform with pending events"
        );
        self.now = self.now.max(t);
    }

    /// Runs until no progress is possible, returning all resolutions in
    /// order.
    pub fn run_to_completion(&mut self) -> Vec<(VirtualTime, Vec<ResolvedTask>)> {
        let mut out = Vec::new();
        while let Some(batch) = self.step() {
            out.push(batch);
        }
        out
    }

    fn schedule(&mut self, time: VirtualTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(QueuedEvent { time, seq: self.seq, kind });
    }

    /// Index into `open_hits` of the HIT this worker should take, if any.
    fn pick_hit(&mut self, worker: u32) -> Option<usize> {
        let taken = &self.workers[worker as usize].hits_taken;
        let eligible: Vec<usize> = self
            .open_hits
            .iter()
            .enumerate()
            .filter(|&(_, &h)| !taken.contains(&h))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        match self.cfg.assignment_policy {
            AssignmentPolicy::Random => {
                let k = (self.pick_rng.next_u64() % eligible.len() as u64) as usize;
                Some(eligible[k])
            }
            AssignmentPolicy::NonMatchingFirst => eligible.into_iter().min_by(|&i, &j| {
                let (a, b) = (self.open_hits[i], self.open_hits[j]);
                self.hits[a as usize]
                    .priority
                    .total_cmp(&self.hits[b as usize].priority)
                    .then(a.cmp(&b))
            }),
        }
    }

    fn worker_check(&mut self, worker: u32) {
        match self.pick_hit(worker) {
            None => self.workers[worker as usize].idle = true,
            Some(open_idx) => {
                let hit_id = self.open_hits[open_idx];
                let hit = &mut self.hits[hit_id as usize];
                hit.assignments_launched += 1;
                if hit.assignments_launched >= self.cfg.assignments_per_hit {
                    self.open_hits.swap_remove(open_idx);
                    self.open_pair_count -= hit.tasks.len();
                }
                let n_tasks = self.hits[hit_id as usize].tasks.len();
                let w = &mut self.workers[worker as usize];
                w.hits_taken.insert(hit_id);
                if bernoulli(&mut w.rng, self.cfg.abandonment_rate) {
                    // The worker walks away; the platform notices at the
                    // assignment timeout and re-opens the slot.
                    let timeout = SimDuration::from_secs_f64(self.cfg.abandonment_timeout_secs);
                    self.schedule(
                        self.now.after(timeout),
                        EventKind::AssignmentAbandoned { worker, hit: hit_id },
                    );
                    return;
                }
                let mut secs = 0.0;
                for _ in 0..n_tasks {
                    secs += self.cfg.work_time_per_pair.sample(&mut w.rng);
                }
                self.schedule(
                    self.now.after(SimDuration::from_secs_f64(secs)),
                    EventKind::AssignmentDone { worker, hit: hit_id },
                );
            }
        }
    }

    fn assignment_done(&mut self, worker: u32, hit_id: u32) {
        // Synthesize this worker's answers.
        let accuracy = self.workers[worker as usize].accuracy;
        let n = self.hits[hit_id as usize].tasks.len();
        let mut answers = Vec::with_capacity(n);
        for i in 0..n {
            let truth = self.hits[hit_id as usize].tasks[i].truth;
            let correct = bernoulli(&mut self.workers[worker as usize].rng, accuracy);
            answers.push(if correct { truth } else { !truth });
        }
        let hit = &mut self.hits[hit_id as usize];
        hit.answers.push(answers);
        self.workers[worker as usize].assignments_completed += 1;
        self.stats.assignments_completed += 1;
        self.stats.total_cost_cents += self.cfg.price_per_assignment_cents as u64;

        if hit.answers.len() as u32 >= self.cfg.assignments_per_hit && !hit.resolved {
            hit.resolved = true;
            let mut resolved = Vec::with_capacity(hit.tasks.len());
            for (i, task) in hit.tasks.iter().enumerate() {
                let votes: Vec<bool> = hit.answers.iter().map(|a| a[i]).collect();
                let (label, yes, no) = majority(&votes);
                resolved.push(ResolvedTask { id: task.id, label, yes_votes: yes, no_votes: no });
            }
            self.unresolved_pair_count -= hit.tasks.len();
            self.stats.last_resolution = self.now;
            self.resolved.push_back((self.now, resolved));
        }

        // Worker looks for the next assignment after a short break.
        let w = &mut self.workers[worker as usize];
        let pause = SimDuration::from_secs_f64(self.cfg.between_assignments.sample(&mut w.rng));
        self.schedule(self.now.after(pause), EventKind::WorkerCheck { worker });
    }

    /// The assignment timed out without a submission: re-open the slot and
    /// send the (long-gone) worker back into the revisit cycle. The worker
    /// keeps the HIT in `hits_taken` — like AMT, a returned assignment is
    /// not re-offered to the same worker here.
    fn assignment_abandoned(&mut self, worker: u32, hit_id: u32) {
        self.stats.assignments_abandoned += 1;
        let hit = &mut self.hits[hit_id as usize];
        debug_assert!(hit.assignments_launched > 0);
        let was_closed = hit.assignments_launched >= self.cfg.assignments_per_hit;
        hit.assignments_launched -= 1;
        if was_closed && !hit.resolved {
            self.open_hits.push(hit_id);
            self.open_pair_count += self.hits[hit_id as usize].tasks.len();
        }
        self.wake_idle_workers();
        let w = &mut self.workers[worker as usize];
        let delay = SimDuration::from_secs_f64(self.cfg.revisit_delay.sample(&mut w.rng));
        self.schedule(self.now.after(delay), EventKind::WorkerCheck { worker });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: usize, truth: bool) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec { id: i as u64, truth, priority: 0.5 }).collect()
    }

    #[test]
    fn resolves_all_published_tasks() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(7));
        p.publish(tasks(50, true));
        let batches = p.run_to_completion();
        let total: usize = batches.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 50);
        assert_eq!(p.num_unresolved_pairs(), 0);
        assert_eq!(p.num_open_pairs(), 0);
        // 50 tasks at 20/HIT → 3 HITs; 3 assignments each.
        assert_eq!(p.stats().hits_published, 3);
        assert_eq!(p.stats().assignments_completed, 9);
        assert_eq!(p.stats().total_cost_cents, 18);
    }

    #[test]
    fn perfect_workers_always_correct() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(3));
        let mut spec = tasks(30, true);
        for (i, t) in spec.iter_mut().enumerate() {
            t.truth = i % 3 == 0;
        }
        let truths: Vec<bool> = spec.iter().map(|t| t.truth).collect();
        p.publish(spec);
        for (_, batch) in p.run_to_completion() {
            for r in batch {
                assert_eq!(r.label, truths[r.id as usize]);
                assert_eq!(r.yes_votes + r.no_votes, 3);
            }
        }
    }

    #[test]
    fn noisy_workers_mostly_correct_with_vote() {
        let cfg = PlatformConfig { seed: 11, ..PlatformConfig::amt_like(11) };
        let mut p = Platform::new(cfg);
        p.publish(tasks(400, true));
        let mut correct = 0;
        let mut total = 0;
        for (_, batch) in p.run_to_completion() {
            for r in batch {
                total += 1;
                if r.label {
                    correct += 1;
                }
            }
        }
        assert_eq!(total, 400);
        let rate = correct as f64 / total as f64;
        assert!(rate > 0.9, "majority vote accuracy {rate} too low");
        assert!(rate < 1.0 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut p = Platform::new(PlatformConfig::amt_like(seed));
            p.publish(tasks(60, false));
            let batches = p.run_to_completion();
            (batches.len(), p.now(), p.stats().assignments_completed)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1, "different seeds should differ in timing");
    }

    #[test]
    fn sequential_publishing_is_much_slower() {
        // The Table 1 phenomenon: publishing one HIT at a time pays the
        // worker revisit latency per HIT; publishing all at once amortizes
        // it. A small pool makes arrivals the bottleneck.
        let n = 200;
        let config = || PlatformConfig { num_workers: 10, ..PlatformConfig::perfect_workers(42) };
        // Parallel: all at once.
        let mut par = Platform::new(config());
        par.publish(tasks(n, true));
        par.run_to_completion();
        let t_par = par.stats().last_resolution;

        // Sequential: one HIT (batch of 20) at a time, next HIT published as
        // soon as the previous resolves.
        let mut seq = Platform::new(config());
        let all = tasks(n, true);
        for chunk in all.chunks(20) {
            seq.publish(chunk.to_vec());
            let mut remaining = chunk.len();
            while remaining > 0 {
                let (_, resolved) = seq.step().expect("chunk resolves");
                remaining -= resolved.len();
            }
        }
        let t_seq = seq.stats().last_resolution;
        assert!(
            t_seq.as_hours() > t_par.as_hours() * 2.0,
            "sequential {:.2}h should be ≫ parallel {:.2}h",
            t_seq.as_hours(),
            t_par.as_hours()
        );
    }

    #[test]
    fn nonmatching_first_serves_low_priority_hits_first() {
        let cfg = PlatformConfig {
            assignment_policy: AssignmentPolicy::NonMatchingFirst,
            batch_size: 5,
            ..PlatformConfig::perfect_workers(9)
        };
        let mut p = Platform::new(cfg);
        // Two batches: high-priority ids 0..5 (likely matching), low ids 5..10.
        let mut spec = Vec::new();
        for i in 0..5u64 {
            spec.push(TaskSpec { id: i, truth: true, priority: 0.9 });
        }
        for i in 5..10u64 {
            spec.push(TaskSpec { id: i, truth: true, priority: 0.1 });
        }
        p.publish(spec);
        let batches = p.run_to_completion();
        let first_ids: Vec<u64> = batches[0].1.iter().map(|r| r.id).collect();
        assert!(
            first_ids.iter().all(|&id| id >= 5),
            "low-likelihood HIT must resolve first, got {first_ids:?}"
        );
    }

    #[test]
    fn qualification_filters_spammers() {
        let cfg = PlatformConfig {
            num_workers: 200,
            spammer_fraction: 0.5,
            spammer_accuracy: 0.5,
            qualification_test: true,
            ..PlatformConfig::amt_like(17)
        };
        let p = Platform::new(cfg);
        let q = p.stats().qualified_workers;
        // Good workers pass with 0.95³ ≈ 0.857, spammers with 0.5³ = 0.125.
        // With 100 of each, expect ≈ 86 + 12 ≈ 98 ± noise.
        assert!(q > 70 && q < 130, "qualified {q}");
    }

    #[test]
    fn abandonment_reopens_and_still_resolves() {
        let cfg = PlatformConfig {
            abandonment_rate: 0.3,
            abandonment_timeout_secs: 600.0,
            ..PlatformConfig::perfect_workers(21)
        };
        let mut p = Platform::new(cfg);
        p.publish(tasks(100, true));
        let resolved: usize = p.run_to_completion().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(resolved, 100, "every task resolves despite abandonment");
        assert!(p.stats().assignments_abandoned > 0, "30% rate must abandon something");
        // Abandoned assignments are not paid.
        assert_eq!(p.stats().total_cost_cents, p.stats().assignments_completed as u64 * 2);
    }

    #[test]
    fn abandonment_slows_completion() {
        let run = |rate: f64| {
            let cfg = PlatformConfig {
                abandonment_rate: rate,
                abandonment_timeout_secs: 3600.0,
                ..PlatformConfig::perfect_workers(22)
            };
            let mut p = Platform::new(cfg);
            p.publish(tasks(200, true));
            p.run_to_completion();
            p.stats().last_resolution
        };
        let clean = run(0.0);
        let flaky = run(0.4);
        assert!(flaky > clean, "abandonment should delay completion: {flaky:?} vs {clean:?}");
    }

    #[test]
    fn worker_stats_account_for_all_assignments() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(13));
        p.publish(tasks(60, true));
        p.run_to_completion();
        let stats = p.worker_stats();
        assert_eq!(stats.len(), 40);
        let total: u32 = stats.iter().map(|w| w.assignments_completed).sum();
        assert_eq!(total as usize, p.stats().assignments_completed);
        // Perfect-worker preset: everyone qualified at accuracy 1.0.
        assert!(stats.iter().all(|w| w.qualified && w.accuracy == 1.0));
        // No worker can complete two assignments of one HIT: with 3 HITs
        // nobody exceeds 3 assignments.
        assert!(stats.iter().all(|w| w.assignments_completed <= 3));
    }

    #[test]
    fn poll_respects_time_bound() {
        let mut blocking = Platform::new(PlatformConfig::perfect_workers(7));
        blocking.publish(tasks(50, true));
        let expected = blocking.run_to_completion();

        // Drive an identical platform purely through the poll interface,
        // always advancing to the next event time — the event-loop pattern.
        let mut polled = Platform::new(PlatformConfig::perfect_workers(7));
        polled.post_hits(tasks(50, true));
        let mut batches = Vec::new();
        while let Some(t) = polled.next_event_time() {
            assert!(t >= polled.now(), "next event cannot be in the past");
            if let Some(batch) = polled.poll_completions(t) {
                batches.push(batch);
            }
            assert!(polled.now() <= t, "poll must not run past its bound");
        }
        assert_eq!(batches, expected, "poll-driven run must equal blocking run");
        assert_eq!(polled.now(), blocking.now());
        assert_eq!(polled.stats(), blocking.stats());
    }

    #[test]
    fn poll_before_first_event_is_empty() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(3));
        p.post_hits(tasks(10, true));
        let first = p.next_event_time().expect("publish schedules worker checks");
        assert!(first > VirtualTime::ZERO);
        // Polling strictly before the first event processes nothing.
        assert!(p.poll_completions(VirtualTime(first.0 - 1)).is_none());
        assert_eq!(p.now(), VirtualTime::ZERO);
        assert_eq!(p.stats().assignments_completed, 0);
    }

    #[test]
    fn warp_advances_idle_clock_monotonically() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(5));
        p.warp_to(VirtualTime(5_000));
        assert_eq!(p.now(), VirtualTime(5_000));
        p.warp_to(VirtualTime(1_000)); // never backwards
        assert_eq!(p.now(), VirtualTime(5_000));
        p.publish(tasks(20, true));
        let batches = p.run_to_completion();
        assert!(batches.iter().all(|&(t, _)| t >= VirtualTime(5_000)));
    }

    #[test]
    #[should_panic(expected = "cannot warp")]
    fn warp_rejected_while_events_pending() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(5));
        p.publish(tasks(20, true));
        p.warp_to(VirtualTime(5_000));
    }

    #[test]
    fn pair_slot_accounting_tracks_partial_hits() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(19));
        p.publish(tasks(45, true)); // batch size 20 → HITs of 20+20+5
        let stats = p.stats();
        assert_eq!(stats.hits_published, 3);
        assert_eq!(stats.pairs_published, 45);
        assert_eq!(stats.pair_slots, 60);
    }

    #[test]
    fn publish_nothing_is_noop() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(1));
        p.publish(vec![]);
        assert!(p.step().is_none());
        assert_eq!(p.stats().hits_published, 0);
    }

    #[test]
    fn open_pairs_gauge_tracks_claims() {
        let cfg = PlatformConfig { batch_size: 10, ..PlatformConfig::perfect_workers(23) };
        let mut p = Platform::new(cfg);
        p.publish(tasks(10, true));
        assert_eq!(p.num_open_pairs(), 10);
        p.run_to_completion();
        assert_eq!(p.num_open_pairs(), 0);
    }

    #[test]
    fn incremental_publishing_keeps_clock_monotonic() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(31));
        p.publish(tasks(20, true));
        let mut last = VirtualTime::ZERO;
        while let Some((t, _)) = p.step() {
            assert!(t >= last);
            last = t;
        }
        // Publish more after completion; clock keeps advancing.
        p.publish((100..120u64).map(|id| TaskSpec { id, truth: false, priority: 0.2 }).collect());
        let mut resolved2 = 0;
        while let Some((t, r)) = p.step() {
            assert!(t >= last);
            last = t;
            resolved2 += r.len();
        }
        assert_eq!(resolved2, 20);
    }
}
