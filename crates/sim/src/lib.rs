//! # crowdjoin-sim — a discrete-event crowdsourcing-platform simulator
//!
//! The paper evaluates its labeling algorithms on Amazon Mechanical Turk;
//! this crate is the in-process stand-in. It reproduces the mechanics the
//! paper's AMT experiments measure — HIT batching, replicated assignments
//! with majority voting, qualification tests, worker error rates, and the
//! worker-arrival latency that makes sequential publishing an order of
//! magnitude slower than parallel publishing (Table 1) — behind a small,
//! deterministic, seedable API.
//!
//! The crate also defines the **pluggable crowd-backend layer** the
//! execution engine is generic over: the [`CrowdBackend`] poll interface
//! (which [`Platform`] implements as the reference backend), the
//! [`BackendFactory`] that creates one backend per shard, and the
//! [`TimeSource`] clocks ([`VirtualClock`] / [`WallClock`]) that let one
//! event loop drive simulated and real-time backends alike — see
//! [`backend`] for the contract and `crowdjoin-backend-spool` for the
//! first external implementation.
//!
//! ```
//! use crowdjoin_sim::{Platform, PlatformConfig, TaskSpec};
//!
//! let mut platform = Platform::new(PlatformConfig::perfect_workers(42));
//! platform.publish(
//!     (0..40).map(|id| TaskSpec { id, truth: id % 2 == 0, priority: 0.5 }).collect(),
//! );
//! let mut labeled = 0;
//! while let Some((_time, batch)) = platform.step() {
//!     labeled += batch.len();
//! }
//! assert_eq!(labeled, 40);
//! assert_eq!(platform.stats().hits_published, 2); // 20 pairs per HIT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod config;
pub mod dist;
pub mod platform;
pub mod stager;
pub mod time;
pub mod vote;

pub use backend::{BackendFactory, CrowdBackend, ShardContext, SimFactory};
pub use clock::SharedClock;
pub use config::{AssignmentPolicy, PlatformConfig};
pub use dist::LogNormal;
pub use platform::{Platform, PlatformStats, ResolvedTask, TaskSpec, WorkerStats};
pub use stager::HitStager;
pub use time::{SimDuration, TimeSource, VirtualClock, VirtualTime, WallClock};
pub use vote::majority;
