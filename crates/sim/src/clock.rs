//! A shared virtual clock for multi-platform runs.
//!
//! The execution engine (`crowdjoin-engine`) runs one [`crate::Platform`]
//! per shard — on a worker thread in the blocking scheduler, or as a
//! poll-based state machine in the event loop (which schedules shards by
//! their [`crate::Platform::next_event_time`]). Each platform advances its
//! own virtual time independently (shards are disjoint workloads, so their
//! event streams never interact). The *job's* completion time is the
//! critical path — the maximum virtual completion time over shards — and
//! [`SharedClock`] is the lock-free accumulator concurrent drivers (the
//! worker-pool scheduler, future async backends reporting progress
//! mid-run) publish into as shards finish.

use crate::time::VirtualTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic max-accumulator of virtual time, shareable across threads.
#[derive(Debug, Default)]
pub struct SharedClock {
    max_ms: AtomicU64,
}

impl SharedClock {
    /// A clock at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a shard-local time; the clock keeps the maximum seen.
    pub fn advance_to(&self, t: VirtualTime) {
        self.max_ms.fetch_max(t.0, Ordering::AcqRel);
    }

    /// The latest virtual time any participant has published — the critical
    /// path so far.
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        VirtualTime(self.max_ms.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_maximum() {
        let c = SharedClock::new();
        assert_eq!(c.now(), VirtualTime::ZERO);
        c.advance_to(VirtualTime(50));
        c.advance_to(VirtualTime(20));
        assert_eq!(c.now(), VirtualTime(50));
        c.advance_to(VirtualTime(70));
        assert_eq!(c.now(), VirtualTime(70));
    }

    #[test]
    fn concurrent_publishes_converge() {
        let c = std::sync::Arc::new(SharedClock::new());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for t in 0..1000 {
                        c.advance_to(VirtualTime(i * 1000 + t));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), VirtualTime(7999));
    }
}
