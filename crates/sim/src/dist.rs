//! Distribution samplers over the workspace's deterministic PRNG.
//!
//! AMT task latencies are famously heavy-tailed; the simulator models worker
//! revisit delays and per-task work times as lognormals, sampled from
//! [`SplitMix64`] so every run is seed-reproducible without pulling in
//! additional dependencies.

use crowdjoin_util::SplitMix64;

/// A lognormal distribution parameterized by the *median* (seconds) and the
/// shape `sigma` (log-space standard deviation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// ln(median).
    mu: f64,
    /// Log-space standard deviation (≥ 0).
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given median and shape.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma < 0` or either is non-finite.
    #[must_use]
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median.is_finite() && median > 0.0, "median must be positive");
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be non-negative");
        Self { mu: median.ln(), sigma }
    }

    /// Samples one value (always positive).
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution's median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution's shape (log-space standard deviation).
    ///
    /// Together with [`Self::median`] this fully determines the
    /// distribution — the answer journal fingerprints platform configs
    /// from these two values.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Standard normal draw via Box–Muller.
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bernoulli draw.
pub fn bernoulli(rng: &mut SplitMix64, p: f64) -> bool {
    rng.next_f64() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lognormal_positive_and_median_close() {
        let d = LogNormal::from_median(30.0, 0.8);
        let mut rng = SplitMix64::new(7);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 30.0).abs() < 2.0, "sample median {median} too far from 30");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let d = LogNormal::from_median(10.0, 0.0);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert!((d.sample(&mut rng) - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SplitMix64::new(99);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SplitMix64::new(3);
        let hits = (0..10_000).filter(|_| bernoulli(&mut rng, 0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn invalid_median_rejected() {
        let _ = LogNormal::from_median(0.0, 1.0);
    }
}
