//! Virtual time, and the [`TimeSource`] abstraction that unifies it with
//! wall-clock deadlines.
//!
//! The simulator advances a millisecond-resolution virtual clock; integer
//! ticks keep event ordering exact and runs bit-reproducible. External
//! crowd backends measure the same `VirtualTime` ticks against a real
//! epoch instead ([`WallClock`]), so one scheduler — ordering work by
//! earliest [`crate::CrowdBackend::next_event_time`] and waiting through
//! [`TimeSource::wait_until`] — drives both without knowing which kind of
//! time it is on.

/// A point in virtual time, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The end of virtual time; no event can be scheduled at or past it.
    /// Polling completions until `MAX` drains the whole event queue.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Advances by a duration.
    #[must_use]
    pub fn after(self, d: SimDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: VirtualTime) -> SimDuration {
        assert!(earlier <= self, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Time in fractional hours (for paper-style reporting).
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }
}

/// A span of virtual time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Builds from whole minutes.
    #[must_use]
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Builds from fractional seconds (sub-millisecond truncated; negative
    /// inputs clamp to zero).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1000.0) as u64)
        }
    }

    /// Duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

/// A clock the event loop schedules against: "what time is it" plus "block
/// until this deadline". The two implementations encode the two execution
/// regimes:
///
/// * [`VirtualClock`] — simulated time. The real clocks live *inside* the
///   backends (each simulator platform advances its own `now` as it
///   processes events), so the scheduler never waits: polling the earliest
///   backend is what makes time pass.
/// * [`WallClock`] — physical time, shared by every backend of a run. A
///   deadline in the future is a real [`std::thread::sleep`].
///
/// `wait_until` may wake early (spurious wake-ups are allowed; the event
/// loop re-polls and re-sorts), but must never wake meaningfully late on
/// purpose.
pub trait TimeSource: Send + Sync {
    /// The current time on this clock. Virtual sources return
    /// [`VirtualTime::ZERO`] — their time is per-backend state, not a
    /// global clock.
    fn now(&self) -> VirtualTime;

    /// Blocks the calling scheduler thread until `t`. No-op on virtual
    /// sources and for deadlines already past.
    fn wait_until(&self, t: VirtualTime);
}

/// The [`TimeSource`] of simulated runs: never waits, because polling a
/// simulator backend is what advances its virtual clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock;

impl TimeSource for VirtualClock {
    fn now(&self) -> VirtualTime {
        VirtualTime::ZERO
    }

    fn wait_until(&self, _t: VirtualTime) {}
}

/// Wall-clock time as `VirtualTime` milliseconds since the clock's
/// creation (the job's epoch). Every backend of a run must share one
/// `WallClock` so their timestamps are comparable.
#[derive(Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose epoch (time zero) is now.
    #[must_use]
    pub fn new() -> Self {
        Self { epoch: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> VirtualTime {
        VirtualTime(u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX))
    }

    fn wait_until(&self, t: VirtualTime) {
        let now = self.now();
        if t > now && t != VirtualTime::MAX {
            std::thread::sleep(std::time::Duration::from_millis(t.0 - now.0));
        }
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{:.2}h", self.as_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VirtualTime::ZERO.after(SimDuration::from_secs(90));
        assert_eq!(t, VirtualTime(90_000));
        assert_eq!(t.since(VirtualTime::ZERO), SimDuration(90_000));
        assert_eq!(t.after(SimDuration::from_mins(1)), VirtualTime(150_000));
    }

    #[test]
    fn hours_conversion() {
        let t = VirtualTime::ZERO.after(SimDuration::from_mins(90));
        assert!((t.as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1500));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_rejects_future() {
        let _ = VirtualTime(5).since(VirtualTime(10));
    }

    #[test]
    fn virtual_clock_never_waits() {
        let clock = VirtualClock;
        assert_eq!(clock.now(), VirtualTime::ZERO);
        let start = std::time::Instant::now();
        clock.wait_until(VirtualTime(3_600_000));
        assert!(start.elapsed() < std::time::Duration::from_millis(100), "must not sleep");
    }

    #[test]
    fn wall_clock_advances_and_waits() {
        let clock = WallClock::new();
        let t0 = clock.now();
        clock.wait_until(t0.after(SimDuration(20)));
        let t1 = clock.now();
        assert!(t1 >= t0.after(SimDuration(20)), "waited to the deadline: {t0} → {t1}");
        // Past deadlines and the sentinel never block.
        clock.wait_until(VirtualTime::ZERO);
        clock.wait_until(VirtualTime::MAX);
        assert!(clock.now() >= t1, "monotone");
    }
}
