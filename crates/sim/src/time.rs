//! Virtual time.
//!
//! The simulator advances a millisecond-resolution virtual clock; integer
//! ticks keep event ordering exact and runs bit-reproducible.

/// A point in virtual time, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The end of virtual time; no event can be scheduled at or past it.
    /// Polling completions until `MAX` drains the whole event queue.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Advances by a duration.
    #[must_use]
    pub fn after(self, d: SimDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: VirtualTime) -> SimDuration {
        assert!(earlier <= self, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Time in fractional hours (for paper-style reporting).
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }
}

/// A span of virtual time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Builds from whole minutes.
    #[must_use]
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Builds from fractional seconds (sub-millisecond truncated; negative
    /// inputs clamp to zero).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1000.0) as u64)
        }
    }

    /// Duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{:.2}h", self.as_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VirtualTime::ZERO.after(SimDuration::from_secs(90));
        assert_eq!(t, VirtualTime(90_000));
        assert_eq!(t.since(VirtualTime::ZERO), SimDuration(90_000));
        assert_eq!(t.after(SimDuration::from_mins(1)), VirtualTime(150_000));
    }

    #[test]
    fn hours_conversion() {
        let t = VirtualTime::ZERO.after(SimDuration::from_mins(90));
        assert!((t.as_hours() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1500));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_rejects_future() {
        let _ = VirtualTime(5).since(VirtualTime(10));
    }
}
