//! Majority voting.

/// Majority vote over boolean answers; ties break toward `false`
/// (conservative: an undecided pair is treated as non-matching, which costs
/// recall rather than precision).
///
/// Returns `(label, yes_votes, no_votes)`.
///
/// # Panics
///
/// Panics on an empty vote set.
#[must_use]
pub fn majority(votes: &[bool]) -> (bool, u32, u32) {
    assert!(!votes.is_empty(), "majority vote needs at least one vote");
    let yes = votes.iter().filter(|&&v| v).count() as u32;
    let no = votes.len() as u32 - yes;
    (yes > no, yes, no)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_majorities() {
        assert_eq!(majority(&[true, true, false]), (true, 2, 1));
        assert_eq!(majority(&[false, false, true]), (false, 1, 2));
        assert_eq!(majority(&[true]), (true, 1, 0));
    }

    #[test]
    fn tie_breaks_to_false() {
        assert_eq!(majority(&[true, false]), (false, 1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one vote")]
    fn empty_votes_rejected() {
        let _ = majority(&[]);
    }

    proptest! {
        #[test]
        fn vote_counts_partition(votes in proptest::collection::vec(any::<bool>(), 1..20)) {
            let (label, yes, no) = majority(&votes);
            prop_assert_eq!((yes + no) as usize, votes.len());
            prop_assert_eq!(label, yes > no);
        }
    }
}
