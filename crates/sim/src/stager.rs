//! HIT staging policy shared by every platform driver.
//!
//! Iterative publishing (instant decision) would fragment tasks into tiny
//! HITs and waste money; the batching optimization of Section 6.4 says to
//! publish in full HITs of the platform's batch size. [`HitStager`]
//! centralizes that policy so the single-platform runner and the sharded
//! engine cannot drift apart: stage publishable tasks as the labeler emits
//! them, release full HITs immediately, and flush the partial remainder
//! only when the platform would otherwise sit idle waiting for it.

use crate::platform::{Platform, TaskSpec};

/// Stages publishable tasks and releases them to a [`Platform`] in full
/// HITs, counting publish rounds.
#[derive(Debug, Clone, Default)]
pub struct HitStager {
    staged: Vec<TaskSpec>,
    publish_rounds: usize,
}

impl HitStager {
    /// An empty stager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds tasks to the staging buffer (publishes nothing yet).
    pub fn stage(&mut self, tasks: impl IntoIterator<Item = TaskSpec>) {
        self.staged.extend(tasks);
    }

    /// Tasks currently staged and unpublished.
    #[must_use]
    pub fn num_staged(&self) -> usize {
        self.staged.len()
    }

    /// Publish rounds so far (a release that publishes nothing is not a
    /// round).
    #[must_use]
    pub fn publish_rounds(&self) -> usize {
        self.publish_rounds
    }

    /// Publishes every staged full HIT; with `flush`, the partial remainder
    /// too. Uses the platform's configured batch size.
    pub fn release(&mut self, platform: &mut Platform, flush: bool) {
        let batch_size = platform.batch_size();
        let full = (self.staged.len() / batch_size) * batch_size;
        let take = if flush { self.staged.len() } else { full };
        if take > 0 {
            let tasks: Vec<TaskSpec> = self.staged.drain(..take).collect();
            self.publish_rounds += 1;
            platform.publish(tasks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;

    fn tasks(n: usize) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec { id: i as u64, truth: true, priority: 0.5 }).collect()
    }

    #[test]
    fn holds_partial_hits_until_flush() {
        // batch_size 20 in the perfect_workers preset.
        let mut platform = Platform::new(PlatformConfig::perfect_workers(3));
        let mut stager = HitStager::new();
        stager.stage(tasks(25));
        stager.release(&mut platform, false);
        assert_eq!(stager.num_staged(), 5, "partial HIT stays staged");
        assert_eq!(platform.stats().hits_published, 1);
        stager.release(&mut platform, true);
        assert_eq!(stager.num_staged(), 0);
        assert_eq!(platform.stats().hits_published, 2);
        assert_eq!(stager.publish_rounds(), 2);
    }

    #[test]
    fn empty_release_is_not_a_round() {
        let mut platform = Platform::new(PlatformConfig::perfect_workers(3));
        let mut stager = HitStager::new();
        stager.release(&mut platform, true);
        assert_eq!(stager.publish_rounds(), 0);
        assert_eq!(platform.stats().hits_published, 0);
    }
}
