//! HIT staging policy shared by every platform driver.
//!
//! Iterative publishing (instant decision) would fragment tasks into tiny
//! HITs and waste money; the batching optimization of Section 6.4 says to
//! publish in full HITs of the platform's batch size. [`HitStager`]
//! centralizes that policy so the single-platform runner and the sharded
//! engine cannot drift apart: stage publishable tasks as the labeler emits
//! them, release full HITs immediately, and flush the partial remainder
//! only when the platform would otherwise sit idle waiting for it.

use crate::backend::CrowdBackend;
use crate::platform::TaskSpec;

/// Stages publishable tasks and releases them to a [`CrowdBackend`] (the
/// simulator [`crate::Platform`] or any external backend) in full HITs,
/// counting publish rounds. Carries an optional shard tag so its
/// `stager.publish` trace events attribute to the owning shard.
#[derive(Debug, Clone)]
pub struct HitStager {
    staged: Vec<TaskSpec>,
    publish_rounds: usize,
    shard: u32,
}

impl Default for HitStager {
    fn default() -> Self {
        Self { staged: Vec::new(), publish_rounds: 0, shard: crowdjoin_obs::NO_SHARD }
    }
}

impl HitStager {
    /// An empty stager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stager tagged with the owning shard's report index (trace
    /// attribution only; publishing behavior is identical).
    #[must_use]
    pub fn for_shard(shard: u32) -> Self {
        Self { shard, ..Self::default() }
    }

    /// Adds tasks to the staging buffer (publishes nothing yet).
    pub fn stage(&mut self, tasks: impl IntoIterator<Item = TaskSpec>) {
        self.staged.extend(tasks);
    }

    /// Tasks currently staged and unpublished.
    #[must_use]
    pub fn num_staged(&self) -> usize {
        self.staged.len()
    }

    /// Publish rounds so far (a release that publishes nothing is not a
    /// round).
    #[must_use]
    pub fn publish_rounds(&self) -> usize {
        self.publish_rounds
    }

    /// Publishes every staged full HIT; with `flush`, the partial remainder
    /// too. Uses the backend's configured batch size. Returns the number
    /// of pairs published (0 when nothing was released).
    pub fn release<B: CrowdBackend + ?Sized>(&mut self, backend: &mut B, flush: bool) -> usize {
        let batch_size = backend.batch_size();
        let full = (self.staged.len() / batch_size) * batch_size;
        let take = if flush { self.staged.len() } else { full };
        if take > 0 {
            let tasks: Vec<TaskSpec> = self.staged.drain(..take).collect();
            self.publish_rounds += 1;
            if crowdjoin_obs::enabled() {
                crowdjoin_obs::EventBuilder::new("sim", "stager.publish", self.shard)
                    .virt(backend.now().0)
                    .field("pairs", take)
                    .field("round", self.publish_rounds)
                    .field("flush", flush)
                    .emit();
            }
            backend.post_hits(tasks);
        }
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::platform::Platform;

    fn tasks(n: usize) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec { id: i as u64, truth: true, priority: 0.5 }).collect()
    }

    #[test]
    fn holds_partial_hits_until_flush() {
        // batch_size 20 in the perfect_workers preset.
        let mut platform = Platform::new(PlatformConfig::perfect_workers(3));
        let mut stager = HitStager::new();
        stager.stage(tasks(25));
        stager.release(&mut platform, false);
        assert_eq!(stager.num_staged(), 5, "partial HIT stays staged");
        assert_eq!(platform.stats().hits_published, 1);
        stager.release(&mut platform, true);
        assert_eq!(stager.num_staged(), 0);
        assert_eq!(platform.stats().hits_published, 2);
        assert_eq!(stager.publish_rounds(), 2);
    }

    #[test]
    fn empty_release_is_not_a_round() {
        let mut platform = Platform::new(PlatformConfig::perfect_workers(3));
        let mut stager = HitStager::new();
        stager.release(&mut platform, true);
        assert_eq!(stager.publish_rounds(), 0);
        assert_eq!(platform.stats().hits_published, 0);
    }

    #[test]
    fn flush_on_idle_with_single_staged_pair() {
        // The smallest possible partial HIT: one pair. Held back without
        // flush, published (and resolvable) as a one-pair HIT on idle flush.
        let mut platform = Platform::new(PlatformConfig::perfect_workers(5));
        let mut stager = HitStager::new();
        stager.stage(tasks(1));
        stager.release(&mut platform, false);
        assert_eq!(stager.num_staged(), 1, "lone pair must wait for the flush");
        assert_eq!(platform.stats().hits_published, 0);
        assert!(platform.step().is_none(), "nothing published, platform idle");

        stager.release(&mut platform, true);
        assert_eq!(stager.num_staged(), 0);
        assert_eq!(platform.stats().hits_published, 1);
        let (_, resolved) = platform.step().expect("the one-pair HIT resolves");
        assert_eq!(resolved.len(), 1);
        assert_eq!(stager.publish_rounds(), 1);
    }

    #[test]
    fn batch_size_one_never_holds_anything_back() {
        // With one-pair HITs every staged task is a full HIT, so a
        // non-flushing release already publishes everything.
        let cfg = PlatformConfig { batch_size: 1, ..PlatformConfig::perfect_workers(5) };
        let mut platform = Platform::new(cfg);
        let mut stager = HitStager::new();
        stager.stage(tasks(7));
        stager.release(&mut platform, false);
        assert_eq!(stager.num_staged(), 0);
        assert_eq!(platform.stats().hits_published, 7);
        assert_eq!(platform.stats().pair_slots, 7, "batch size 1 cannot fragment");
        let resolved: usize = platform.run_to_completion().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(resolved, 7);
    }

    #[test]
    fn final_round_partial_hit_resolves_and_is_accounted() {
        // A shard whose last round does not fill a HIT: the earlier full HIT
        // goes out eagerly, the 5-pair remainder only on the final flush,
        // and the platform's slot accounting shows exactly that waste.
        let mut platform = Platform::new(PlatformConfig::perfect_workers(9));
        let mut stager = HitStager::new();
        stager.stage(tasks(25));
        stager.release(&mut platform, false);
        assert_eq!(platform.stats().hits_published, 1);
        let resolved: usize = platform.run_to_completion().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(resolved, 20);

        // Final round: the leftover partial HIT flushes once the platform
        // would otherwise idle.
        stager.release(&mut platform, true);
        assert_eq!(stager.num_staged(), 0);
        let resolved: usize = platform.run_to_completion().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(resolved, 5);
        let stats = platform.stats();
        assert_eq!(stats.hits_published, 2);
        assert_eq!(stats.pairs_published, 25);
        assert_eq!(stats.pair_slots, 40, "final partial HIT wastes 15 slots");
        assert_eq!(stager.publish_rounds(), 2);
    }
}
