//! The pluggable crowd-backend layer.
//!
//! The engine's transitive-deduction machinery only needs *answers*: it
//! posts batches of boolean questions and consumes majority-voted
//! resolutions. Everything else — who answers, how long it takes, what a
//! "worker" even is — belongs behind [`CrowdBackend`], the non-blocking
//! poll interface every platform driver speaks:
//!
//! * [`CrowdBackend::post_hits`] — submit tasks, return immediately;
//! * [`CrowdBackend::poll_completions`] — hand back the next resolution
//!   batch ready at or before a deadline, never blocking;
//! * [`CrowdBackend::next_event_time`] — when the backend next deserves a
//!   poll, the scheduling hook event loops order their wake-ups by.
//!
//! Two families implement it:
//!
//! * the in-process discrete-event simulator ([`Platform`]) on
//!   **virtual** time — polling *is* what advances its clock, so a
//!   scheduler never waits;
//! * external backends (e.g. the spool-directory backend in
//!   `crowdjoin-backend-spool`) on **wall-clock** time — polling is real
//!   I/O and the scheduler sleeps between deadlines.
//!
//! The [`TimeSource`] abstraction (in [`crate::time`]) is what lets one
//! event loop drive both: it waits on wall clocks and no-ops on virtual
//! ones.
//!
//! ## Time-source rules
//!
//! A backend reports every instant ([`CrowdBackend::now`], resolution
//! times, [`CrowdBackend::next_event_time`]) on **one** clock, the clock of
//! its [`BackendFactory::time_source`]. The contract between backend and
//! scheduler:
//!
//! 1. `now()` is monotone non-decreasing;
//! 2. `poll_completions(until)` never advances `now()` past `until` and
//!    never returns a resolution stamped later than `now()`;
//! 3. `next_event_time()` is `None` **iff** the backend is drained (no
//!    posted task unresolved, no resolution unpolled) — `None` is how a
//!    driver recognizes a round boundary, so a backend that still owes
//!    resolutions must keep returning a next poll deadline;
//! 4. a backend with an unpolled resolution reports `next_event_time() ==
//!    now()` — it is ready immediately.

use crate::config::PlatformConfig;
use crate::platform::{Platform, PlatformStats, ResolvedTask, TaskSpec};
use crate::time::{TimeSource, VirtualClock, VirtualTime};

/// A non-blocking crowd platform: the interface the engine's `ShardTask`
/// state machines and event loop are generic over. See the module docs for
/// the time-source rules implementations must uphold.
///
/// `Send` + [`std::fmt::Debug`] are supertraits because backends travel
/// between event-loop worker threads inside their tasks.
pub trait CrowdBackend: Send + std::fmt::Debug {
    /// Submits tasks for crowd labeling and returns immediately. The
    /// backend batches them into HITs of [`Self::batch_size`] itself when
    /// the transport needs it; callers pre-batch via `HitStager`, so a
    /// call never splits a full HIT.
    fn post_hits(&mut self, tasks: Vec<TaskSpec>);

    /// Returns the next resolution batch ready **no later than `until`**,
    /// or `None` once no completion at or before `until` is available.
    /// Must not block beyond bounded I/O (a directory scan, a socket
    /// read); waiting for `until` to arrive is the scheduler's job via
    /// [`TimeSource::wait_until`].
    fn poll_completions(&mut self, until: VirtualTime) -> Option<(VirtualTime, Vec<ResolvedTask>)>;

    /// When this backend next deserves a poll: the earliest pending event
    /// (virtual backends) or a polling deadline (wall-clock backends).
    /// `None` iff drained — nothing posted is unresolved and nothing
    /// resolved is unpolled.
    fn next_event_time(&self) -> Option<VirtualTime>;

    /// The backend's current time, on its factory's [`TimeSource`] clock.
    fn now(&self) -> VirtualTime;

    /// Tasks posted but not yet resolved (drives the drivers' shared
    /// partial-HIT flush and instant-decision policies).
    fn num_unresolved_pairs(&self) -> usize;

    /// Pairs per HIT — the staging granularity (`HitStager` releases full
    /// multiples of this, flushing partials only on idle).
    fn batch_size(&self) -> usize;

    /// Aggregate counters so far (HITs, assignments, money, last
    /// resolution time).
    fn stats(&self) -> PlatformStats;

    /// Advances an **idle** backend's clock to at least `t`, used when a
    /// backend is created mid-job (dynamic re-sharding) so its timeline
    /// continues its predecessors'. Wall-clock backends, whose `now` is
    /// physical, may ignore it.
    fn warp_to(&mut self, t: VirtualTime);

    /// Folds money a resumed journal already paid into this backend's
    /// ledger, so [`Self::stats`]' `total_cost_cents` covers the whole job
    /// under feed-replay (see [`BackendFactory::deterministic_replay`]).
    /// Deterministic backends re-derive that spend by re-execution and
    /// keep the default no-op.
    fn absorb_replayed_cost(&mut self, _cents: u64) {}
}

/// [`Platform`] is the reference backend: the discrete-event simulator on
/// virtual time. Every method is a delegation to the inherent API the
/// blocking drivers already use, so routing through the trait cannot change
/// behavior.
impl CrowdBackend for Platform {
    fn post_hits(&mut self, tasks: Vec<TaskSpec>) {
        Platform::post_hits(self, tasks);
    }

    fn poll_completions(&mut self, until: VirtualTime) -> Option<(VirtualTime, Vec<ResolvedTask>)> {
        Platform::poll_completions(self, until)
    }

    fn next_event_time(&self) -> Option<VirtualTime> {
        Platform::next_event_time(self)
    }

    fn now(&self) -> VirtualTime {
        Platform::now(self)
    }

    fn num_unresolved_pairs(&self) -> usize {
        Platform::num_unresolved_pairs(self)
    }

    fn batch_size(&self) -> usize {
        Platform::batch_size(self)
    }

    fn stats(&self) -> PlatformStats {
        Platform::stats(self)
    }

    fn warp_to(&mut self, t: VirtualTime) {
        Platform::warp_to(self, t);
    }
}

/// Identity of one shard incarnation a backend is created for: enough for
/// a factory to derive unique spool names, topics, or queue ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardContext {
    /// Re-sharding generation (0 for the initial partition).
    pub generation: usize,
    /// Shard index within its generation's partition.
    pub shard_index: usize,
    /// Concurrent shards in this generation.
    pub active_shards: usize,
    /// Globally unique report index of this incarnation — unique across
    /// generations, so it is the right key for external namespaces (the
    /// spool backend names its HIT files with it) and for the journal.
    pub report_index: usize,
}

/// Creates the per-shard backends of one engine run and owns their shared
/// clock. The engine derives a per-shard [`PlatformConfig`] (seed, crowd
/// split) and hands it to [`BackendFactory::create`]; backends are free to
/// use only the fields that apply to them (the spool backend reads
/// `batch_size` and `price_per_assignment_cents` and ignores the simulated
/// worker pool).
pub trait BackendFactory: Sync {
    /// The backend type this factory creates.
    type Backend: CrowdBackend;

    /// Creates the backend for one shard incarnation.
    fn create(&self, cfg: &PlatformConfig, shard: &ShardContext) -> Self::Backend;

    /// The clock the event loop schedules (and waits) against. Must be the
    /// clock every created backend stamps its events with.
    fn time_source(&self) -> &dyn TimeSource;

    /// Whether a resumed journal replays by deterministic **re-execution**
    /// (`true`: the engine re-derives every record and verifies it
    /// bit-for-bit against the journal — only sound when same seed ⇒ same
    /// run) or by **feeding** (`false`: journaled answers are fed straight
    /// into the labelers without touching the backend, and only the
    /// remainder is posted — the only option when answers come from the
    /// outside world).
    fn deterministic_replay(&self) -> bool;
}

/// The factory of the simulated-crowd path: one deterministic [`Platform`]
/// per shard, virtual time, re-execution replay. [`Default`]-constructible
/// because it carries no state beyond the shared [`VirtualClock`].
#[derive(Debug, Default)]
pub struct SimFactory {
    clock: VirtualClock,
}

impl SimFactory {
    /// A simulator factory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl BackendFactory for SimFactory {
    type Backend = Platform;

    fn create(&self, cfg: &PlatformConfig, _shard: &ShardContext) -> Platform {
        Platform::new(cfg.clone())
    }

    fn time_source(&self) -> &dyn TimeSource {
        &self.clock
    }

    fn deterministic_replay(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: usize) -> Vec<TaskSpec> {
        (0..n).map(|i| TaskSpec { id: i as u64, truth: true, priority: 0.5 }).collect()
    }

    /// Driving a platform through the trait is the same as driving it
    /// directly — the bit-identity the engine's pinned suites rely on.
    #[test]
    fn trait_routed_platform_is_identical() {
        let mut direct = Platform::new(PlatformConfig::perfect_workers(7));
        direct.publish(tasks(50));
        let expected = direct.run_to_completion();

        let factory = SimFactory::new();
        let shard =
            ShardContext { generation: 0, shard_index: 0, active_shards: 1, report_index: 0 };
        let mut routed: Box<dyn CrowdBackend> =
            Box::new(factory.create(&PlatformConfig::perfect_workers(7), &shard));
        routed.post_hits(tasks(50));
        let mut batches = Vec::new();
        while let Some(t) = routed.next_event_time() {
            if let Some(batch) = routed.poll_completions(t) {
                batches.push(batch);
            }
        }
        assert_eq!(batches, expected);
        assert_eq!(routed.stats(), direct.stats());
        assert_eq!(routed.now(), direct.now());
        assert_eq!(routed.num_unresolved_pairs(), 0);
        assert!(factory.deterministic_replay());
    }

    /// The default `absorb_replayed_cost` is a no-op (re-execution replay
    /// regenerates spend); `warp_to` keeps its platform semantics.
    #[test]
    fn platform_trait_defaults() {
        let mut p = Platform::new(PlatformConfig::perfect_workers(5));
        CrowdBackend::absorb_replayed_cost(&mut p, 999);
        assert_eq!(CrowdBackend::stats(&p).total_cost_cents, 0);
        CrowdBackend::warp_to(&mut p, VirtualTime(1234));
        assert_eq!(CrowdBackend::now(&p), VirtualTime(1234));
        assert_eq!(CrowdBackend::batch_size(&p), 20);
    }
}
