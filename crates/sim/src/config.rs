//! Platform configuration.

use crate::dist::LogNormal;

/// How idle workers choose among available HITs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// Uniformly random — what AMT actually does (Section 6.4 notes AMT "can
    /// only randomly assign HITs to workers").
    Random,
    /// Lowest-likelihood HITs first — the *non-matching first* optimization
    /// (Section 5.2), only realizable in simulation.
    NonMatchingFirst,
}

/// Tunables of the simulated crowdsourcing platform.
///
/// Defaults follow the paper's AMT setup: 20 pairs per HIT, 3 assignments
/// per HIT (majority vote), 2 ¢ per assignment, and a qualification test of
/// 3 questions gating workers.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Pairs batched into one HIT (paper: 20).
    pub batch_size: usize,
    /// Replicated assignments per HIT (paper: 3; majority vote decides).
    pub assignments_per_hit: u32,
    /// Price per completed assignment, in cents (paper: 2).
    pub price_per_assignment_cents: u32,
    /// Size of the worker pool.
    pub num_workers: usize,
    /// Fraction of low-accuracy ("spammer") workers.
    pub spammer_fraction: f64,
    /// Answer accuracy of diligent workers.
    pub good_accuracy: f64,
    /// Answer accuracy of spammers.
    pub spammer_accuracy: f64,
    /// Whether workers must pass a qualification test before taking HITs.
    pub qualification_test: bool,
    /// Number of questions in the qualification test (paper: 3, all must be
    /// answered correctly).
    pub qualification_questions: u32,
    /// HIT selection policy for idle workers.
    pub assignment_policy: AssignmentPolicy,
    /// Per-pair labeling time (seconds).
    pub work_time_per_pair: LogNormal,
    /// Delay until an off-platform worker next visits and notices available
    /// work (seconds) — the dominant AMT latency term.
    pub revisit_delay: LogNormal,
    /// Short pause between consecutive assignments of a busy worker
    /// (seconds).
    pub between_assignments: LogNormal,
    /// Probability that a started assignment is abandoned (the worker walks
    /// away without submitting; the assignment re-opens after
    /// [`Self::abandonment_timeout_secs`]).
    pub abandonment_rate: f64,
    /// Platform-side assignment duration: an abandoned assignment is
    /// detected and re-opened after this many seconds.
    pub abandonment_timeout_secs: f64,
    /// Master seed for all platform randomness.
    pub seed: u64,
}

impl PlatformConfig {
    /// An AMT-like profile with imperfect workers (Table 2 experiments).
    #[must_use]
    pub fn amt_like(seed: u64) -> Self {
        Self {
            batch_size: 20,
            assignments_per_hit: 3,
            price_per_assignment_cents: 2,
            num_workers: 40,
            spammer_fraction: 0.25,
            good_accuracy: 0.9,
            spammer_accuracy: 0.55,
            qualification_test: true,
            qualification_questions: 3,
            assignment_policy: AssignmentPolicy::Random,
            work_time_per_pair: LogNormal::from_median(12.0, 0.6),
            revisit_delay: LogNormal::from_median(1800.0, 1.0),
            between_assignments: LogNormal::from_median(20.0, 0.5),
            abandonment_rate: 0.05,
            abandonment_timeout_secs: 1800.0,
            seed,
        }
    }

    /// Same latency model but perfectly accurate workers — the paper's
    /// Table 1 setting ("we simulated that the crowd in AMT always gave us
    /// correct labels").
    #[must_use]
    pub fn perfect_workers(seed: u64) -> Self {
        Self {
            spammer_fraction: 0.0,
            good_accuracy: 1.0,
            qualification_test: false,
            abandonment_rate: 0.0,
            ..Self::amt_like(seed)
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.batch_size >= 1, "batch_size must be positive");
        assert!(self.assignments_per_hit >= 1, "assignments_per_hit must be positive");
        assert!(self.num_workers >= self.assignments_per_hit as usize,
            "need at least as many workers as assignments per HIT (a worker may take only one assignment of a HIT)");
        assert!(self.abandonment_timeout_secs > 0.0, "abandonment_timeout_secs must be positive");
        for (name, v) in [
            ("spammer_fraction", self.spammer_fraction),
            ("good_accuracy", self.good_accuracy),
            ("spammer_accuracy", self.spammer_accuracy),
            ("abandonment_rate", self.abandonment_rate),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        PlatformConfig::amt_like(1).validate();
        PlatformConfig::perfect_workers(1).validate();
    }

    #[test]
    fn perfect_workers_has_no_spammers() {
        let cfg = PlatformConfig::perfect_workers(0);
        assert_eq!(cfg.spammer_fraction, 0.0);
        assert_eq!(cfg.good_accuracy, 1.0);
        assert!(!cfg.qualification_test);
    }

    #[test]
    #[should_panic(expected = "at least as many workers")]
    fn too_few_workers_rejected() {
        let cfg = PlatformConfig { num_workers: 2, ..PlatformConfig::amt_like(0) };
        cfg.validate();
    }
}
