//! The **Non-Transitive** baseline: crowdsource every candidate pair.
//!
//! This is what prior hybrid human–machine systems (CrowdER et al.) do once
//! the machine has produced the candidate set, and it is the comparison
//! point of Figure 11 and Table 2. Every pair costs one crowd answer; no
//! deduction happens, so no deduction error can propagate either.

use crate::oracle::Oracle;
use crate::result::LabelingResult;
use crate::types::{Provenance, ScoredPair};

/// Labels every pair by asking the oracle — no transitive deduction.
pub fn label_non_transitive(order: &[ScoredPair], oracle: &mut dyn Oracle) -> LabelingResult {
    let mut result = LabelingResult::new();
    for sp in order {
        let label = oracle.answer(sp.pair);
        result.record(sp.pair, label, Provenance::Crowdsourced);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::truth::GroundTruth;
    use crate::types::Pair;

    #[test]
    fn crowdsources_every_pair() {
        let truth = GroundTruth::from_clusters(4, &[vec![0, 1, 2, 3]]);
        let order: Vec<ScoredPair> = [(0, 1), (1, 2), (0, 2), (2, 3)]
            .into_iter()
            .map(|(a, b)| ScoredPair::new(Pair::new(a, b), 0.5))
            .collect();
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_non_transitive(&order, &mut oracle);
        assert_eq!(result.num_crowdsourced(), 4);
        assert_eq!(result.num_deduced(), 0);
        assert_eq!(oracle.questions_asked(), 4);
        assert_eq!(result.savings_ratio(), 0.0);
    }

    #[test]
    fn labels_are_oracle_answers() {
        let truth = GroundTruth::from_clusters(3, &[vec![0, 2]]);
        let order: Vec<ScoredPair> = [(0, 1), (0, 2), (1, 2)]
            .into_iter()
            .map(|(a, b)| ScoredPair::new(Pair::new(a, b), 0.5))
            .collect();
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_non_transitive(&order, &mut oracle);
        for sp in &order {
            assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }
}
