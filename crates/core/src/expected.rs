//! Exact expected-cost analysis of labeling orders (Section 4.2).
//!
//! Each candidate pair carries a probability of being matching. A *world* is
//! a joint labeling of all pairs; only **consistent** worlds are possible —
//! a labeling is realizable by some entity clustering iff no non-matching
//! pair connects two objects that matching pairs place in one cluster. The
//! expected number of crowdsourced pairs of an order is the
//! consistency-renormalized expectation of the sequential labeler's cost over
//! worlds (this reproduces Example 4's arithmetic exactly).
//!
//! Finding the order minimizing this expectation is NP-hard (Vesdapunt et
//! al., VLDB 2014 — acknowledged in the paper's revision), so the production
//! path uses the likelihood-descending heuristic; this module provides the
//! exact machinery for small instances so the heuristic's gap can be
//! measured (ablation benches) and the paper's worked example can be pinned
//! in tests.

use crate::types::{Label, Pair, ScoredPair};
use crowdjoin_graph::{ClusterGraph, UnionFind};
use crowdjoin_util::FxHashMap;

/// Hard cap on the number of pairs world enumeration accepts (2^m worlds).
pub const MAX_ENUMERABLE_PAIRS: usize = 22;

/// Error returned when an instance is too large for exact enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyPairs {
    /// Number of pairs in the offending instance.
    pub pairs: usize,
}

impl std::fmt::Display for TooManyPairs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact world enumeration supports at most {MAX_ENUMERABLE_PAIRS} pairs, got {}",
            self.pairs
        )
    }
}

impl std::error::Error for TooManyPairs {}

/// A consistent world: one label per pair (indexed like the input pairs) and
/// its renormalized probability.
#[derive(Debug, Clone)]
pub struct World {
    /// Label of each pair, in input order.
    pub labels: Vec<Label>,
    /// Probability of this world, renormalized over consistent worlds.
    pub probability: f64,
}

/// Exact enumeration of all consistent worlds of a small instance.
#[derive(Debug, Clone)]
pub struct WorldEnumeration {
    num_objects: usize,
    pairs: Vec<ScoredPair>,
    index_of: FxHashMap<Pair, usize>,
    worlds: Vec<World>,
}

impl WorldEnumeration {
    /// Enumerates the consistent worlds of `pairs` over `num_objects`
    /// objects, with probabilities renormalized to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyPairs`] when `pairs.len() > MAX_ENUMERABLE_PAIRS`.
    pub fn new(num_objects: usize, pairs: &[ScoredPair]) -> Result<Self, TooManyPairs> {
        let m = pairs.len();
        if m > MAX_ENUMERABLE_PAIRS {
            return Err(TooManyPairs { pairs: m });
        }
        let index_of: FxHashMap<Pair, usize> =
            pairs.iter().enumerate().map(|(i, sp)| (sp.pair, i)).collect();
        assert_eq!(index_of.len(), m, "duplicate pairs in instance");

        let mut worlds = Vec::new();
        let mut total = 0.0f64;
        for mask in 0u64..(1u64 << m) {
            let labels: Vec<Label> = (0..m)
                .map(|i| if mask >> i & 1 == 1 { Label::Matching } else { Label::NonMatching })
                .collect();
            if !is_consistent(num_objects, pairs, &labels) {
                continue;
            }
            let mut prob = 1.0;
            for (i, sp) in pairs.iter().enumerate() {
                prob *= match labels[i] {
                    Label::Matching => sp.likelihood,
                    Label::NonMatching => 1.0 - sp.likelihood,
                };
            }
            total += prob;
            worlds.push(World { labels, probability: prob });
        }
        // Degenerate instances (a pair with likelihood exactly 0 or 1 forcing
        // inconsistency) can make the total zero; fall back to uniform over
        // consistent worlds so expectations stay defined.
        if total > 0.0 {
            for w in &mut worlds {
                w.probability /= total;
            }
        } else if !worlds.is_empty() {
            let uniform = 1.0 / worlds.len() as f64;
            for w in &mut worlds {
                w.probability = uniform;
            }
        }
        Ok(Self { num_objects, pairs: pairs.to_vec(), index_of, worlds })
    }

    /// The consistent worlds.
    #[must_use]
    pub fn worlds(&self) -> &[World] {
        &self.worlds
    }

    /// Number of consistent worlds.
    #[must_use]
    pub fn num_worlds(&self) -> usize {
        self.worlds.len()
    }

    /// The instance's pairs in input order.
    #[must_use]
    pub fn pairs(&self) -> &[ScoredPair] {
        &self.pairs
    }

    /// Expected number of crowdsourced pairs for labeling order `order`
    /// (pair indices into [`Self::pairs`], a permutation).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..pairs.len()`.
    #[must_use]
    pub fn expected_cost(&self, order: &[usize]) -> f64 {
        self.check_permutation(order);
        self.worlds.iter().map(|w| w.probability * self.world_cost(order, &w.labels) as f64).sum()
    }

    /// Expected cost of an order expressed as pairs rather than indices.
    ///
    /// # Panics
    ///
    /// Panics if the order is not a permutation of the instance's pairs.
    #[must_use]
    pub fn expected_cost_of_pairs(&self, order: &[ScoredPair]) -> f64 {
        let indices: Vec<usize> = order
            .iter()
            .map(|sp| {
                *self
                    .index_of
                    .get(&sp.pair)
                    .unwrap_or_else(|| panic!("pair {} not in instance", sp.pair))
            })
            .collect();
        self.expected_cost(&indices)
    }

    /// Number of crowdsourced pairs the sequential labeler incurs for
    /// `order` in the world `labels`.
    fn world_cost(&self, order: &[usize], labels: &[Label]) -> usize {
        let mut graph = ClusterGraph::new(self.num_objects);
        let mut cost = 0;
        for &i in order {
            let pair = self.pairs[i].pair;
            if graph.deduce(pair.a(), pair.b()).is_none() {
                cost += 1;
                graph
                    .insert(pair.a(), pair.b(), labels[i])
                    .expect("consistent world cannot conflict");
            }
        }
        cost
    }

    /// Exhaustive search for the expected-optimal order. Exponential in the
    /// number of pairs — intended for instances of at most ~8 pairs.
    ///
    /// Returns `(order, expected_cost)` minimizing the expectation; ties
    /// break toward the lexicographically smallest index order, making the
    /// result deterministic.
    #[must_use]
    pub fn brute_force_optimal(&self) -> (Vec<usize>, f64) {
        let m = self.pairs.len();
        let mut best_order: Vec<usize> = (0..m).collect();
        if m == 0 {
            return (best_order, 0.0);
        }
        let mut best_cost = self.expected_cost(&best_order);
        let mut current: Vec<usize> = (0..m).collect();
        // Iterative Heap's algorithm over index permutations.
        let mut c = vec![0usize; m];
        let mut i = 0;
        while i < m {
            if c[i] < i {
                if i % 2 == 0 {
                    current.swap(0, i);
                } else {
                    current.swap(c[i], i);
                }
                let cost = self.expected_cost(&current);
                if cost + 1e-12 < best_cost {
                    best_cost = cost;
                    best_order = current.clone();
                }
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
        (best_order, best_cost)
    }

    fn check_permutation(&self, order: &[usize]) {
        assert_eq!(order.len(), self.pairs.len(), "order length mismatch");
        let mut seen = vec![false; self.pairs.len()];
        for &i in order {
            assert!(i < seen.len() && !seen[i], "order is not a permutation");
            seen[i] = true;
        }
    }
}

/// Monte Carlo estimate of the expected number of crowdsourced pairs for
/// `order`, usable beyond [`MAX_ENUMERABLE_PAIRS`].
///
/// Consistent worlds are drawn by rejection: each pair is labeled matching
/// with its likelihood independently and the draw is kept only if it is
/// realizable (no non-matching pair inside a matching-connected component).
/// This samples exactly the renormalized distribution the exact machinery
/// integrates over.
///
/// Returns `None` when fewer than `samples` consistent worlds were found
/// within `samples * 1000` attempts (pathologically coupled instances).
#[must_use]
pub fn estimate_expected_cost(
    num_objects: usize,
    order: &[ScoredPair],
    samples: usize,
    seed: u64,
) -> Option<f64> {
    assert!(samples > 0, "need at least one sample");
    let mut rng = crowdjoin_util::SplitMix64::new(seed);
    let mut total = 0.0f64;
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let max_attempts = samples.saturating_mul(1000);
    let mut labels = vec![Label::NonMatching; order.len()];
    while accepted < samples && attempts < max_attempts {
        attempts += 1;
        for (i, sp) in order.iter().enumerate() {
            labels[i] =
                if rng.next_f64() < sp.likelihood { Label::Matching } else { Label::NonMatching };
        }
        if !is_consistent(num_objects, order, &labels) {
            continue;
        }
        accepted += 1;
        // Replay the sequential labeler in this world.
        let mut graph = ClusterGraph::new(num_objects);
        let mut cost = 0usize;
        for (i, sp) in order.iter().enumerate() {
            if graph.deduce(sp.pair.a(), sp.pair.b()).is_none() {
                cost += 1;
                graph
                    .insert(sp.pair.a(), sp.pair.b(), labels[i])
                    .expect("consistent world cannot conflict");
            }
        }
        total += cost as f64;
    }
    (accepted >= samples).then(|| total / accepted as f64)
}

/// A labeling of pairs is consistent iff no non-matching pair connects two
/// objects that the matching pairs place in the same cluster.
#[must_use]
pub fn is_consistent(num_objects: usize, pairs: &[ScoredPair], labels: &[Label]) -> bool {
    debug_assert_eq!(pairs.len(), labels.len());
    let mut uf = UnionFind::new(num_objects);
    for (sp, &label) in pairs.iter().zip(labels) {
        if label == Label::Matching {
            uf.union(sp.pair.a(), sp.pair.b());
        }
    }
    pairs
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l == Label::NonMatching)
        .all(|(sp, _)| !uf.connected(sp.pair.a(), sp.pair.b()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 4: triangle with likelihoods 0.9 / 0.5 / 0.1.
    fn example4() -> (usize, Vec<ScoredPair>) {
        (
            3,
            vec![
                ScoredPair::new(Pair::new(0, 1), 0.9), // p1
                ScoredPair::new(Pair::new(1, 2), 0.5), // p2
                ScoredPair::new(Pair::new(0, 2), 0.1), // p3
            ],
        )
    }

    #[test]
    fn triangle_has_five_consistent_worlds() {
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        assert_eq!(we.num_worlds(), 5);
        let total: f64 = we.worlds().iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example4_expected_costs() {
        // E[C(ω1..ω6)] = 2.09, 2.17, 2.83, 2.09, 2.17, 2.83 (paper values,
        // rounded to two decimals).
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        let expect = |order: &[usize]| we.expected_cost(order);
        let approx = |x: f64, y: f64| (x - y).abs() < 5e-3;
        assert!(approx(expect(&[0, 1, 2]), 2.0917), "{}", expect(&[0, 1, 2])); // ω1
        assert!(approx(expect(&[0, 2, 1]), 2.1651), "{}", expect(&[0, 2, 1])); // ω2
        assert!(approx(expect(&[1, 2, 0]), 2.8257), "{}", expect(&[1, 2, 0])); // ω3
        assert!(approx(expect(&[1, 0, 2]), 2.0917), "{}", expect(&[1, 0, 2])); // ω4
        assert!(approx(expect(&[2, 0, 1]), 2.1651), "{}", expect(&[2, 0, 1])); // ω5
        assert!(approx(expect(&[2, 1, 0]), 2.8257), "{}", expect(&[2, 1, 0])); // ω6
    }

    #[test]
    fn example4_brute_force_picks_omega1_or_omega4() {
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        let (order, cost) = we.brute_force_optimal();
        assert!((cost - 2.0917).abs() < 5e-3);
        assert!(order == vec![0, 1, 2] || order == vec![1, 0, 2], "{order:?}");
    }

    #[test]
    fn heuristic_matches_brute_force_on_example4() {
        // Likelihood-descending = ⟨p1, p2, p3⟩ = ω1, which is optimal here.
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        let heuristic_cost = we.expected_cost(&[0, 1, 2]);
        let (_, best) = we.brute_force_optimal();
        assert!((heuristic_cost - best).abs() < 1e-9);
    }

    #[test]
    fn consistency_check_matches_intuition() {
        let (n, pairs) = example4();
        use Label::{Matching as M, NonMatching as N};
        assert!(is_consistent(n, &pairs, &[M, M, M]));
        assert!(is_consistent(n, &pairs, &[N, N, N]));
        assert!(is_consistent(n, &pairs, &[N, N, M]));
        assert!(!is_consistent(n, &pairs, &[M, M, N]));
        assert!(!is_consistent(n, &pairs, &[M, N, M]));
        assert!(!is_consistent(n, &pairs, &[N, M, M]));
    }

    #[test]
    fn rejects_oversized_instances() {
        let pairs: Vec<ScoredPair> = (0..MAX_ENUMERABLE_PAIRS as u32 + 1)
            .map(|i| ScoredPair::new(Pair::new(i, i + 100), 0.5))
            .collect();
        let err = WorldEnumeration::new(200, &pairs).unwrap_err();
        assert_eq!(err.pairs, MAX_ENUMERABLE_PAIRS + 1);
    }

    #[test]
    fn empty_instance() {
        let we = WorldEnumeration::new(3, &[]).unwrap();
        assert_eq!(we.num_worlds(), 1, "only the empty world");
        assert_eq!(we.expected_cost(&[]), 0.0);
        let (order, cost) = we.brute_force_optimal();
        assert!(order.is_empty());
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn disconnected_pairs_all_cost_one() {
        // Two disjoint pairs: nothing is ever deducible, expected cost = 2
        // for every order.
        let pairs =
            vec![ScoredPair::new(Pair::new(0, 1), 0.7), ScoredPair::new(Pair::new(2, 3), 0.4)];
        let we = WorldEnumeration::new(4, &pairs).unwrap();
        assert_eq!(we.num_worlds(), 4, "all four labelings are consistent");
        assert!((we.expected_cost(&[0, 1]) - 2.0).abs() < 1e-12);
        assert!((we.expected_cost(&[1, 0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expected_cost_of_pairs_maps_correctly() {
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        let reordered = vec![pairs[1], pairs[0], pairs[2]]; // ω4
        let via_pairs = we.expected_cost_of_pairs(&reordered);
        let via_indices = we.expected_cost(&[1, 0, 2]);
        assert!((via_pairs - via_indices).abs() < 1e-15);
    }

    #[test]
    fn monte_carlo_matches_exact_on_example4() {
        let (n, pairs) = example4();
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        let exact = we.expected_cost(&[0, 1, 2]);
        let mc = estimate_expected_cost(n, &pairs, 20_000, 7).unwrap();
        assert!((mc - exact).abs() < 0.03, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn monte_carlo_is_seed_deterministic() {
        let (n, pairs) = example4();
        let a = estimate_expected_cost(n, &pairs, 500, 1).unwrap();
        let b = estimate_expected_cost(n, &pairs, 500, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn monte_carlo_scales_past_exact_cap() {
        // 30 pairs — beyond MAX_ENUMERABLE_PAIRS — still estimable.
        let mut pairs = Vec::new();
        for i in 0..30u32 {
            pairs.push(ScoredPair::new(Pair::new(i, i + 1), 0.5));
        }
        assert!(WorldEnumeration::new(31, &pairs).is_err());
        let est = estimate_expected_cost(31, &pairs, 200, 3).unwrap();
        // A path graph: nothing is ever deducible, cost is exactly 30.
        assert!((est - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn monte_carlo_rejects_zero_samples() {
        let (n, pairs) = example4();
        let _ = estimate_expected_cost(n, &pairs, 0, 1);
    }

    #[test]
    fn extreme_likelihoods_stay_defined() {
        // p=1.0 matching edges force worlds; ensure normalization survives.
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 1.0),
            ScoredPair::new(Pair::new(1, 2), 1.0),
            ScoredPair::new(Pair::new(0, 2), 0.0),
        ];
        let we = WorldEnumeration::new(3, &pairs).unwrap();
        // All-matching is the only world with non-zero raw weight... but its
        // weight is 1*1*(1-0)=... p3 non-matching has probability 1 yet is
        // inconsistent with the forced matches, so the raw total is 0 and the
        // uniform fallback kicks in.
        let total: f64 = we.worlds().iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let cost = we.expected_cost(&[0, 1, 2]);
        assert!(cost.is_finite());
    }
}
