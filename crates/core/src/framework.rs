//! The hybrid transitive-relations + crowdsourcing labeling framework
//! (Section 3, Figure 4): sorting component + labeling component behind one
//! entry point.

use crate::baseline::label_non_transitive;
use crate::oracle::Oracle;
use crate::parallel::{run_parallel_rounds, ParallelRunStats};
use crate::result::LabelingResult;
use crate::sequential::label_sequential;
use crate::sort::{sort_pairs, SortStrategy};
use crate::types::CandidateSet;

/// A labeling task: machine-generated candidate pairs awaiting labels.
///
/// ```
/// use crowdjoin_core::{
///     CandidateSet, GroundTruth, GroundTruthOracle, LabelingTask, Pair, ScoredPair,
///     SortStrategy,
/// };
///
/// let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
/// let candidates = CandidateSet::new(3, vec![
///     ScoredPair::new(Pair::new(0, 1), 0.9),
///     ScoredPair::new(Pair::new(1, 2), 0.8),
///     ScoredPair::new(Pair::new(0, 2), 0.7),
/// ]);
/// let task = LabelingTask::new(candidates);
/// let mut oracle = GroundTruthOracle::new(&truth);
/// let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut oracle);
/// assert_eq!(result.num_crowdsourced(), 2); // third pair deduced
/// assert_eq!(result.num_deduced(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LabelingTask {
    candidates: CandidateSet,
}

impl LabelingTask {
    /// Wraps a candidate set as a labeling task.
    #[must_use]
    pub fn new(candidates: CandidateSet) -> Self {
        Self { candidates }
    }

    /// The underlying candidate set.
    #[must_use]
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Sorts then labels one pair at a time (Section 3.2's simple labeler).
    pub fn run_sequential(
        &self,
        strategy: SortStrategy<'_>,
        oracle: &mut dyn Oracle,
    ) -> LabelingResult {
        let order = sort_pairs(&self.candidates, strategy);
        label_sequential(self.candidates.num_objects(), &order, oracle)
    }

    /// Sorts then labels with the parallel algorithm (Section 5), one crowd
    /// round trip per iteration.
    pub fn run_parallel(
        &self,
        strategy: SortStrategy<'_>,
        oracle: &mut dyn Oracle,
    ) -> (LabelingResult, ParallelRunStats) {
        let order = sort_pairs(&self.candidates, strategy);
        run_parallel_rounds(self.candidates.num_objects(), order, oracle)
    }

    /// The non-transitive baseline: crowdsource every candidate pair.
    pub fn run_non_transitive(&self, oracle: &mut dyn Oracle) -> LabelingResult {
        label_non_transitive(self.candidates.pairs(), oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::truth::GroundTruth;
    use crate::types::{Pair, ScoredPair};

    fn task() -> (LabelingTask, GroundTruth) {
        let truth = GroundTruth::from_clusters(4, &[vec![0, 1, 2, 3]]);
        let mut pairs = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                pairs.push(ScoredPair::new(Pair::new(a, b), 0.5 + 0.01 * a as f64));
            }
        }
        (LabelingTask::new(CandidateSet::new(4, pairs)), truth)
    }

    #[test]
    fn sequential_beats_non_transitive() {
        let (task, truth) = task();
        let mut o1 = GroundTruthOracle::new(&truth);
        let seq = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut o1);
        let mut o2 = GroundTruthOracle::new(&truth);
        let baseline = task.run_non_transitive(&mut o2);
        assert_eq!(seq.num_crowdsourced(), 3, "spanning tree of the 4-clique");
        assert_eq!(baseline.num_crowdsourced(), 6);
    }

    #[test]
    fn parallel_equals_sequential_cost() {
        let (task, truth) = task();
        let mut o1 = GroundTruthOracle::new(&truth);
        let seq = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut o1);
        let mut o2 = GroundTruthOracle::new(&truth);
        let (par, stats) = task.run_parallel(SortStrategy::ExpectedLikelihood, &mut o2);
        assert_eq!(par.num_crowdsourced(), seq.num_crowdsourced());
        assert!(stats.num_iterations() <= seq.num_crowdsourced());
    }
}
