//! Closed-form cost analysis.
//!
//! With ground truth in hand, the cost of the *optimal* labeling order
//! (Theorem 1: all matching pairs first) has a closed form. Labeling the
//! matching pairs first builds, per candidate-connected true cluster, a
//! spanning forest: exactly `(component size − 1)` pairs are crowdsourced,
//! the rest deduce as matching. Afterwards every non-matching candidate pair
//! either connects a contracted cluster pair already connected (deduced) or
//! must be crowdsourced — one per **distinct** contracted cluster pair.
//!
//! The sequential labeler with [`crate::sort::SortStrategy::Optimal`] must
//! produce exactly [`optimal_cost`]; this is one of the workspace's core
//! test invariants, and it lets the big Figure 11 sweeps validate themselves
//! on every run.

use crate::truth::GroundTruth;
use crate::types::{CandidateSet, Label};
use crowdjoin_graph::UnionFind;
use crowdjoin_util::FxHashSet;

/// Breakdown of the optimal-order crowdsourcing cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalCost {
    /// Crowdsourced matching pairs: spanning-forest edges over the candidate
    /// matching subgraph.
    pub matching: usize,
    /// Crowdsourced non-matching pairs: distinct contracted cluster pairs
    /// with at least one candidate non-matching pair.
    pub non_matching: usize,
}

impl OptimalCost {
    /// Total crowdsourced pairs under the optimal order.
    #[must_use]
    pub fn total(&self) -> usize {
        self.matching + self.non_matching
    }
}

/// Computes the optimal-order cost in closed form.
#[must_use]
pub fn optimal_cost(candidates: &CandidateSet, truth: &GroundTruth) -> OptimalCost {
    let mut uf = UnionFind::new(candidates.num_objects());
    let mut matching = 0usize;
    for sp in candidates.pairs() {
        if truth.label_of(sp.pair) == Label::Matching
            && uf.union(sp.pair.a(), sp.pair.b()).is_some()
        {
            matching += 1;
        }
    }
    let mut cluster_pairs: FxHashSet<(u32, u32)> = FxHashSet::default();
    for sp in candidates.pairs() {
        if truth.label_of(sp.pair) == Label::NonMatching {
            let ra = uf.find(sp.pair.a());
            let rb = uf.find(sp.pair.b());
            debug_assert_ne!(ra, rb, "non-matching pair inside a true cluster");
            cluster_pairs.insert(if ra < rb { (ra, rb) } else { (rb, ra) });
        }
    }
    OptimalCost { matching, non_matching: cluster_pairs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sequential::label_sequential;
    use crate::sort::{sort_pairs, SortStrategy};
    use crate::types::{Pair, ScoredPair};
    use proptest::prelude::*;

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn figure3_closed_form_is_six() {
        let (cs, truth) = running_example();
        let cost = optimal_cost(&cs, &truth);
        // Spanning forests: {o1,o2,o3} needs 2, {o4,o5} needs 1.
        assert_eq!(cost.matching, 3);
        // Cluster pairs with candidate non-matching edges:
        // ({123},{6}), ({45},{6}), ({123},{45}).
        assert_eq!(cost.non_matching, 3);
        assert_eq!(cost.total(), 6);
    }

    #[test]
    fn empty_candidates_cost_zero() {
        let truth = GroundTruth::all_distinct(5);
        let cs = CandidateSet::new(5, vec![]);
        assert_eq!(optimal_cost(&cs, &truth).total(), 0);
    }

    #[test]
    fn full_clique_on_one_cluster() {
        // One true cluster of k objects with all C(k,2) candidate pairs:
        // optimal cost is k-1.
        let k = 6u32;
        let truth = GroundTruth::from_clusters(k as usize, &[(0..k).collect()]);
        let mut pairs = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                pairs.push(ScoredPair::new(Pair::new(a, b), 0.9));
            }
        }
        let cs = CandidateSet::new(k as usize, pairs);
        let cost = optimal_cost(&cs, &truth);
        assert_eq!(cost.matching, k as usize - 1);
        assert_eq!(cost.non_matching, 0);
    }

    fn random_instance() -> impl Strategy<Value = (GroundTruth, CandidateSet)> {
        (4usize..16)
            .prop_flat_map(|n| {
                let entities = proptest::collection::vec(0u32..(n as u32 / 2).max(1), n);
                let edges =
                    proptest::collection::btree_set((0u32..n as u32, 0u32..n as u32), 0..40);
                (Just(n), entities, edges)
            })
            .prop_map(|(n, entities, edges)| {
                let truth = GroundTruth::new(entities);
                let mut seen = std::collections::BTreeSet::new();
                let mut pairs = Vec::new();
                for (i, (a, b)) in edges.into_iter().enumerate() {
                    if a != b {
                        let p = Pair::new(a, b);
                        if seen.insert(p) {
                            pairs.push(ScoredPair::new(p, 1.0 / (i + 1) as f64));
                        }
                    }
                }
                (truth, CandidateSet::new(n, pairs))
            })
    }

    proptest! {
        /// The paper's Theorem 1 machinery, checked end-to-end: the
        /// sequential labeler under the optimal order costs exactly the
        /// closed form — and no other order beats it.
        #[test]
        fn sequential_optimal_order_hits_closed_form((truth, cs) in random_instance()) {
            let closed = optimal_cost(&cs, &truth).total();
            let order = sort_pairs(&cs, SortStrategy::Optimal(&truth));
            let mut oracle = GroundTruthOracle::new(&truth);
            let result = label_sequential(cs.num_objects(), &order, &mut oracle);
            prop_assert_eq!(result.num_crowdsourced(), closed);
        }

        /// Theorem 1: the optimal order is no worse than expected, random,
        /// and worst orders.
        #[test]
        fn optimal_order_is_minimal((truth, cs) in random_instance(), seed in any::<u64>()) {
            let optimal = optimal_cost(&cs, &truth).total();
            for strategy in [
                SortStrategy::ExpectedLikelihood,
                SortStrategy::Random { seed },
                SortStrategy::Worst(&truth),
                SortStrategy::AsGiven,
            ] {
                let order = sort_pairs(&cs, strategy);
                let mut oracle = GroundTruthOracle::new(&truth);
                let result = label_sequential(cs.num_objects(), &order, &mut oracle);
                prop_assert!(
                    result.num_crowdsourced() >= optimal,
                    "{} order beat the optimum: {} < {}",
                    strategy.name(), result.num_crowdsourced(), optimal
                );
            }
        }
    }
}
