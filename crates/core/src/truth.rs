//! Ground-truth clusterings.
//!
//! A [`GroundTruth`] assigns every object an entity id; two objects match iff
//! they share an entity. Experiments use it (a) as a perfect answer source,
//! (b) to compute the *optimal* and *worst* labeling orders (which require
//! knowing the real labels upfront — Section 4.1), and (c) to score result
//! quality (precision/recall/F-measure, Table 2).

use crate::types::{Label, Pair};
use crowdjoin_util::FxHashMap;

/// A complete clustering of the object universe into real-world entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    entity_of: Vec<u32>,
}

impl GroundTruth {
    /// Creates a ground truth from a per-object entity assignment.
    #[must_use]
    pub fn new(entity_of: Vec<u32>) -> Self {
        Self { entity_of }
    }

    /// Builds a ground truth where every object is its own entity.
    #[must_use]
    pub fn all_distinct(num_objects: usize) -> Self {
        Self { entity_of: (0..num_objects as u32).collect() }
    }

    /// Builds a ground truth from explicit clusters (slices of object ids).
    /// Objects not mentioned in any cluster become singleton entities.
    ///
    /// # Panics
    ///
    /// Panics if an object id is out of range or appears in two clusters.
    #[must_use]
    pub fn from_clusters(num_objects: usize, clusters: &[Vec<u32>]) -> Self {
        let mut entity_of: Vec<Option<u32>> = vec![None; num_objects];
        for (cid, cluster) in clusters.iter().enumerate() {
            for &o in cluster {
                let slot = entity_of
                    .get_mut(o as usize)
                    .unwrap_or_else(|| panic!("object o{o} outside universe of {num_objects}"));
                assert!(slot.is_none(), "object o{o} appears in two clusters");
                *slot = Some(cid as u32);
            }
        }
        // Singletons get fresh entity ids after the explicit clusters.
        let mut next = clusters.len() as u32;
        let entity_of = entity_of
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        Self { entity_of }
    }

    /// Number of objects in the universe.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.entity_of.len()
    }

    /// Entity id of object `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    #[must_use]
    pub fn entity_of(&self, o: u32) -> u32 {
        self.entity_of[o as usize]
    }

    /// The true label of a pair.
    #[must_use]
    pub fn label_of(&self, pair: Pair) -> Label {
        if self.entity_of[pair.a() as usize] == self.entity_of[pair.b() as usize] {
            Label::Matching
        } else {
            Label::NonMatching
        }
    }

    /// `true` if the pair is a true match.
    #[must_use]
    pub fn is_matching(&self, pair: Pair) -> bool {
        self.label_of(pair) == Label::Matching
    }

    /// Sizes of all entity clusters (including singletons), unordered.
    #[must_use]
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for &e in &self.entity_of {
            *counts.entry(e).or_insert(0) += 1;
        }
        counts.into_values().collect()
    }

    /// Total number of true matching pairs in the full cross/self join,
    /// `Σ_clusters (k choose 2)`.
    #[must_use]
    pub fn num_matching_pairs(&self) -> u64 {
        self.cluster_sizes().into_iter().map(|k| (k as u64 * (k as u64 - 1)) / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_clusters_assigns_singletons() {
        let gt = GroundTruth::from_clusters(5, &[vec![0, 2], vec![3, 4]]);
        assert_eq!(gt.num_objects(), 5);
        assert!(gt.is_matching(Pair::new(0, 2)));
        assert!(gt.is_matching(Pair::new(3, 4)));
        assert!(!gt.is_matching(Pair::new(0, 1)));
        assert!(!gt.is_matching(Pair::new(1, 3)));
        // Singleton 1 has its own entity.
        assert_ne!(gt.entity_of(1), gt.entity_of(0));
        assert_ne!(gt.entity_of(1), gt.entity_of(3));
    }

    #[test]
    fn all_distinct_has_no_matches() {
        let gt = GroundTruth::all_distinct(4);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                assert_eq!(gt.label_of(Pair::new(a, b)), Label::NonMatching);
            }
        }
        assert_eq!(gt.num_matching_pairs(), 0);
    }

    #[test]
    fn cluster_sizes_and_matching_pairs() {
        let gt = GroundTruth::from_clusters(7, &[vec![0, 1, 2], vec![3, 4]]);
        let mut sizes = gt.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 3]);
        // C(3,2) + C(2,2->1) = 3 + 1.
        assert_eq!(gt.num_matching_pairs(), 4);
    }

    #[test]
    #[should_panic(expected = "appears in two clusters")]
    fn overlapping_clusters_rejected() {
        let _ = GroundTruth::from_clusters(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_range_object_rejected() {
        let _ = GroundTruth::from_clusters(2, &[vec![0, 5]]);
    }
}
