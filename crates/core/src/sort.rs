//! The sorting component (Section 4): labeling orders.
//!
//! The number of pairs that must be crowdsourced depends on the order in
//! which pairs are labeled. The paper proves (Theorem 1) that labeling all
//! matching pairs before all non-matching pairs is optimal, but that order
//! needs the true labels upfront; the practical heuristic labels pairs in
//! decreasing likelihood of matching. (The revised paper notes that finding
//! the *expected*-optimal order is NP-hard — Vesdapunt et al., VLDB 2014 —
//! so likelihood-descending is a heuristic, evaluated in Figure 12.)

use crate::truth::GroundTruth;
use crate::types::{CandidateSet, Label, ScoredPair};
use rand::seq::SliceRandom;

/// A labeling-order strategy.
#[derive(Debug, Clone, Copy)]
pub enum SortStrategy<'a> {
    /// Keep the candidate set's insertion order.
    AsGiven,
    /// Theorem 1's optimal order: all true matching pairs first, then all
    /// non-matching pairs (requires ground truth — experiment-only).
    Optimal(&'a GroundTruth),
    /// The practical heuristic: decreasing machine likelihood ("Expect
    /// Order" in Figure 12).
    ExpectedLikelihood,
    /// Uniformly random order from the given seed ("Random Order").
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// The adversarial baseline: all true non-matching pairs first ("Worst
    /// Order"; requires ground truth — experiment-only).
    Worst(&'a GroundTruth),
}

impl SortStrategy<'_> {
    /// Short human-readable name, used in experiment reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SortStrategy::AsGiven => "as-given",
            SortStrategy::Optimal(_) => "optimal",
            SortStrategy::ExpectedLikelihood => "expected",
            SortStrategy::Random { .. } => "random",
            SortStrategy::Worst(_) => "worst",
        }
    }
}

/// Produces the labeling order for `candidates` under `strategy`.
///
/// All strategies are deterministic: ties in likelihood break by pair id, and
/// the random order is a seeded shuffle.
#[must_use]
pub fn sort_pairs(candidates: &CandidateSet, strategy: SortStrategy<'_>) -> Vec<ScoredPair> {
    let mut pairs: Vec<ScoredPair> = candidates.pairs().to_vec();
    match strategy {
        SortStrategy::AsGiven => {}
        SortStrategy::ExpectedLikelihood => {
            sort_by_likelihood_desc(&mut pairs);
        }
        SortStrategy::Random { seed } => {
            let mut rng = crowdjoin_util::seeded_rng(seed);
            pairs.shuffle(&mut rng);
        }
        SortStrategy::Optimal(truth) => {
            // Matching pairs first; inside each group keep likelihood order
            // (Lemma 3: any order within a group gives the same count).
            sort_by_likelihood_desc(&mut pairs);
            pairs.sort_by_key(|sp| match truth.label_of(sp.pair) {
                Label::Matching => 0u8,
                Label::NonMatching => 1u8,
            });
        }
        SortStrategy::Worst(truth) => {
            sort_by_likelihood_desc(&mut pairs);
            pairs.sort_by_key(|sp| match truth.label_of(sp.pair) {
                Label::NonMatching => 0u8,
                Label::Matching => 1u8,
            });
        }
    }
    pairs
}

/// Sorts by likelihood descending with deterministic tie-breaking on the pair
/// ids (likelihoods are clamped finite by `ScoredPair::new`).
fn sort_by_likelihood_desc(pairs: &mut [ScoredPair]) {
    pairs.sort_by(|x, y| y.likelihood.total_cmp(&x.likelihood).then_with(|| x.pair.cmp(&y.pair)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Pair;

    fn candidates() -> (CandidateSet, GroundTruth) {
        // Running example of Figure 3 (0-based ids): p1..p8 with likelihoods
        // decreasing. True clusters: {o1,o2,o3} and {o4,o5}.
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95), // p1 M
            ScoredPair::new(Pair::new(1, 2), 0.90), // p2 M
            ScoredPair::new(Pair::new(0, 5), 0.85), // p3 N
            ScoredPair::new(Pair::new(0, 2), 0.80), // p4 M
            ScoredPair::new(Pair::new(3, 4), 0.75), // p5 M
            ScoredPair::new(Pair::new(3, 5), 0.70), // p6 N
            ScoredPair::new(Pair::new(1, 3), 0.65), // p7 N
            ScoredPair::new(Pair::new(4, 5), 0.60), // p8 N
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn expected_order_is_likelihood_desc() {
        let (cs, _) = candidates();
        let sorted = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let likes: Vec<f64> = sorted.iter().map(|sp| sp.likelihood).collect();
        let mut expected = likes.clone();
        expected.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(likes, expected);
    }

    #[test]
    fn optimal_order_puts_matching_first() {
        let (cs, truth) = candidates();
        let sorted = sort_pairs(&cs, SortStrategy::Optimal(&truth));
        let labels: Vec<Label> = sorted.iter().map(|sp| truth.label_of(sp.pair)).collect();
        let first_nonmatching = labels.iter().position(|&l| l == Label::NonMatching).unwrap();
        assert!(
            labels[first_nonmatching..].iter().all(|&l| l == Label::NonMatching),
            "matching pair found after a non-matching pair"
        );
        assert_eq!(labels.iter().filter(|&&l| l == Label::Matching).count(), 4);
    }

    #[test]
    fn worst_order_puts_nonmatching_first() {
        let (cs, truth) = candidates();
        let sorted = sort_pairs(&cs, SortStrategy::Worst(&truth));
        let labels: Vec<Label> = sorted.iter().map(|sp| truth.label_of(sp.pair)).collect();
        let first_matching = labels.iter().position(|&l| l == Label::Matching).unwrap();
        assert!(labels[first_matching..].iter().all(|&l| l == Label::Matching));
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let (cs, _) = candidates();
        let a = sort_pairs(&cs, SortStrategy::Random { seed: 11 });
        let b = sort_pairs(&cs, SortStrategy::Random { seed: 11 });
        let c = sort_pairs(&cs, SortStrategy::Random { seed: 12 });
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn as_given_preserves_input() {
        let (cs, _) = candidates();
        let sorted = sort_pairs(&cs, SortStrategy::AsGiven);
        assert_eq!(sorted, cs.pairs());
    }

    #[test]
    fn all_orders_are_permutations() {
        let (cs, truth) = candidates();
        for strategy in [
            SortStrategy::AsGiven,
            SortStrategy::Optimal(&truth),
            SortStrategy::ExpectedLikelihood,
            SortStrategy::Random { seed: 3 },
            SortStrategy::Worst(&truth),
        ] {
            let mut sorted: Vec<_> = sort_pairs(&cs, strategy).iter().map(|sp| sp.pair).collect();
            sorted.sort();
            let mut orig: Vec<_> = cs.pairs().iter().map(|sp| sp.pair).collect();
            orig.sort();
            assert_eq!(sorted, orig, "strategy {} lost pairs", strategy.name());
        }
    }
}
