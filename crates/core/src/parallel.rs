//! The parallel labeling algorithm (Section 5, Algorithms 2 and 3).
//!
//! The sequential labeler publishes one pair at a time, so crowd workers
//! cannot work simultaneously. The parallel labeler identifies, in each
//! iteration, the pairs that cannot be deduced from the already-known labels
//! even when the unlabeled pairs before them are *supposed matching*
//! (Algorithm 3), and publishes them all at once.
//!
//! ## Fidelity note: prose vs pseudo-code
//!
//! The paper's prose says "suppose **all** the unlabeled pairs are matching",
//! but Algorithm 3 as written inserts the assumed-matching edge only for
//! pairs it decides to *publish*; a pair that is already deducible in the
//! scan graph is skipped and contributes nothing (inserting it could
//! contradict the scan graph, which cannot represent an inconsistent
//! supposition). We implement the pseudo-code. Consequences, both
//! property-tested below:
//!
//! * in the **first** iteration no labels exist yet, the supposition is
//!   consistent, and every published pair is provably necessary (it would be
//!   crowdsourced by the sequential labeler too);
//! * in later iterations the supposition can interact with real non-matching
//!   labels, and the parallel labeler may publish a pair the sequential
//!   labeler would have deduced — i.e. the paper's "without increasing the
//!   total number of crowdsourced pairs" holds for realistic,
//!   matching-heavy likelihood orders but is **not** a worst-case guarantee
//!   (see `overshoot_regression` below for a 7-pair instance where parallel
//!   crowdsources one pair more). On the calibrated Paper/Product workloads
//!   the observed overshoot is ≈0 (measured in EXPERIMENTS.md).
//!   Symmetrically, the deduction sweep may exploit answers from pairs
//!   *later* in ω, letting parallel occasionally beat sequential.
//!
//! The labeler is an inversion-of-control state machine so that both the
//! round-based drivers (Figures 13/14) and the event-driven crowd-platform
//! simulation (Figure 15, Tables 1/2) can drive it:
//!
//! ```text
//! loop {
//!     let batch = labeler.next_batch();      // Algorithm 3 (+ instant decision)
//!     publish(batch);
//!     for answer in answers {                 // any arrival order
//!         labeler.submit_answer(pair, label); // inserts + sweeps deductions
//!     }
//! }
//! ```

use crate::oracle::Oracle;
use crate::result::LabelingResult;
use crate::types::{Label, Pair, Provenance, ScoredPair};
use crowdjoin_graph::ClusterGraph;
use crowdjoin_util::FxHashMap;

/// Per-pair lifecycle inside the parallel labeler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairState {
    /// Not yet published or labeled.
    Unlabeled,
    /// Published to the platform; an answer is outstanding.
    Published,
    /// Labeled (crowdsourced or deduced).
    Labeled,
}

/// The parallel labeler state machine.
#[derive(Debug, Clone)]
pub struct ParallelLabeler {
    num_objects: usize,
    /// Pairs in labeling order.
    order: Vec<ScoredPair>,
    /// Position lookup for `submit_answer`.
    index_of: FxHashMap<Pair, usize>,
    state: Vec<PairState>,
    /// Graph of crowdsourced labels only (deduction-closed information).
    graph: ClusterGraph,
    result: LabelingResult,
    /// Indices (into `order`) of pairs still unlabeled, kept sorted; shrinks
    /// as labeling progresses so deduction sweeps touch only live pairs.
    pending: Vec<usize>,
    outstanding: usize,
    /// Conflicting real labels skipped while building scan graphs
    /// (diagnostics; stays 0 for consistent answer sources).
    scan_conflicts: usize,
}

impl ParallelLabeler {
    /// Creates a labeler for `order` over a universe of `num_objects`.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` or appears
    /// twice in `order`.
    #[must_use]
    pub fn new(num_objects: usize, order: Vec<ScoredPair>) -> Self {
        let mut index_of = FxHashMap::default();
        for (i, sp) in order.iter().enumerate() {
            assert!(
                (sp.pair.b() as usize) < num_objects,
                "pair {} references object outside universe of {num_objects}",
                sp.pair
            );
            assert!(index_of.insert(sp.pair, i).is_none(), "duplicate pair {} in order", sp.pair);
        }
        let n = order.len();
        Self {
            num_objects,
            order,
            index_of,
            state: vec![PairState::Unlabeled; n],
            graph: ClusterGraph::new(num_objects),
            result: LabelingResult::new(),
            pending: (0..n).collect(),
            outstanding: 0,
            scan_conflicts: 0,
        }
    }

    /// `true` once every pair has a label.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.result.num_labeled() == self.order.len()
    }

    /// Number of published pairs whose answers are still outstanding.
    #[must_use]
    pub fn num_outstanding(&self) -> usize {
        self.outstanding
    }

    /// Pairs published so far (crowd cost incurred so far).
    #[must_use]
    pub fn num_published(&self) -> usize {
        self.result.num_crowdsourced() + self.outstanding
    }

    /// Diagnostic: real labels that conflicted with the assumed-matching scan
    /// graph (always 0 for consistent answers).
    #[must_use]
    pub fn num_scan_conflicts(&self) -> usize {
        self.scan_conflicts
    }

    /// Algorithm 3 (`ParallelCrowdsourcedPairs`) with the instant-decision
    /// refinement: returns the pairs that must be crowdsourced given current
    /// knowledge, excluding pairs already published. Marks returned pairs as
    /// published.
    pub fn next_batch(&mut self) -> Vec<ScoredPair> {
        let mut scan = ClusterGraph::new(self.num_objects);
        let mut batch = Vec::new();
        for i in 0..self.order.len() {
            let sp = self.order[i];
            let (a, b) = (sp.pair.a(), sp.pair.b());
            match self.state[i] {
                PairState::Labeled => {
                    // Insert the real label; a redundant insert is fine, a
                    // conflicting one (possible only with noisy answers
                    // because of earlier assumed-matching merges) is skipped
                    // — that is conservative: it can only cause extra
                    // publishing, never a wrong skip.
                    let label =
                        self.result.label_of(sp.pair).expect("labeled pair must be in result");
                    if scan.insert(a, b, label).is_err() {
                        self.scan_conflicts += 1;
                    }
                }
                PairState::Published | PairState::Unlabeled => {
                    if scan.deduce(a, b).is_none() {
                        // Must be crowdsourced whatever the outstanding
                        // answers turn out to be.
                        if self.state[i] == PairState::Unlabeled {
                            self.state[i] = PairState::Published;
                            self.outstanding += 1;
                            batch.push(sp);
                        }
                        // Assume matching for the rest of the scan
                        // (Algorithm 3 line 11). Cannot conflict: deduce
                        // returned None.
                        scan.insert(a, b, Label::Matching)
                            .expect("insert after failed deduction cannot conflict");
                    }
                    // Deducible under the assumption: leave it pending; its
                    // fate is decided by real answers.
                }
            }
        }
        batch
    }

    /// Feeds one crowd answer for a previously published pair, then deduces
    /// every pending pair that became decidable (Algorithm 2 lines 6–8).
    ///
    /// If the answer contradicts what the accumulated labels already deduce
    /// (possible only with inconsistent/noisy answers), the deduced label
    /// wins and a conflict is counted — the graph stays consistent either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if `pair` was not published or was already answered.
    pub fn submit_answer(&mut self, pair: Pair, answer: Label) {
        let &i = self
            .index_of
            .get(&pair)
            .unwrap_or_else(|| panic!("pair {pair} is not part of this labeling task"));
        assert_eq!(
            self.state[i],
            PairState::Published,
            "answer submitted for pair {pair} that is not awaiting one"
        );
        self.state[i] = PairState::Labeled;
        self.outstanding -= 1;

        let (a, b) = (pair.a(), pair.b());
        let label = match self.graph.insert(a, b, answer) {
            Ok(_) => answer,
            Err(conflict) => {
                self.result.record_conflict();
                conflict.deduced
            }
        };
        self.result.record(pair, label, Provenance::Crowdsourced);
        self.sweep_deductions();
    }

    /// Labels every pending pair that is now deducible from the crowdsourced
    /// labels. Published-but-unanswered pairs are *not* deduced here: they
    /// were already paid for, and their crowd answer is authoritative (the
    /// paper counts them as crowdsourced pairs).
    fn sweep_deductions(&mut self) {
        let mut j = 0;
        for k in 0..self.pending.len() {
            let i = self.pending[k];
            if self.state[i] == PairState::Labeled {
                continue; // drop from pending
            }
            if self.state[i] == PairState::Unlabeled {
                let sp = self.order[i];
                if let Some(label) = self.graph.deduce(sp.pair.a(), sp.pair.b()) {
                    self.state[i] = PairState::Labeled;
                    self.result.record(sp.pair, label, Provenance::Deduced);
                    continue; // drop from pending
                }
            }
            self.pending[j] = i;
            j += 1;
        }
        self.pending.truncate(j);
    }

    /// Consumes the labeler and returns the labeling result.
    ///
    /// # Panics
    ///
    /// Panics if labeling is not complete.
    #[must_use]
    pub fn into_result(self) -> LabelingResult {
        assert!(self.is_complete(), "labeling is not complete");
        self.result
    }

    /// Read access to the (partial) result while labeling is in progress.
    #[must_use]
    pub fn result(&self) -> &LabelingResult {
        &self.result
    }
}

/// Statistics of one round-based parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelRunStats {
    /// Number of pairs published in each iteration (Figures 13/14 series).
    pub batch_sizes: Vec<usize>,
}

impl ParallelRunStats {
    /// Number of iterations (round trips to the crowd).
    #[must_use]
    pub fn num_iterations(&self) -> usize {
        self.batch_sizes.len()
    }

    /// Total pairs crowdsourced.
    #[must_use]
    pub fn total_crowdsourced(&self) -> usize {
        self.batch_sizes.iter().sum()
    }
}

/// Round-based driver (Algorithm 2 without instant decision): publish a
/// batch, answer *all* of it, deduce, repeat.
///
/// Returns the labeling result and per-iteration batch sizes.
pub fn run_parallel_rounds(
    num_objects: usize,
    order: Vec<ScoredPair>,
    oracle: &mut dyn Oracle,
) -> (LabelingResult, ParallelRunStats) {
    let mut labeler = ParallelLabeler::new(num_objects, order);
    let mut batch_sizes = Vec::new();
    while !labeler.is_complete() {
        let batch = labeler.next_batch();
        assert!(
            !batch.is_empty(),
            "no publishable pairs but labeling incomplete — algorithm cannot progress"
        );
        batch_sizes.push(batch.len());
        for sp in batch {
            let answer = oracle.answer(sp.pair);
            labeler.submit_answer(sp.pair, answer);
        }
    }
    (labeler.into_result(), ParallelRunStats { batch_sizes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sequential::label_sequential;
    use crate::sort::{sort_pairs, SortStrategy};
    use crate::truth::GroundTruth;
    use crate::types::CandidateSet;
    use proptest::prelude::*;

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95), // p1 M
            ScoredPair::new(Pair::new(1, 2), 0.90), // p2 M
            ScoredPair::new(Pair::new(0, 5), 0.85), // p3 N
            ScoredPair::new(Pair::new(0, 2), 0.80), // p4 M
            ScoredPair::new(Pair::new(3, 4), 0.75), // p5 M
            ScoredPair::new(Pair::new(3, 5), 0.70), // p6 N
            ScoredPair::new(Pair::new(1, 3), 0.65), // p7 N
            ScoredPair::new(Pair::new(4, 5), 0.60), // p8 N
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn example5_first_batch_is_five_pairs() {
        // Paper Example 5: iteration 1 publishes {p1, p2, p3, p5, p6}.
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut labeler = ParallelLabeler::new(cs.num_objects(), order);
        let batch: Vec<Pair> = labeler.next_batch().iter().map(|sp| sp.pair).collect();
        assert_eq!(
            batch,
            vec![
                Pair::new(0, 1), // p1
                Pair::new(1, 2), // p2
                Pair::new(0, 5), // p3
                Pair::new(3, 4), // p5
                Pair::new(3, 5), // p6
            ]
        );
    }

    #[test]
    fn example5_full_run_two_iterations() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let (result, stats) = run_parallel_rounds(cs.num_objects(), order, &mut oracle);
        assert_eq!(stats.batch_sizes, vec![5, 1], "iterations of Example 5");
        assert_eq!(result.num_crowdsourced(), 6);
        assert_eq!(result.num_deduced(), 2);
        // p7 is the second-iteration pair.
        assert_eq!(result.provenance_of(Pair::new(1, 3)), Some(Provenance::Crowdsourced));
        assert_eq!(result.provenance_of(Pair::new(0, 2)), Some(Provenance::Deduced));
        assert_eq!(result.provenance_of(Pair::new(4, 5)), Some(Provenance::Deduced));
    }

    #[test]
    fn labels_match_truth() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let (result, _) = run_parallel_rounds(cs.num_objects(), order, &mut oracle);
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    #[test]
    fn empty_order_completes_immediately() {
        let labeler = ParallelLabeler::new(4, vec![]);
        assert!(labeler.is_complete());
        assert_eq!(labeler.into_result().num_labeled(), 0);
    }

    #[test]
    fn chain_publishes_everything_in_one_round() {
        // Section 5.1 motivating example: ⟨(o1,o2),(o2,o3),(o3,o4)⟩ can all
        // be crowdsourced together.
        let truth = GroundTruth::from_clusters(4, &[vec![0, 1, 2, 3]]);
        let order = vec![
            ScoredPair::new(Pair::new(0, 1), 0.9),
            ScoredPair::new(Pair::new(1, 2), 0.8),
            ScoredPair::new(Pair::new(2, 3), 0.7),
        ];
        let mut oracle = GroundTruthOracle::new(&truth);
        let (result, stats) = run_parallel_rounds(4, order, &mut oracle);
        assert_eq!(stats.batch_sizes, vec![3]);
        assert_eq!(result.num_crowdsourced(), 3);
    }

    #[test]
    #[should_panic(expected = "not awaiting")]
    fn double_answer_rejected() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut labeler = ParallelLabeler::new(cs.num_objects(), order);
        let batch = labeler.next_batch();
        let p = batch[0].pair;
        labeler.submit_answer(p, Label::Matching);
        labeler.submit_answer(p, Label::Matching);
    }

    /// Random consistent instances: clusters over n objects, a random subset
    /// of pairs with random likelihoods.
    fn random_instance() -> impl Strategy<Value = (usize, GroundTruth, CandidateSet)> {
        (3usize..14)
            .prop_flat_map(|n| {
                let entities = proptest::collection::vec(0u32..(n as u32 / 2).max(1), n);
                let edges =
                    proptest::collection::btree_set((0u32..n as u32, 0u32..n as u32), 0..30);
                let seed = any::<u64>();
                (Just(n), entities, edges, seed)
            })
            .prop_map(|(n, entities, edges, seed)| {
                let truth = GroundTruth::new(entities);
                let mut rng = crowdjoin_util::SplitMix64::new(seed);
                let mut seen = std::collections::BTreeSet::new();
                let mut pairs = Vec::new();
                for (a, b) in edges {
                    if a != b {
                        let p = Pair::new(a, b);
                        if seen.insert(p) {
                            pairs.push(ScoredPair::new(p, rng.next_f64()));
                        }
                    }
                }
                let cs = CandidateSet::new(n, pairs);
                (n, truth, cs)
            })
    }

    /// A concrete instance (found by randomized search) where the
    /// pseudo-code-faithful parallel labeler crowdsources one pair more than
    /// sequential: in iteration 2 the supposition (0,2)=matching makes
    /// (0,3) look deducible (skipped), so its real matching edge is missing
    /// when (0,1) is scanned, and (0,1) gets published even though sequential
    /// deduces it from (0,3)=M and (1,3)=N. Pins the fidelity note above.
    #[test]
    fn overshoot_regression() {
        let truth = GroundTruth::new(vec![0, 1, 1, 0, 1]);
        let order = vec![
            ScoredPair::new(Pair::new(3, 4), 0.89), // N
            ScoredPair::new(Pair::new(2, 3), 0.58), // N
            ScoredPair::new(Pair::new(0, 4), 0.35), // N
            ScoredPair::new(Pair::new(0, 2), 0.15), // N
            ScoredPair::new(Pair::new(1, 3), 0.07), // N
            ScoredPair::new(Pair::new(0, 3), 0.04), // M
            ScoredPair::new(Pair::new(0, 1), 0.00), // N
        ];
        let mut o1 = GroundTruthOracle::new(&truth);
        let seq = label_sequential(5, &order, &mut o1);
        let mut o2 = GroundTruthOracle::new(&truth);
        let (par, _) = run_parallel_rounds(5, order, &mut o2);
        assert_eq!(seq.num_crowdsourced(), 6);
        assert_eq!(par.num_crowdsourced(), 7, "documented one-pair overshoot");
        // Labels still sound.
        for lp in par.labeled_pairs() {
            assert_eq!(lp.label, truth.label_of(lp.pair));
        }
    }

    proptest! {
        /// Both labelers respect the information-theoretic lower bound (the
        /// closed-form optimal cost), and parallel stays within the
        /// sequential cost on matching-heavy instances where the supposition
        /// is benign. We assert only the lower bound universally.
        #[test]
        fn parallel_respects_lower_bound((n, truth, cs) in random_instance()) {
            let lower = crate::analysis::optimal_cost(&cs, &truth).total();
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
            let mut o1 = GroundTruthOracle::new(&truth);
            let seq = label_sequential(n, &order, &mut o1);
            let mut o2 = GroundTruthOracle::new(&truth);
            let (par, stats) = run_parallel_rounds(n, order, &mut o2);
            prop_assert!(par.num_crowdsourced() >= lower);
            prop_assert!(seq.num_crowdsourced() >= lower);
            prop_assert_eq!(stats.total_crowdsourced(), par.num_crowdsourced());
            prop_assert_eq!(par.num_labeled(), cs.len());
        }

        /// First-iteration necessity: with no labels yet the supposition is
        /// consistent, so every pair in the first batch is also crowdsourced
        /// by the sequential labeler.
        #[test]
        fn first_batch_is_necessary((n, truth, cs) in random_instance()) {
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
            let mut o1 = GroundTruthOracle::new(&truth);
            let seq = label_sequential(n, &order, &mut o1);
            let mut labeler = ParallelLabeler::new(n, order);
            for sp in labeler.next_batch() {
                prop_assert_eq!(
                    seq.provenance_of(sp.pair),
                    Some(Provenance::Crowdsourced),
                    "first-batch pair {} was deduced by sequential", sp.pair
                );
            }
        }

        /// All labels equal ground truth with a perfect oracle, for both
        /// labelers and any order.
        #[test]
        fn parallel_labels_sound((n, truth, cs) in random_instance(), seed in any::<u64>()) {
            let order = sort_pairs(&cs, SortStrategy::Random { seed });
            let mut oracle = GroundTruthOracle::new(&truth);
            let (par, _) = run_parallel_rounds(n, order, &mut oracle);
            for sp in cs.pairs() {
                prop_assert_eq!(par.label_of(sp.pair), Some(truth.label_of(sp.pair)));
            }
            prop_assert_eq!(par.num_conflicts(), 0);
        }

        /// Parallel never needs more iterations than pairs, and batch sizes
        /// sum to the crowdsourced count.
        #[test]
        fn iteration_accounting((n, truth, cs) in random_instance()) {
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
            let mut oracle = GroundTruthOracle::new(&truth);
            let (par, stats) = run_parallel_rounds(n, order, &mut oracle);
            prop_assert!(stats.num_iterations() <= cs.len().max(1));
            prop_assert_eq!(stats.total_crowdsourced(), par.num_crowdsourced());
        }
    }
}
