//! Result-quality metrics (Section 6.4).
//!
//! The paper scores crowd results with precision, recall, and F-measure
//! against the datasets' ground truth, where — following the paper's
//! definitions — `tp` counts correctly labeled matching pairs, `fp` wrongly
//! labeled matching pairs, and `fn` truly matching pairs labeled
//! non-matching. All counts are over the candidate pairs handed to the
//! labeler (pairs pruned by the machine stage are out of scope, exactly as
//! in the paper's Table 2).

use crate::result::LabelingResult;
use crate::truth::GroundTruth;
use crate::types::{Label, Pair};

/// Precision / recall / F-measure over a set of predicted pair labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// Correctly labeled matching pairs.
    pub true_positives: u64,
    /// Pairs labeled matching that are truly non-matching.
    pub false_positives: u64,
    /// Truly matching pairs labeled non-matching.
    pub false_negatives: u64,
    /// Correctly labeled non-matching pairs (not used by P/R/F but useful in
    /// reports).
    pub true_negatives: u64,
}

impl QualityMetrics {
    /// Scores `(pair, predicted)` labels against the ground truth.
    pub fn evaluate<I>(predictions: I, truth: &GroundTruth) -> Self
    where
        I: IntoIterator<Item = (Pair, Label)>,
    {
        let mut m =
            Self { true_positives: 0, false_positives: 0, false_negatives: 0, true_negatives: 0 };
        for (pair, predicted) in predictions {
            match (predicted, truth.label_of(pair)) {
                (Label::Matching, Label::Matching) => m.true_positives += 1,
                (Label::Matching, Label::NonMatching) => m.false_positives += 1,
                (Label::NonMatching, Label::Matching) => m.false_negatives += 1,
                (Label::NonMatching, Label::NonMatching) => m.true_negatives += 1,
            }
        }
        m
    }

    /// Scores a [`LabelingResult`] against the ground truth.
    #[must_use]
    pub fn of_result(result: &LabelingResult, truth: &GroundTruth) -> Self {
        Self::evaluate(result.labeled_pairs().iter().map(|lp| (lp.pair, lp.label)), truth)
    }

    /// `tp / (tp + fp)`; defined as 1 when no pair was labeled matching.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`; defined as 1 when there are no true matches.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    #[must_use]
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for QualityMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2}% R={:.2}% F={:.2}%",
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f_measure() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::from_clusters(4, &[vec![0, 1, 2]])
    }

    #[test]
    fn perfect_predictions() {
        let t = truth();
        let preds = vec![
            (Pair::new(0, 1), Label::Matching),
            (Pair::new(0, 2), Label::Matching),
            (Pair::new(1, 2), Label::Matching),
            (Pair::new(0, 3), Label::NonMatching),
        ];
        let m = QualityMetrics::evaluate(preds, &t);
        assert_eq!(m.true_positives, 3);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f_measure(), 1.0);
    }

    #[test]
    fn mixed_predictions() {
        let t = truth();
        let preds = vec![
            (Pair::new(0, 1), Label::Matching),    // tp
            (Pair::new(0, 2), Label::NonMatching), // fn
            (Pair::new(0, 3), Label::Matching),    // fp
            (Pair::new(1, 3), Label::NonMatching), // tn
        ];
        let m = QualityMetrics::evaluate(preds, &t);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert!((m.f_measure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let t = truth();
        // No predictions at all.
        let m = QualityMetrics::evaluate(Vec::new(), &t);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f_measure(), 1.0);
        // Everything predicted non-matching and nothing truly matches.
        let all_distinct = GroundTruth::all_distinct(3);
        let preds = vec![(Pair::new(0, 1), Label::NonMatching)];
        let m = QualityMetrics::evaluate(preds, &all_distinct);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 1.0);
    }

    #[test]
    fn display_formats_percentages() {
        let t = truth();
        let preds = vec![(Pair::new(0, 1), Label::Matching)];
        let m = QualityMetrics::evaluate(preds, &t);
        let s = m.to_string();
        assert!(s.contains("P=100.00%"), "{s}");
    }
}
