//! Entity resolution output: from pair labels to entity clusters.
//!
//! The join's raw output is a label per candidate pair, but downstream
//! consumers (data integration, deduplication) want the *entities*: a
//! partition of the records. [`resolve_entities`] contracts the matching
//! pairs into clusters — exactly the positive-transitive closure the
//! framework's deductions are built on — and reports any non-matching labels
//! that ended up *inside* a cluster (possible only with noisy answers; these
//! are the paper's "falsely deduced" casualties and are useful review
//! candidates).

use crate::result::LabelingResult;
use crate::truth::GroundTruth;
use crate::types::{Label, Pair};
use crowdjoin_graph::UnionFind;

/// The resolved entities plus consistency diagnostics.
#[derive(Debug, Clone)]
pub struct EntityResolution {
    /// Clusters of record ids (each sorted; clusters sorted by first
    /// member). Singletons included.
    pub clusters: Vec<Vec<u32>>,
    /// Labeled non-matching pairs whose endpoints nevertheless ended up in
    /// one cluster — evidence of inconsistent (noisy) labels worth human
    /// review.
    pub intra_cluster_nonmatches: Vec<Pair>,
}

impl EntityResolution {
    /// Number of resolved entities (including singletons).
    #[must_use]
    pub fn num_entities(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no non-matching label contradicts the clustering.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.intra_cluster_nonmatches.is_empty()
    }

    /// Converts the clustering into a [`GroundTruth`]-shaped entity
    /// assignment (useful for comparing a noisy resolution against the real
    /// one with [`crate::metrics::QualityMetrics`]).
    #[must_use]
    pub fn as_assignment(&self, num_objects: usize) -> GroundTruth {
        GroundTruth::from_clusters(num_objects, &self.clusters)
    }
}

/// Contracts the matching labels of `result` over a universe of
/// `num_objects` records.
///
/// # Panics
///
/// Panics if a labeled pair references an object `>= num_objects`.
#[must_use]
pub fn resolve_entities(num_objects: usize, result: &LabelingResult) -> EntityResolution {
    let mut uf = UnionFind::new(num_objects);
    for lp in result.labeled_pairs() {
        if lp.label == Label::Matching {
            uf.union(lp.pair.a(), lp.pair.b());
        }
    }
    let intra_cluster_nonmatches = result
        .labeled_pairs()
        .iter()
        .filter(|lp| lp.label == Label::NonMatching && uf.connected(lp.pair.a(), lp.pair.b()))
        .map(|lp| lp.pair)
        .collect();
    EntityResolution { clusters: uf.clusters(), intra_cluster_nonmatches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, NoisyOracle};
    use crate::sequential::label_sequential;
    use crate::sort::{sort_pairs, SortStrategy};
    use crate::types::{CandidateSet, ScoredPair};

    fn clique_task() -> (GroundTruth, CandidateSet) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let mut pairs = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                pairs.push(ScoredPair::new(Pair::new(a, b), 0.5 + 0.01 * a as f64));
            }
        }
        (truth, CandidateSet::new(6, pairs))
    }

    #[test]
    fn perfect_labels_recover_truth_clusters() {
        let (truth, cs) = clique_task();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(6, &order, &mut oracle);
        let res = resolve_entities(6, &result);
        assert!(res.is_consistent());
        assert_eq!(res.clusters, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        assert_eq!(res.num_entities(), 3);
        // Round-trip through an assignment.
        let assignment = res.as_assignment(6);
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                assert_eq!(
                    assignment.is_matching(Pair::new(a, b)),
                    truth.is_matching(Pair::new(a, b))
                );
            }
        }
    }

    #[test]
    fn unlabeled_objects_are_singletons() {
        let result = LabelingResult::new();
        let res = resolve_entities(4, &result);
        assert_eq!(res.num_entities(), 4);
        assert!(res.is_consistent());
    }

    #[test]
    fn noisy_labels_flag_intra_cluster_nonmatches() {
        // Build labels manually: 0=1, 1=2, but (0,2) answered non-matching
        // by a confused crowd *before* the matching evidence arrived. The
        // resolution flags it.
        let mut result = LabelingResult::new();
        result.record(Pair::new(0, 2), Label::NonMatching, crate::types::Provenance::Crowdsourced);
        result.record(Pair::new(0, 1), Label::Matching, crate::types::Provenance::Crowdsourced);
        result.record(Pair::new(1, 2), Label::Matching, crate::types::Provenance::Crowdsourced);
        let res = resolve_entities(3, &result);
        assert_eq!(res.num_entities(), 1);
        assert_eq!(res.intra_cluster_nonmatches, vec![Pair::new(0, 2)]);
        assert!(!res.is_consistent());
    }

    #[test]
    fn noisy_end_to_end_resolution_quality_degrades_not_collapses() {
        let (truth, cs) = clique_task();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = NoisyOracle::new(&truth, 0.2, 3);
        let result = label_sequential(6, &order, &mut oracle);
        let res = resolve_entities(6, &result);
        // Still a partition of all six records.
        let total: usize = res.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }
}
