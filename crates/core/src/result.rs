//! Labeling outcomes.

use crate::types::{Label, LabeledPair, Pair, Provenance};
use crowdjoin_util::FxHashMap;

/// The outcome of running a labeler over a candidate set: a label for every
/// pair plus provenance and cost accounting.
#[derive(Debug, Clone, Default)]
pub struct LabelingResult {
    labels: FxHashMap<Pair, (Label, Provenance)>,
    in_order: Vec<LabeledPair>,
    crowdsourced: usize,
    deduced: usize,
    conflicts: usize,
}

impl LabelingResult {
    /// Creates an empty result. Public so external drivers (e.g. a custom
    /// crowd-platform integration) can build results through [`Self::record`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one labeled pair.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the pair was already recorded.
    pub fn record(&mut self, pair: Pair, label: Label, provenance: Provenance) {
        let prev = self.labels.insert(pair, (label, provenance));
        debug_assert!(prev.is_none(), "pair {pair} labeled twice");
        self.in_order.push(LabeledPair { pair, label, provenance });
        match provenance {
            Provenance::Crowdsourced => self.crowdsourced += 1,
            Provenance::Deduced => self.deduced += 1,
        }
    }

    /// Counts a crowd answer that contradicted an existing deduction.
    pub fn record_conflict(&mut self) {
        self.conflicts += 1;
    }

    /// The label assigned to `pair`, if it was part of the candidate set.
    #[must_use]
    pub fn label_of(&self, pair: Pair) -> Option<Label> {
        self.labels.get(&pair).map(|&(l, _)| l)
    }

    /// The provenance of `pair`'s label, if labeled.
    #[must_use]
    pub fn provenance_of(&self, pair: Pair) -> Option<Provenance> {
        self.labels.get(&pair).map(|&(_, p)| p)
    }

    /// All labeled pairs in the order they were resolved.
    #[must_use]
    pub fn labeled_pairs(&self) -> &[LabeledPair] {
        &self.in_order
    }

    /// Number of pairs answered by the crowd/oracle — the money cost, and
    /// the quantity every experiment in the paper minimizes.
    #[must_use]
    pub fn num_crowdsourced(&self) -> usize {
        self.crowdsourced
    }

    /// Number of pairs whose label was deduced for free.
    #[must_use]
    pub fn num_deduced(&self) -> usize {
        self.deduced
    }

    /// Total pairs labeled.
    #[must_use]
    pub fn num_labeled(&self) -> usize {
        self.in_order.len()
    }

    /// Number of crowd answers that contradicted an existing deduction (only
    /// possible with noisy answer sources); the deduced label wins in that
    /// case and the crowd answer is discarded.
    #[must_use]
    pub fn num_conflicts(&self) -> usize {
        self.conflicts
    }

    /// Fraction of pairs that did **not** need crowdsourcing — the headline
    /// savings of the paper (e.g. ~95% on the Paper dataset).
    #[must_use]
    pub fn savings_ratio(&self) -> f64 {
        if self.in_order.is_empty() {
            0.0
        } else {
            self.deduced as f64 / self.in_order.len() as f64
        }
    }

    /// Iterator over pairs labeled matching.
    pub fn matching_pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        self.in_order.iter().filter(|lp| lp.label == Label::Matching).map(|lp| lp.pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut r = LabelingResult::new();
        r.record(Pair::new(0, 1), Label::Matching, Provenance::Crowdsourced);
        r.record(Pair::new(1, 2), Label::Matching, Provenance::Crowdsourced);
        r.record(Pair::new(0, 2), Label::Matching, Provenance::Deduced);
        r.record(Pair::new(0, 3), Label::NonMatching, Provenance::Crowdsourced);

        assert_eq!(r.num_crowdsourced(), 3);
        assert_eq!(r.num_deduced(), 1);
        assert_eq!(r.num_labeled(), 4);
        assert_eq!(r.label_of(Pair::new(0, 2)), Some(Label::Matching));
        assert_eq!(r.provenance_of(Pair::new(0, 2)), Some(Provenance::Deduced));
        assert_eq!(r.label_of(Pair::new(2, 3)), None);
        assert_eq!(r.matching_pairs().count(), 3);
        assert!((r.savings_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_result() {
        let r = LabelingResult::new();
        assert_eq!(r.num_labeled(), 0);
        assert_eq!(r.savings_ratio(), 0.0);
        assert_eq!(r.num_conflicts(), 0);
    }
}
