//! Budget-limited labeling — the related-work scenario of Whang et al.
//! (citation 27 in the paper): there is not enough money to label every candidate pair,
//! so spend a fixed budget of crowd questions as effectively as possible.
//!
//! Combined with the likelihood-descending order, transitive labeling is a
//! natural fit for this setting: early answers are mostly matching pairs,
//! whose merges unlock the most free deductions per answer. When the budget
//! runs out, everything still deducible from the purchased answers is
//! deduced, and the rest is reported as unlabeled.

use crate::oracle::Oracle;
use crate::result::LabelingResult;
use crate::types::{Pair, Provenance, ScoredPair};
use crowdjoin_graph::ClusterGraph;

/// Outcome of a budget-limited run.
#[derive(Debug, Clone)]
pub struct BudgetedResult {
    /// Labels obtained (crowdsourced within budget + all deductions).
    pub result: LabelingResult,
    /// Pairs left unlabeled when the budget ran out.
    pub unlabeled: Vec<Pair>,
    /// `true` if the budget was fully spent (false means the whole order was
    /// labeled with budget to spare).
    pub budget_exhausted: bool,
}

impl BudgetedResult {
    /// Fraction of the candidate pairs that received a label.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.result.num_labeled() + self.unlabeled.len();
        if total == 0 {
            1.0
        } else {
            self.result.num_labeled() as f64 / total as f64
        }
    }
}

/// Sequentially labels `order` but asks the oracle at most `budget` times.
///
/// After the budget is exhausted the remaining pairs get one final deduction
/// pass (they can still be labeled for free from what was bought); pairs
/// that stay undeducible are returned in [`BudgetedResult::unlabeled`], in
/// order.
pub fn label_with_budget(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &mut dyn Oracle,
    budget: usize,
) -> BudgetedResult {
    let mut graph = ClusterGraph::new(num_objects);
    let mut result = LabelingResult::new();
    let mut spent = 0usize;
    let mut deferred: Vec<Pair> = Vec::new();

    for sp in order {
        let (a, b) = (sp.pair.a(), sp.pair.b());
        if let Some(label) = graph.deduce(a, b) {
            result.record(sp.pair, label, Provenance::Deduced);
        } else if spent < budget {
            let label = oracle.answer(sp.pair);
            graph.insert(a, b, label).expect("insert after failed deduction cannot conflict");
            result.record(sp.pair, label, Provenance::Crowdsourced);
            spent += 1;
        } else {
            deferred.push(sp.pair);
        }
    }

    // Final pass: later purchases may have made earlier-deferred pairs
    // deducible.
    let mut unlabeled = Vec::new();
    for pair in deferred {
        if let Some(label) = graph.deduce(pair.a(), pair.b()) {
            result.record(pair, label, Provenance::Deduced);
        } else {
            unlabeled.push(pair);
        }
    }

    BudgetedResult { result, unlabeled, budget_exhausted: spent >= budget }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sort::{sort_pairs, SortStrategy};
    use crate::truth::GroundTruth;
    use crate::types::CandidateSet;
    use proptest::prelude::*;

    fn clique_task(k: u32) -> (GroundTruth, CandidateSet) {
        let truth = GroundTruth::from_clusters(k as usize, &[(0..k).collect()]);
        let mut pairs = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                pairs.push(ScoredPair::new(Pair::new(a, b), 0.9 - 0.001 * (a + b) as f64));
            }
        }
        (truth, CandidateSet::new(k as usize, pairs))
    }

    #[test]
    fn zero_budget_labels_nothing() {
        let (truth, cs) = clique_task(6);
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let out = label_with_budget(6, &order, &mut oracle, 0);
        assert_eq!(out.result.num_labeled(), 0);
        assert_eq!(out.unlabeled.len(), cs.len());
        assert!(out.budget_exhausted);
        assert_eq!(out.coverage(), 0.0);
        assert_eq!(oracle.questions_asked(), 0);
    }

    #[test]
    fn ample_budget_equals_unrestricted() {
        let (truth, cs) = clique_task(6);
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let out = label_with_budget(6, &order, &mut oracle, 1_000);
        assert!(out.unlabeled.is_empty());
        assert!(!out.budget_exhausted);
        assert_eq!(out.result.num_crowdsourced(), 5, "spanning tree of the clique");
        assert_eq!(out.coverage(), 1.0);
    }

    #[test]
    fn partial_budget_on_clique_covers_quadratically() {
        // On a k-clique, b bought matching edges merge b+1 records and
        // deduce C(b+1,2) pairs total — budgeted coverage grows much faster
        // than b/total.
        let (truth, cs) = clique_task(12);
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let out = label_with_budget(12, &order, &mut oracle, 6);
        assert!(out.budget_exhausted);
        assert_eq!(out.result.num_crowdsourced(), 6);
        assert!(
            out.result.num_deduced() >= 6,
            "6 merges should deduce plenty, got {}",
            out.result.num_deduced()
        );
    }

    #[test]
    fn deferred_pairs_get_final_deduction_pass() {
        // Order [(0,1), (0,2), (1,2)] with budget 2: the first two pairs are
        // bought, (1,2) is deferred at position 3 — but the final pass can
        // deduce it from 0=1 and 0=2.
        let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
        let order = vec![
            ScoredPair::new(Pair::new(0, 1), 0.9),
            ScoredPair::new(Pair::new(0, 2), 0.8),
            ScoredPair::new(Pair::new(1, 2), 0.7),
        ];
        let mut oracle = GroundTruthOracle::new(&truth);
        let out = label_with_budget(3, &order, &mut oracle, 2);
        assert!(out.unlabeled.is_empty(), "final pass must deduce (1,2)");
        assert_eq!(out.result.num_deduced(), 1);
        assert_eq!(out.coverage(), 1.0);
    }

    proptest! {
        /// Coverage is monotone in the budget, and the spend never exceeds
        /// it.
        #[test]
        fn budget_monotonicity(
            k in 4u32..10,
            b1 in 0usize..20,
            extra in 0usize..20,
        ) {
            let (truth, cs) = clique_task(k);
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
            let mut o1 = GroundTruthOracle::new(&truth);
            let small = label_with_budget(k as usize, &order, &mut o1, b1);
            prop_assert!(o1.questions_asked() as usize <= b1);
            let mut o2 = GroundTruthOracle::new(&truth);
            let large = label_with_budget(k as usize, &order, &mut o2, b1 + extra);
            prop_assert!(large.result.num_labeled() >= small.result.num_labeled());
            prop_assert!(large.coverage() >= small.coverage() - 1e-12);
        }

        /// Budgeted labels are always sound.
        #[test]
        fn budget_labels_sound(k in 4u32..10, budget in 0usize..30, seed in any::<u64>()) {
            let (truth, cs) = clique_task(k);
            let order = sort_pairs(&cs, SortStrategy::Random { seed });
            let mut oracle = GroundTruthOracle::new(&truth);
            let out = label_with_budget(k as usize, &order, &mut oracle, budget);
            for lp in out.result.labeled_pairs() {
                prop_assert_eq!(lp.label, truth.label_of(lp.pair));
            }
            prop_assert_eq!(
                out.result.num_labeled() + out.unlabeled.len(),
                cs.len()
            );
        }
    }
}
