//! Answer sources.
//!
//! The labeling framework asks an [`Oracle`] whenever a pair must be
//! crowdsourced. Separating the framework from the answer source lets the
//! same labeler run against a perfect ground truth (the paper's Section 2.1
//! assumption, used in Figures 11–15 and Table 1), an error-injecting wrapper
//! (worker-noise sweeps), or a full crowd-platform simulation with majority
//! voting (`crowdjoin-sim`, Table 2).

use crate::truth::GroundTruth;
use crate::types::{Label, Pair};
use crowdjoin_util::SplitMix64;

/// A source of crowd answers for object pairs.
///
/// The trait itself is single-threaded; the multi-threaded execution engine
/// (`crowdjoin-engine`) requires `Oracle + Send` only at its own boundary
/// (`SyncOracle`), so exotic non-`Send` oracles remain usable with the
/// sequential labelers. Every stock oracle here is plain data and `Send`
/// (asserted below).
pub trait Oracle {
    /// Answers whether the pair is matching. Called once per crowdsourced
    /// pair; implementations may be stateful (e.g. track cost, inject noise).
    fn answer(&mut self, pair: Pair) -> Label;

    /// Number of questions answered so far.
    fn questions_asked(&self) -> u64;
}

impl<O: Oracle + ?Sized> Oracle for &mut O {
    fn answer(&mut self, pair: Pair) -> Label {
        (**self).answer(pair)
    }

    fn questions_asked(&self) -> u64 {
        (**self).questions_asked()
    }
}

// The labeling state machines and stock oracles must stay thread-portable:
// the engine moves them into worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<crate::parallel::ParallelLabeler>();
    assert_send::<GroundTruthOracle<'static>>();
    assert_send::<NoisyOracle<'static>>();
    assert_send::<FixedOracle>();
};

/// A perfect oracle backed by the ground truth.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle<'a> {
    truth: &'a GroundTruth,
    asked: u64,
}

impl<'a> GroundTruthOracle<'a> {
    /// Wraps a ground truth as a perfect answer source.
    #[must_use]
    pub fn new(truth: &'a GroundTruth) -> Self {
        Self { truth, asked: 0 }
    }
}

impl Oracle for GroundTruthOracle<'_> {
    fn answer(&mut self, pair: Pair) -> Label {
        self.asked += 1;
        self.truth.label_of(pair)
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

/// An oracle that flips the true answer with a fixed probability per
/// question, simulating worker error *after* any majority voting.
///
/// The flip decision is a deterministic function of the pair and the seed, so
/// the same pair always receives the same (possibly wrong) answer regardless
/// of the order in which labelers ask — this keeps comparisons between
/// labeling strategies apples-to-apples.
#[derive(Debug, Clone)]
pub struct NoisyOracle<'a> {
    truth: &'a GroundTruth,
    error_rate: f64,
    seed: u64,
    asked: u64,
}

impl<'a> NoisyOracle<'a> {
    /// Creates a noisy oracle with the given per-question error rate.
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is not within `[0, 1]`.
    #[must_use]
    pub fn new(truth: &'a GroundTruth, error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error_rate must be in [0,1]");
        Self { truth, error_rate, seed, asked: 0 }
    }

    fn flips(&self, pair: Pair) -> bool {
        // Hash the pair into a deterministic uniform draw.
        let mut mix = SplitMix64::new(self.seed ^ ((pair.a() as u64) << 32 | pair.b() as u64));
        mix.next_f64() < self.error_rate
    }
}

impl Oracle for NoisyOracle<'_> {
    fn answer(&mut self, pair: Pair) -> Label {
        self.asked += 1;
        let truth = self.truth.label_of(pair);
        if self.flips(pair) {
            match truth {
                Label::Matching => Label::NonMatching,
                Label::NonMatching => Label::Matching,
            }
        } else {
            truth
        }
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

/// An oracle answering from a fixed assignment, used by the expected-cost
/// machinery to replay a hypothetical world.
#[derive(Debug, Clone)]
pub struct FixedOracle {
    answers: crowdjoin_util::FxHashMap<Pair, Label>,
    asked: u64,
}

impl FixedOracle {
    /// Creates an oracle from explicit `(pair, label)` answers.
    #[must_use]
    pub fn new(answers: impl IntoIterator<Item = (Pair, Label)>) -> Self {
        Self { answers: answers.into_iter().collect(), asked: 0 }
    }
}

impl Oracle for FixedOracle {
    fn answer(&mut self, pair: Pair) -> Label {
        self.asked += 1;
        *self
            .answers
            .get(&pair)
            .unwrap_or_else(|| panic!("FixedOracle has no answer for pair {pair}"))
    }

    fn questions_asked(&self) -> u64 {
        self.asked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_truth() -> GroundTruth {
        GroundTruth::from_clusters(4, &[vec![0, 1]])
    }

    #[test]
    fn ground_truth_oracle_answers_truthfully() {
        let truth = small_truth();
        let mut o = GroundTruthOracle::new(&truth);
        assert_eq!(o.answer(Pair::new(0, 1)), Label::Matching);
        assert_eq!(o.answer(Pair::new(0, 2)), Label::NonMatching);
        assert_eq!(o.questions_asked(), 2);
    }

    #[test]
    fn noisy_oracle_zero_rate_is_perfect() {
        let truth = small_truth();
        let mut o = NoisyOracle::new(&truth, 0.0, 7);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                let p = Pair::new(a, b);
                assert_eq!(o.answer(p), truth.label_of(p));
            }
        }
    }

    #[test]
    fn noisy_oracle_one_rate_always_flips() {
        let truth = small_truth();
        let mut o = NoisyOracle::new(&truth, 1.0, 7);
        assert_eq!(o.answer(Pair::new(0, 1)), Label::NonMatching);
        assert_eq!(o.answer(Pair::new(0, 2)), Label::Matching);
    }

    #[test]
    fn noisy_oracle_is_stable_per_pair() {
        let truth = small_truth();
        let mut o = NoisyOracle::new(&truth, 0.5, 99);
        let p = Pair::new(1, 3);
        let first = o.answer(p);
        for _ in 0..10 {
            assert_eq!(o.answer(p), first, "same pair must always answer the same");
        }
    }

    #[test]
    fn noisy_oracle_rate_roughly_respected() {
        let truth = GroundTruth::all_distinct(200);
        let mut o = NoisyOracle::new(&truth, 0.2, 12345);
        let mut wrong = 0;
        let mut total = 0;
        for a in 0..200u32 {
            for b in (a + 1)..(a + 4).min(200) {
                let p = Pair::new(a, b);
                if o.answer(p) != truth.label_of(p) {
                    wrong += 1;
                }
                total += 1;
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.05, "observed error rate {rate} too far from 0.2");
    }

    #[test]
    fn fixed_oracle_replays() {
        let p = Pair::new(2, 3);
        let mut o = FixedOracle::new([(p, Label::Matching)]);
        assert_eq!(o.answer(p), Label::Matching);
        assert_eq!(o.questions_asked(), 1);
    }

    #[test]
    #[should_panic(expected = "no answer for pair")]
    fn fixed_oracle_panics_on_unknown_pair() {
        let mut o = FixedOracle::new([]);
        let _ = o.answer(Pair::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "error_rate")]
    fn noisy_oracle_validates_rate() {
        let truth = small_truth();
        let _ = NoisyOracle::new(&truth, 1.5, 0);
    }
}
