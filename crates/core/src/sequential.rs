//! The simple one-pair-at-a-time labeler (Section 3.2).
//!
//! Pairs are processed in the given order; each pair is deduced from the
//! already-labeled pairs when possible and crowdsourced otherwise. This
//! labeler is the cost reference: the parallel labeler must crowdsource
//! exactly the same pairs (for consistent answers), it just publishes them
//! in batches.

use crate::oracle::Oracle;
use crate::result::LabelingResult;
use crate::types::{Provenance, ScoredPair};
use crowdjoin_graph::ClusterGraph;

/// Labels `order` one pair at a time against `oracle`.
///
/// `num_objects` is the size of the object universe the pairs index into.
///
/// With a consistent oracle the number of crowdsourced pairs equals the
/// minimum required by this order; with the optimal order (Theorem 1) it is
/// the global minimum.
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects`.
pub fn label_sequential(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &mut dyn Oracle,
) -> LabelingResult {
    let mut graph = ClusterGraph::new(num_objects);
    let mut result = LabelingResult::new();
    for sp in order {
        let (a, b) = (sp.pair.a(), sp.pair.b());
        if let Some(label) = graph.deduce(a, b) {
            result.record(sp.pair, label, Provenance::Deduced);
        } else {
            let label = oracle.answer(sp.pair);
            // `deduce` returned None, so the insert cannot conflict.
            graph.insert(a, b, label).expect("insert after failed deduction cannot conflict");
            result.record(sp.pair, label, Provenance::Crowdsourced);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sort::{sort_pairs, SortStrategy};
    use crate::truth::GroundTruth;
    use crate::types::{CandidateSet, Pair};

    /// The Figure 3 running example (0-based ids): clusters {o1,o2,o3},
    /// {o4,o5}; candidate pairs p1..p8 in decreasing likelihood.
    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95), // p1 M
            ScoredPair::new(Pair::new(1, 2), 0.90), // p2 M
            ScoredPair::new(Pair::new(0, 5), 0.85), // p3 N
            ScoredPair::new(Pair::new(0, 2), 0.80), // p4 M
            ScoredPair::new(Pair::new(3, 4), 0.75), // p5 M
            ScoredPair::new(Pair::new(3, 5), 0.70), // p6 N
            ScoredPair::new(Pair::new(1, 3), 0.65), // p7 N
            ScoredPair::new(Pair::new(4, 5), 0.60), // p8 N
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn figure3_optimal_order_crowdsources_six() {
        // The paper's Example 2: the optimum is six crowdsourced pairs
        // (p4 deduced from p1,p2; p6 deduced from p5,p8 — or an equivalent
        // deduction set under a different optimal order).
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::Optimal(&truth));
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(cs.num_objects(), &order, &mut oracle);
        assert_eq!(result.num_crowdsourced(), 6);
        assert_eq!(result.num_deduced(), 2);
    }

    #[test]
    fn figure3_expected_order_also_six() {
        // With likelihoods sorted as given (p1..p8), the expected order also
        // achieves 6 here: p4 deduced from {p1,p2}, p8 deduced from {p5,p6}.
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(cs.num_objects(), &order, &mut oracle);
        assert_eq!(result.num_crowdsourced(), 6);
    }

    #[test]
    fn labels_agree_with_truth_for_perfect_oracle() {
        let (cs, truth) = running_example();
        for strategy in [
            SortStrategy::Optimal(&truth),
            SortStrategy::ExpectedLikelihood,
            SortStrategy::Random { seed: 5 },
            SortStrategy::Worst(&truth),
        ] {
            let order = sort_pairs(&cs, strategy);
            let mut oracle = GroundTruthOracle::new(&truth);
            let result = label_sequential(cs.num_objects(), &order, &mut oracle);
            assert_eq!(result.num_labeled(), cs.len());
            for sp in cs.pairs() {
                assert_eq!(
                    result.label_of(sp.pair),
                    Some(truth.label_of(sp.pair)),
                    "wrong label for {} under {}",
                    sp.pair,
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn section31_example_order_matters() {
        // Section 3.1: pairs (o1,o2)M, (o2,o3)N, (o1,o3)N.
        // Order ⟨(o1,o2),(o2,o3),(o1,o3)⟩ crowdsources 2;
        // order ⟨(o2,o3),(o1,o3),(o1,o2)⟩ crowdsources 3.
        let truth = GroundTruth::from_clusters(3, &[vec![0, 1]]);
        let p12 = ScoredPair::new(Pair::new(0, 1), 0.9);
        let p23 = ScoredPair::new(Pair::new(1, 2), 0.5);
        let p13 = ScoredPair::new(Pair::new(0, 2), 0.1);

        let mut oracle = GroundTruthOracle::new(&truth);
        let good = label_sequential(3, &[p12, p23, p13], &mut oracle);
        assert_eq!(good.num_crowdsourced(), 2);

        let mut oracle = GroundTruthOracle::new(&truth);
        let bad = label_sequential(3, &[p23, p13, p12], &mut oracle);
        assert_eq!(bad.num_crowdsourced(), 3);
    }

    #[test]
    fn empty_order_crowdsources_nothing() {
        let truth = GroundTruth::all_distinct(3);
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(3, &[], &mut oracle);
        assert_eq!(result.num_labeled(), 0);
        assert_eq!(oracle.questions_asked(), 0);
    }

    #[test]
    fn oracle_asked_exactly_crowdsourced_count() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let result = label_sequential(cs.num_objects(), &order, &mut oracle);
        assert_eq!(oracle.questions_asked(), result.num_crowdsourced() as u64);
    }
}
