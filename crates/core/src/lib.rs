//! # crowdjoin-core — transitive-relation labeling for crowdsourced joins
//!
//! This crate implements the primary contribution of *Leveraging Transitive
//! Relations for Crowdsourced Joins* (Wang, Li, Kraska, Franklin, Feng —
//! SIGMOD 2013, revised 2014): given a machine-generated set of candidate
//! matching pairs, obtain a label for **every** pair while **crowdsourcing as
//! few pairs as possible**, by deducing the rest through positive and
//! negative transitivity.
//!
//! ## Components
//!
//! * **Sorting** ([`sort`]) — labeling orders: the theoretical optimum
//!   (matching pairs first, Theorem 1), the practical likelihood-descending
//!   heuristic, plus random/worst baselines for experiments.
//! * **Labeling** ([`sequential`], [`parallel`]) — the one-pair-at-a-time
//!   labeler and the parallel labeler (Algorithms 2/3) that publishes every
//!   pair provably needing crowdsourcing, supporting the *instant decision*
//!   and *non-matching first* optimizations through its event-driven API.
//! * **Baseline** ([`baseline`]) — the non-transitive labeler prior systems
//!   use (crowdsource everything).
//! * **Analysis** ([`analysis`], [`expected`]) — closed-form optimal cost and
//!   exact expected-cost evaluation over consistent worlds (Example 4),
//!   including brute-force search for the expected-optimal order on small
//!   instances (the general problem is NP-hard; Vesdapunt et al. 2014).
//! * **Quality** ([`metrics`]) — precision/recall/F-measure as defined in
//!   Section 6.4.
//!
//! ## Quick start
//!
//! ```
//! use crowdjoin_core::{
//!     CandidateSet, GroundTruth, GroundTruthOracle, LabelingTask, Pair, ScoredPair,
//!     SortStrategy,
//! };
//!
//! // Three records that all refer to one entity ("iPad 2nd Gen" ≅ "iPad Two"
//! // ≅ "iPad 2"), with machine likelihoods.
//! let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
//! let candidates = CandidateSet::new(3, vec![
//!     ScoredPair::new(Pair::new(0, 1), 0.9),
//!     ScoredPair::new(Pair::new(1, 2), 0.8),
//!     ScoredPair::new(Pair::new(0, 2), 0.7),
//! ]);
//!
//! let task = LabelingTask::new(candidates);
//! let mut crowd = GroundTruthOracle::new(&truth);
//! let result = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut crowd);
//!
//! // The third pair is deduced by positive transitivity — only two pairs
//! // cost money.
//! assert_eq!(result.num_crowdsourced(), 2);
//! assert_eq!(result.num_deduced(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod budget;
pub mod expected;
pub mod framework;
pub mod metrics;
pub mod one_to_one;
pub mod oracle;
pub mod parallel;
pub mod resolution;
pub mod result;
pub mod sequential;
pub mod sort;
pub mod truth;
pub mod types;

pub use analysis::{optimal_cost, OptimalCost};
pub use baseline::label_non_transitive;
pub use budget::{label_with_budget, BudgetedResult};
pub use expected::{
    estimate_expected_cost, is_consistent, World, WorldEnumeration, MAX_ENUMERABLE_PAIRS,
};
pub use framework::LabelingTask;
pub use metrics::QualityMetrics;
pub use one_to_one::{enforce_one_to_one, OneToOneDeducer, OneToOneOutcome};
pub use oracle::{FixedOracle, GroundTruthOracle, NoisyOracle, Oracle};
pub use parallel::{run_parallel_rounds, ParallelLabeler, ParallelRunStats};
pub use resolution::{resolve_entities, EntityResolution};
pub use result::LabelingResult;
pub use sequential::label_sequential;
pub use sort::{sort_pairs, SortStrategy};
pub use truth::GroundTruth;
pub use types::{CandidateSet, Label, LabeledPair, Pair, Provenance, ScoredPair};
