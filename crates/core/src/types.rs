//! Core vocabulary types: pairs, labels, likelihoods, candidate sets.

pub use crowdjoin_graph::EdgeLabel as Label;

/// An unordered pair of object ids, stored normalized (`a < b`).
///
/// Object ids are dense `u32` indices into the candidate universe
/// (`0..num_objects`); for a cross-collection join the two input tables are
/// concatenated into one id space by the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pair {
    a: u32,
    b: u32,
}

impl Pair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`: a pair must relate two distinct objects.
    #[must_use]
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "a pair must relate two distinct objects");
        if a < b {
            Self { a, b }
        } else {
            Self { a: b, b: a }
        }
    }

    /// Smaller object id.
    #[must_use]
    pub fn a(self) -> u32 {
        self.a
    }

    /// Larger object id.
    #[must_use]
    pub fn b(self) -> u32 {
        self.b
    }

    /// `true` if `x` is one of the pair's objects.
    #[must_use]
    pub fn contains(self, x: u32) -> bool {
        self.a == x || self.b == x
    }

    /// The other object of the pair, or `None` if `x` is not in the pair.
    #[must_use]
    pub fn other(self, x: u32) -> Option<u32> {
        if x == self.a {
            Some(self.b)
        } else if x == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(o{}, o{})", self.a, self.b)
    }
}

/// A candidate pair with its machine-computed likelihood of matching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// The object pair.
    pub pair: Pair,
    /// Likelihood in `[0, 1]` that the pair is matching, produced by the
    /// machine-based matcher (e.g. calibrated string similarity).
    pub likelihood: f64,
}

impl ScoredPair {
    /// Creates a scored pair, clamping the likelihood into `[0, 1]`.
    #[must_use]
    pub fn new(pair: Pair, likelihood: f64) -> Self {
        let likelihood = if likelihood.is_finite() { likelihood.clamp(0.0, 1.0) } else { 0.0 };
        Self { pair, likelihood }
    }
}

/// How a pair's label was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// A crowd worker (or oracle) answered the pair directly — this costs
    /// money on a real platform.
    Crowdsourced,
    /// The label was deduced from previously labeled pairs via transitive
    /// relations — free.
    Deduced,
}

/// A labeled pair with provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledPair {
    /// The pair.
    pub pair: Pair,
    /// Its label.
    pub label: Label,
    /// Whether the label was crowdsourced or deduced.
    pub provenance: Provenance,
}

/// The input to the labeling framework: a universe of objects and the
/// machine-generated candidate pairs (with likelihoods) that must be labeled.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    num_objects: usize,
    pairs: Vec<ScoredPair>,
}

impl CandidateSet {
    /// Creates a candidate set over `num_objects` objects.
    ///
    /// # Panics
    ///
    /// Panics if any pair references an object id `>= num_objects` or if the
    /// same pair appears twice.
    #[must_use]
    pub fn new(num_objects: usize, pairs: Vec<ScoredPair>) -> Self {
        let mut seen = crowdjoin_util::FxHashSet::default();
        for sp in &pairs {
            assert!(
                (sp.pair.b() as usize) < num_objects,
                "pair {} references object outside universe of {num_objects}",
                sp.pair
            );
            assert!(seen.insert(sp.pair), "duplicate candidate pair {}", sp.pair);
        }
        Self { num_objects, pairs }
    }

    /// Number of objects in the universe.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of candidate pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when there are no candidate pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The candidate pairs, in insertion order.
    #[must_use]
    pub fn pairs(&self) -> &[ScoredPair] {
        &self.pairs
    }

    /// Retains only pairs whose likelihood is at least `threshold` — the
    /// paper's "label the pairs whose likelihood is above a specified
    /// threshold" preprocessing.
    #[must_use]
    pub fn above_threshold(&self, threshold: f64) -> CandidateSet {
        CandidateSet {
            num_objects: self.num_objects,
            pairs: self.pairs.iter().copied().filter(|sp| sp.likelihood >= threshold).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_normalizes_order() {
        let p = Pair::new(7, 3);
        assert_eq!(p.a(), 3);
        assert_eq!(p.b(), 7);
        assert_eq!(Pair::new(3, 7), p);
    }

    #[test]
    #[should_panic(expected = "distinct objects")]
    fn self_pair_rejected() {
        let _ = Pair::new(4, 4);
    }

    #[test]
    fn pair_contains_and_other() {
        let p = Pair::new(1, 5);
        assert!(p.contains(1));
        assert!(p.contains(5));
        assert!(!p.contains(3));
        assert_eq!(p.other(1), Some(5));
        assert_eq!(p.other(5), Some(1));
        assert_eq!(p.other(2), None);
    }

    #[test]
    fn scored_pair_clamps_likelihood() {
        let p = Pair::new(0, 1);
        assert_eq!(ScoredPair::new(p, 1.5).likelihood, 1.0);
        assert_eq!(ScoredPair::new(p, -0.2).likelihood, 0.0);
        assert_eq!(ScoredPair::new(p, f64::NAN).likelihood, 0.0);
        assert_eq!(ScoredPair::new(p, 0.42).likelihood, 0.42);
    }

    #[test]
    fn candidate_set_threshold_filter() {
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.9),
            ScoredPair::new(Pair::new(1, 2), 0.4),
            ScoredPair::new(Pair::new(0, 2), 0.1),
        ];
        let cs = CandidateSet::new(3, pairs);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs.above_threshold(0.4).len(), 2);
        assert_eq!(cs.above_threshold(0.95).len(), 0);
        assert_eq!(cs.above_threshold(0.0).len(), 3);
        assert_eq!(cs.num_objects(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate pair")]
    fn candidate_set_rejects_duplicates() {
        let pairs =
            vec![ScoredPair::new(Pair::new(0, 1), 0.9), ScoredPair::new(Pair::new(1, 0), 0.4)];
        let _ = CandidateSet::new(2, pairs);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn candidate_set_rejects_out_of_range() {
        let pairs = vec![ScoredPair::new(Pair::new(0, 9), 0.9)];
        let _ = CandidateSet::new(3, pairs);
    }
}
