//! One-to-one join constraints — the paper's Section 8 future-work item
//! "explore other kinds of relations (e.g. one-to-one relationship)".
//!
//! In many cross-collection joins each left record can match at most one
//! right record and vice versa (two catalogs, each deduplicated internally).
//! That knowledge is *extra deduction power*: once `(a, b)` is matching,
//! every other pair touching `a` or `b` is non-matching without asking
//! anyone. This module provides both uses:
//!
//! * [`enforce_one_to_one`] — post-processing: given labeled matches with
//!   likelihoods, keep a maximum-likelihood one-to-one subset (greedy by
//!   weight) and demote the rest;
//! * [`OneToOneDeducer`] — online: track matched records during labeling
//!   and answer "is this pair already excluded?" in O(1), letting a driver
//!   skip crowdsourcing pairs the constraint decides.

use crate::types::{Pair, ScoredPair};
use crowdjoin_util::FxHashSet;

/// Result of enforcing a one-to-one constraint over matching pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct OneToOneOutcome {
    /// Matching pairs kept (pairwise disjoint endpoints).
    pub kept: Vec<ScoredPair>,
    /// Matching pairs demoted to non-matching because an endpoint was
    /// already claimed by a higher-likelihood pair.
    pub demoted: Vec<ScoredPair>,
}

impl OneToOneOutcome {
    /// `true` if nothing had to be demoted (the input already satisfied the
    /// constraint).
    #[must_use]
    pub fn was_consistent(&self) -> bool {
        self.demoted.is_empty()
    }
}

/// Greedily selects a maximum-likelihood one-to-one subset of `matches`:
/// pairs are considered in decreasing likelihood (ties broken by pair id for
/// determinism) and kept iff neither endpoint is already matched.
///
/// Greedy is a 2-approximation of maximum-weight matching and is what
/// production ER pipelines typically run; exactness is not required because
/// demotions are surfaced for review rather than silently dropped.
#[must_use]
pub fn enforce_one_to_one(matches: &[ScoredPair]) -> OneToOneOutcome {
    let mut sorted: Vec<ScoredPair> = matches.to_vec();
    sorted.sort_by(|x, y| y.likelihood.total_cmp(&x.likelihood).then_with(|| x.pair.cmp(&y.pair)));
    let mut used: FxHashSet<u32> = FxHashSet::default();
    let mut kept = Vec::new();
    let mut demoted = Vec::new();
    for sp in sorted {
        if used.contains(&sp.pair.a()) || used.contains(&sp.pair.b()) {
            demoted.push(sp);
        } else {
            used.insert(sp.pair.a());
            used.insert(sp.pair.b());
            kept.push(sp);
        }
    }
    OneToOneOutcome { kept, demoted }
}

/// Online one-to-one tracker: during labeling, a confirmed match excludes
/// every other pair touching either record.
#[derive(Debug, Clone, Default)]
pub struct OneToOneDeducer {
    matched: FxHashSet<u32>,
}

impl OneToOneDeducer {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a confirmed match.
    ///
    /// # Panics
    ///
    /// Panics if either record is already matched to someone else — the
    /// caller must consult [`Self::excludes`] first.
    pub fn confirm_match(&mut self, pair: Pair) {
        assert!(
            !self.excludes(pair),
            "one-to-one violation: an endpoint of {pair} is already matched"
        );
        self.matched.insert(pair.a());
        self.matched.insert(pair.b());
    }

    /// `true` when the constraint already rules this pair out (an endpoint
    /// is matched elsewhere), so it can be labeled non-matching for free.
    #[must_use]
    pub fn excludes(&self, pair: Pair) -> bool {
        self.matched.contains(&pair.a()) || self.matched.contains(&pair.b())
    }

    /// Number of records currently matched.
    #[must_use]
    pub fn num_matched_records(&self) -> usize {
        self.matched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(a: u32, b: u32, l: f64) -> ScoredPair {
        ScoredPair::new(Pair::new(a, b), l)
    }

    #[test]
    fn keeps_disjoint_input_unchanged() {
        let matches = vec![sp(0, 10, 0.9), sp(1, 11, 0.8), sp(2, 12, 0.7)];
        let out = enforce_one_to_one(&matches);
        assert!(out.was_consistent());
        assert_eq!(out.kept.len(), 3);
    }

    #[test]
    fn demotes_lower_likelihood_conflicts() {
        // Record 0 claimed by the 0.9 pair; the 0.6 pair sharing record 0
        // is demoted, freeing nothing for the 0.5 pair which shares 11.
        let matches = vec![sp(0, 10, 0.9), sp(0, 11, 0.6), sp(5, 11, 0.5)];
        let out = enforce_one_to_one(&matches);
        let kept: Vec<Pair> = out.kept.iter().map(|s| s.pair).collect();
        assert_eq!(kept, vec![Pair::new(0, 10), Pair::new(5, 11)]);
        assert_eq!(out.demoted.len(), 1);
        assert_eq!(out.demoted[0].pair, Pair::new(0, 11));
    }

    #[test]
    fn greedy_is_deterministic_under_ties() {
        let matches = vec![sp(0, 10, 0.5), sp(0, 11, 0.5)];
        let a = enforce_one_to_one(&matches);
        let b = enforce_one_to_one(&matches);
        assert_eq!(a, b);
        assert_eq!(a.kept.len(), 1);
        // Tie broken by pair ordering: (0,10) < (0,11).
        assert_eq!(a.kept[0].pair, Pair::new(0, 10));
    }

    #[test]
    fn kept_pairs_have_disjoint_endpoints() {
        let matches: Vec<ScoredPair> = (0..30u32)
            .flat_map(|i| {
                let l = 1.0 / (i + 1) as f64;
                vec![sp(i % 7, 10 + i % 5, l), sp(i % 5, 20 + i % 3, l * 0.9)]
            })
            .collect();
        // Dedup pairs (ScoredPair eq includes likelihood; dedup by pair).
        let mut seen = std::collections::BTreeSet::new();
        let matches: Vec<ScoredPair> =
            matches.into_iter().filter(|s| seen.insert(s.pair)).collect();
        let out = enforce_one_to_one(&matches);
        let mut used = std::collections::BTreeSet::new();
        for s in &out.kept {
            assert!(used.insert(s.pair.a()), "endpoint reused");
            assert!(used.insert(s.pair.b()), "endpoint reused");
        }
        assert_eq!(out.kept.len() + out.demoted.len(), matches.len());
    }

    #[test]
    fn online_deducer_excludes_after_confirm() {
        let mut d = OneToOneDeducer::new();
        assert!(!d.excludes(Pair::new(0, 10)));
        d.confirm_match(Pair::new(0, 10));
        assert!(d.excludes(Pair::new(0, 11)));
        assert!(d.excludes(Pair::new(3, 10)));
        assert!(!d.excludes(Pair::new(1, 11)));
        assert_eq!(d.num_matched_records(), 2);
    }

    #[test]
    #[should_panic(expected = "one-to-one violation")]
    fn online_deducer_rejects_double_match() {
        let mut d = OneToOneDeducer::new();
        d.confirm_match(Pair::new(0, 10));
        d.confirm_match(Pair::new(0, 11));
    }

    #[test]
    fn empty_input() {
        let out = enforce_one_to_one(&[]);
        assert!(out.kept.is_empty());
        assert!(out.was_consistent());
    }
}
