//! Component partitioning: splitting a candidate workload into
//! embarrassingly parallel shards.
//!
//! Transitive deduction can only relate pairs whose objects are connected in
//! the candidate graph — pairs in different connected components never
//! deduce each other (positive and negative transitivity both propagate
//! along candidate edges only). The partitioner therefore:
//!
//! 1. extracts connected components of the candidate graph with the
//!    `crowdjoin-graph` union–find ([`crowdjoin_graph::UnionFind::component_ids`]);
//! 2. bin-packs components into at most `max_shards` shards, balancing by
//!    pair count with the LPT (longest-processing-time-first) greedy rule —
//!    optimal within a factor of 4/3 for makespan, deterministic here;
//! 3. remaps each shard to a dense local id space so every shard runs an
//!    unmodified labeler.
//!
//! Isolated objects (no candidate pair touches them) are dropped: there is
//! nothing to label for them.

use crowdjoin_core::{Pair, ScoredPair};
use crowdjoin_graph::UnionFind;
use crowdjoin_util::FxHashMap;

/// One shard of a partitioned workload: a union of connected components
/// remapped to dense local object ids `0..num_objects()`.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Shard index within the partition.
    pub index: usize,
    /// Global object ids present in this shard, ascending; the local id of
    /// `objects[i]` is `i`.
    pub objects: Vec<u32>,
    /// The shard's pairs in **local** ids, preserving the relative order of
    /// the global labeling order.
    pub pairs: Vec<ScoredPair>,
    /// Connected components of the candidate graph packed into this shard.
    pub num_components: usize,
}

impl Shard {
    /// Number of (local) objects in the shard.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Maps a local pair back to global ids.
    ///
    /// Local ids are positions into the ascending `objects` list, so the
    /// mapping preserves pair normalization.
    #[must_use]
    pub fn to_global(&self, local: Pair) -> Pair {
        Pair::new(self.objects[local.a() as usize], self.objects[local.b() as usize])
    }

    /// Maps a global pair into this shard's local id space, or `None` when
    /// either object does not belong to the shard (the inverse of
    /// [`Self::to_global`]; `objects` is ascending, so local ids are
    /// binary-search positions).
    #[must_use]
    pub fn to_local(&self, global: Pair) -> Option<Pair> {
        let a = self.objects.binary_search(&global.a()).ok()?;
        let b = self.objects.binary_search(&global.b()).ok()?;
        Some(Pair::new(a as u32, b as u32))
    }

    /// Maps a shard-local labeling result back into global object ids.
    #[must_use]
    pub fn globalize(
        &self,
        local: &crowdjoin_core::LabelingResult,
    ) -> crowdjoin_core::LabelingResult {
        let mut global = crowdjoin_core::LabelingResult::new();
        for lp in local.labeled_pairs() {
            global.record(self.to_global(lp.pair), lp.label, lp.provenance);
        }
        for _ in 0..local.num_conflicts() {
            global.record_conflict();
        }
        global
    }
}

/// A complete partition of a labeling workload.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The shards, ascending by index. Never empty unless the workload has
    /// no pairs.
    pub shards: Vec<Shard>,
    /// Connected components found in the candidate graph.
    pub num_components: usize,
}

impl Partition {
    /// Total pairs across all shards.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.shards.iter().map(|s| s.pairs.len()).sum()
    }
}

/// Partitions `order` (a globally sorted labeling order over a universe of
/// `num_objects`) into at most `max_shards` balanced shards.
///
/// `max_shards == 1` degenerates to a single shard containing every
/// component — useful as the baseline arm of scaling comparisons.
///
/// # Panics
///
/// Panics if `max_shards == 0` or a pair references an object
/// `>= num_objects`.
#[must_use]
pub fn partition_candidates(
    num_objects: usize,
    order: &[ScoredPair],
    max_shards: usize,
) -> Partition {
    assert!(max_shards > 0, "max_shards must be at least 1");
    if order.is_empty() {
        return Partition { shards: Vec::new(), num_components: 0 };
    }

    // 1. Connected components over the objects that appear in pairs.
    let mut uf = UnionFind::new(num_objects);
    for sp in order {
        assert!(
            (sp.pair.b() as usize) < num_objects,
            "pair {} references object outside universe of {num_objects}",
            sp.pair
        );
        uf.union(sp.pair.a(), sp.pair.b());
    }
    let comp_of = uf.component_ids();

    // Pair count per component (components holding no pairs are isolated
    // objects; they get weight 0 and are dropped below).
    let num_raw_components = uf.num_components();
    let mut weight = vec![0usize; num_raw_components];
    for sp in order {
        weight[comp_of[sp.pair.a() as usize] as usize] += 1;
    }
    let live: Vec<u32> =
        (0..num_raw_components as u32).filter(|&c| weight[c as usize] > 0).collect();

    // 2. LPT bin-packing of live components into shards. Deterministic:
    // components sort by (weight desc, id asc); ties on shard load break by
    // shard index.
    let num_shards = max_shards.min(live.len());
    let mut by_weight = live.clone();
    by_weight.sort_by_key(|&c| (std::cmp::Reverse(weight[c as usize]), c));
    let mut shard_load = vec![0usize; num_shards];
    let mut shard_of_comp = vec![usize::MAX; num_raw_components];
    for &c in &by_weight {
        let lightest = (0..num_shards).min_by_key(|&s| (shard_load[s], s)).unwrap();
        shard_of_comp[c as usize] = lightest;
        shard_load[lightest] += weight[c as usize];
    }

    // 3. Materialize shards with dense local ids.
    let mut objects: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for o in 0..num_objects as u32 {
        let c = comp_of[o as usize] as usize;
        if weight[c] > 0 {
            objects[shard_of_comp[c]].push(o); // ascending: o iterates in order
        }
    }
    let mut local_of: FxHashMap<u32, u32> = FxHashMap::default();
    let mut components_in_shard = vec![crowdjoin_util::FxHashSet::default(); num_shards];
    for objs in &objects {
        for (local, &global) in objs.iter().enumerate() {
            local_of.insert(global, local as u32);
        }
    }
    let mut pairs: Vec<Vec<ScoredPair>> = vec![Vec::new(); num_shards];
    for sp in order {
        let c = comp_of[sp.pair.a() as usize];
        let s = shard_of_comp[c as usize];
        components_in_shard[s].insert(c);
        let local = Pair::new(local_of[&sp.pair.a()], local_of[&sp.pair.b()]);
        pairs[s].push(ScoredPair::new(local, sp.likelihood));
    }

    let shards = objects
        .into_iter()
        .zip(pairs)
        .zip(components_in_shard)
        .enumerate()
        .map(|(index, ((objects, pairs), comps))| Shard {
            index,
            objects,
            pairs,
            num_components: comps.len(),
        })
        .collect();
    Partition { shards, num_components: live.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(a: u32, b: u32, l: f64) -> ScoredPair {
        ScoredPair::new(Pair::new(a, b), l)
    }

    #[test]
    fn empty_workload_has_no_shards() {
        let p = partition_candidates(10, &[], 4);
        assert!(p.shards.is_empty());
        assert_eq!(p.num_components, 0);
    }

    #[test]
    fn single_component_cannot_split() {
        let order = vec![sp(0, 1, 0.9), sp(1, 2, 0.8), sp(2, 3, 0.7)];
        let p = partition_candidates(4, &order, 8);
        assert_eq!(p.num_components, 1);
        assert_eq!(p.shards.len(), 1);
        assert_eq!(p.shards[0].pairs.len(), 3);
        assert_eq!(p.shards[0].objects, vec![0, 1, 2, 3]);
    }

    #[test]
    fn disjoint_components_split_and_balance() {
        // Components: {0,1,2} (2 pairs), {3,4} (1 pair), {5,6} (1 pair).
        let order = vec![sp(0, 1, 0.9), sp(1, 2, 0.8), sp(3, 4, 0.7), sp(5, 6, 0.6)];
        let p = partition_candidates(7, &order, 2);
        assert_eq!(p.num_components, 3);
        assert_eq!(p.shards.len(), 2);
        let loads: Vec<usize> = p.shards.iter().map(|s| s.pairs.len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 4);
        assert_eq!(*loads.iter().max().unwrap(), 2, "LPT balances 2/1/1 into 2+2");
    }

    #[test]
    fn local_ids_round_trip() {
        let order = vec![sp(2, 7, 0.9), sp(7, 4, 0.8), sp(1, 9, 0.7)];
        let p = partition_candidates(10, &order, 2);
        let mut seen = Vec::new();
        for shard in &p.shards {
            for lp in &shard.pairs {
                seen.push(shard.to_global(lp.pair));
            }
        }
        seen.sort();
        let mut expect: Vec<Pair> = order.iter().map(|sp| sp.pair).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn isolated_objects_are_dropped() {
        let order = vec![sp(3, 4, 0.5)];
        let p = partition_candidates(100, &order, 4);
        assert_eq!(p.shards.len(), 1);
        assert_eq!(p.shards[0].objects, vec![3, 4]);
    }

    #[test]
    fn relative_order_is_preserved_per_shard() {
        let order = [sp(0, 1, 0.1), sp(2, 3, 0.9), sp(1, 0, 0.0)];
        // Duplicate pair would panic in CandidateSet; keep distinct pairs and
        // check order: shard pairs appear in the same relative sequence.
        let order = vec![order[0], order[1], sp(0, 2, 0.5)];
        // (0,2) bridges both — now one component; single shard keeps order.
        let p = partition_candidates(4, &order, 4);
        assert_eq!(p.shards.len(), 1);
        let likes: Vec<f64> = p.shards[0].pairs.iter().map(|s| s.likelihood).collect();
        assert_eq!(likes, vec![0.1, 0.9, 0.5]);
    }

    #[test]
    fn determinism() {
        let order: Vec<ScoredPair> =
            (0..50).map(|i| sp(i * 2, i * 2 + 1, 0.5 + (i as f64) * 0.001)).collect();
        let a = partition_candidates(100, &order, 8);
        let b = partition_candidates(100, &order, 8);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.objects, y.objects);
            assert_eq!(x.pairs.len(), y.pairs.len());
        }
    }
}
