//! Thread-safe answer sources for the execution engine.
//!
//! Shards run on worker threads and issue their crowd questions in batches;
//! [`SharedOracle`] is the `&self`-based, `Sync` front-end they share. Two
//! implementations cover the common cases:
//!
//! * [`GroundTruth`] answers directly (it is immutable data, so every shard
//!   can query it without coordination);
//! * [`SyncOracle`] adapts any single-threaded [`Oracle`] behind a mutex,
//!   taking the lock once per *batch* rather than once per question.

use crowdjoin_core::{GroundTruth, Label, Oracle, Pair};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe source of crowd answers, queried in batches.
pub trait SharedOracle: Sync {
    /// Answers one batch of questions, one label per pair, in order.
    fn answer_batch(&self, pairs: &[Pair]) -> Vec<Label>;

    /// Questions answered so far (across all threads).
    fn questions_asked(&self) -> u64;
}

/// Counting wrapper so [`GroundTruth`] can serve as a shared oracle.
#[derive(Debug)]
pub struct SharedGroundTruth<'a> {
    truth: &'a GroundTruth,
    asked: AtomicU64,
}

impl<'a> SharedGroundTruth<'a> {
    /// Wraps a ground truth as a lock-free shared answer source.
    #[must_use]
    pub fn new(truth: &'a GroundTruth) -> Self {
        Self { truth, asked: AtomicU64::new(0) }
    }
}

impl SharedOracle for SharedGroundTruth<'_> {
    fn answer_batch(&self, pairs: &[Pair]) -> Vec<Label> {
        self.asked.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        pairs.iter().map(|&p| self.truth.label_of(p)).collect()
    }

    fn questions_asked(&self) -> u64 {
        self.asked.load(Ordering::Relaxed)
    }
}

/// Mutex adapter turning any [`Oracle`] into a [`SharedOracle`].
///
/// The lock is taken once per batch — the engine's batched question issue
/// keeps contention proportional to publish rounds, not questions.
#[derive(Debug)]
pub struct SyncOracle<O: Oracle + Send> {
    inner: Mutex<O>,
}

impl<O: Oracle + Send> SyncOracle<O> {
    /// Wraps a single-threaded oracle.
    #[must_use]
    pub fn new(oracle: O) -> Self {
        Self { inner: Mutex::new(oracle) }
    }

    /// Unwraps the inner oracle (e.g. to read its final statistics).
    #[must_use]
    pub fn into_inner(self) -> O {
        self.inner.into_inner().expect("oracle mutex poisoned")
    }
}

impl<O: Oracle + Send> SharedOracle for SyncOracle<O> {
    fn answer_batch(&self, pairs: &[Pair]) -> Vec<Label> {
        let mut oracle = self.inner.lock().expect("oracle mutex poisoned");
        pairs.iter().map(|&p| oracle.answer(p)).collect()
    }

    fn questions_asked(&self) -> u64 {
        self.inner.lock().expect("oracle mutex poisoned").questions_asked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::GroundTruthOracle;

    #[test]
    fn shared_ground_truth_counts() {
        let truth = GroundTruth::from_clusters(4, &[vec![0, 1]]);
        let o = SharedGroundTruth::new(&truth);
        let answers = o.answer_batch(&[Pair::new(0, 1), Pair::new(0, 2)]);
        assert_eq!(answers, vec![Label::Matching, Label::NonMatching]);
        assert_eq!(o.questions_asked(), 2);
    }

    #[test]
    fn sync_oracle_adapts_and_counts() {
        let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
        let o = SyncOracle::new(GroundTruthOracle::new(&truth));
        assert_eq!(o.answer_batch(&[Pair::new(0, 2)]), vec![Label::Matching]);
        assert_eq!(o.questions_asked(), 1);
        assert_eq!(o.into_inner().questions_asked(), 1);
    }
}
