//! The engine's per-shard labeling state machine.
//!
//! Semantically equivalent to `crowdjoin_core::ParallelLabeler` (Algorithms
//! 2/3 with the instant-decision refinement) but with the post-answer
//! deduction sweep replaced by the [`IncrementalClosure`] delta: submitting
//! an answer costs O(affected pairs), not O(pending pairs). Batch selection
//! (Algorithm 3) is unchanged — it is inherently a scan because the
//! *supposed-matching* graph must be rebuilt under each round's knowledge.
//!
//! The equivalence (same labels, same crowdsourced set for consistent
//! answers) is pinned by the `engine_equivalence` integration tests.
//!
//! Besides the live path ([`ShardLabeler::next_batch`] /
//! [`ShardLabeler::submit_answer`]), the labeler exposes the **replay
//! primitive** [`ShardLabeler::seed_known`]: feed an already-paid-for
//! crowd answer without publishing, propagating its deduction delta
//! exactly as a live answer would. Replaying a shard's crowdsourced
//! answers in labeling order re-derives its deduced labels too, which is
//! what both dynamic re-sharding (rebuilding merged shards at a barrier)
//! and journal recovery (rebuilding labeler state from
//! `crowdjoin-wal` answer records) are built on.

use crate::closure::IncrementalClosure;
use crowdjoin_core::{Label, LabelingResult, Pair, Provenance, ScoredPair};
use crowdjoin_graph::ClusterGraph;
use crowdjoin_util::FxHashMap;

/// Per-pair lifecycle (mirrors the core labeler's states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairState {
    Unlabeled,
    Published,
    Labeled,
}

/// Event-driven labeler over one shard's (local-id) labeling order.
#[derive(Debug, Clone)]
pub struct ShardLabeler {
    num_objects: usize,
    order: Vec<ScoredPair>,
    index_of: FxHashMap<Pair, usize>,
    state: Vec<PairState>,
    closure: IncrementalClosure,
    result: LabelingResult,
    outstanding: usize,
    scan_conflicts: usize,
}

impl ShardLabeler {
    /// Creates a labeler for `order` over a universe of `num_objects`.
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` or appears
    /// twice in `order`.
    #[must_use]
    pub fn new(num_objects: usize, order: Vec<ScoredPair>) -> Self {
        let mut index_of = FxHashMap::default();
        for (i, sp) in order.iter().enumerate() {
            assert!(
                (sp.pair.b() as usize) < num_objects,
                "pair {} references object outside universe of {num_objects}",
                sp.pair
            );
            assert!(index_of.insert(sp.pair, i).is_none(), "duplicate pair {} in order", sp.pair);
        }
        let n = order.len();
        let mut closure = IncrementalClosure::new(num_objects);
        for (i, sp) in order.iter().enumerate() {
            // The graph is empty at construction: nothing is deducible yet,
            // so every pair indexes as pending.
            let already = closure.track(i, sp.pair);
            debug_assert!(already.is_none());
        }
        Self {
            num_objects,
            order,
            index_of,
            state: vec![PairState::Unlabeled; n],
            closure,
            result: LabelingResult::new(),
            outstanding: 0,
            scan_conflicts: 0,
        }
    }

    /// `true` once every pair has a label.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.result.num_labeled() == self.order.len()
    }

    /// Number of published pairs whose answers are still outstanding.
    #[must_use]
    pub fn num_outstanding(&self) -> usize {
        self.outstanding
    }

    /// Diagnostic: real labels that conflicted with the assumed-matching
    /// scan graph (stays 0 for consistent answer sources).
    #[must_use]
    pub fn num_scan_conflicts(&self) -> usize {
        self.scan_conflicts
    }

    /// Algorithm 3 with instant decision: the pairs that must be
    /// crowdsourced under current knowledge, excluding those already
    /// published. Marks returned pairs published.
    pub fn next_batch(&mut self) -> Vec<ScoredPair> {
        let mut scan = ClusterGraph::new(self.num_objects);
        let mut batch = Vec::new();
        for i in 0..self.order.len() {
            let sp = self.order[i];
            let (a, b) = (sp.pair.a(), sp.pair.b());
            match self.state[i] {
                PairState::Labeled => {
                    let label =
                        self.result.label_of(sp.pair).expect("labeled pair must be in result");
                    if scan.insert(a, b, label).is_err() {
                        self.scan_conflicts += 1;
                    }
                }
                PairState::Published | PairState::Unlabeled => {
                    if scan.deduce(a, b).is_none() {
                        if self.state[i] == PairState::Unlabeled {
                            self.state[i] = PairState::Published;
                            self.outstanding += 1;
                            batch.push(sp);
                        }
                        scan.insert(a, b, Label::Matching)
                            .expect("insert after failed deduction cannot conflict");
                    }
                }
            }
        }
        batch
    }

    /// Feeds one crowd answer, then labels exactly the pairs the answer made
    /// deducible (the incremental-closure delta).
    ///
    /// # Panics
    ///
    /// Panics if `pair` was not published or was already answered.
    pub fn submit_answer(&mut self, pair: Pair, answer: Label) {
        let &i = self
            .index_of
            .get(&pair)
            .unwrap_or_else(|| panic!("pair {pair} is not part of this labeling task"));
        assert_eq!(
            self.state[i],
            PairState::Published,
            "answer submitted for pair {pair} that is not awaiting one"
        );
        self.state[i] = PairState::Labeled;
        self.outstanding -= 1;

        let mut delta = Vec::new();
        let label = match self.closure.insert(pair, answer, &mut delta) {
            Ok(_) => answer,
            Err(conflict) => {
                self.result.record_conflict();
                conflict.deduced
            }
        };
        self.result.record(pair, label, Provenance::Crowdsourced);

        for (j, deduced_label) in delta {
            match self.state[j] {
                PairState::Unlabeled => {
                    self.state[j] = PairState::Labeled;
                    self.result.record(self.order[j].pair, deduced_label, Provenance::Deduced);
                }
                // The answered pair itself appears in its own delta (it was
                // tracked); it is already recorded as crowdsourced. A
                // published pair that became deducible stays awaiting its
                // answer — it was already paid for, and the paper counts it
                // as crowdsourced.
                PairState::Published | PairState::Labeled => {}
            }
        }
    }

    /// Seeds an already-known crowd answer without publishing — the replay
    /// primitive dynamic re-sharding uses to reconstruct a merged shard's
    /// deduction state from its predecessors' crowdsourced answers.
    ///
    /// The pair is recorded as crowdsourced (it was paid for in a previous
    /// incarnation) and its deduction delta propagates exactly as a live
    /// answer would, so replaying a shard's crowdsourced answers in labeling
    /// order re-derives its deduced labels too. A pair that an earlier seed
    /// already made deducible is skipped: the closure has its label, and the
    /// money spent on the redundant answer stays accounted to the retired
    /// platform. A replayed conflict is **not** re-counted (the incarnation
    /// that first saw it already did); the deduced label wins as usual.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is not part of this labeling task or is awaiting a
    /// live answer.
    pub fn seed_known(&mut self, pair: Pair, answer: Label) {
        let &i = self
            .index_of
            .get(&pair)
            .unwrap_or_else(|| panic!("pair {pair} is not part of this labeling task"));
        match self.state[i] {
            PairState::Labeled => return,
            PairState::Published => {
                panic!("pair {pair} is awaiting a live answer and cannot be seeded")
            }
            PairState::Unlabeled => {}
        }
        self.state[i] = PairState::Labeled;

        let mut delta = Vec::new();
        let label = match self.closure.insert(pair, answer, &mut delta) {
            Ok(_) => answer,
            Err(conflict) => conflict.deduced,
        };
        self.result.record(pair, label, Provenance::Crowdsourced);
        for (j, deduced_label) in delta {
            if self.state[j] == PairState::Unlabeled {
                self.state[j] = PairState::Labeled;
                self.result.record(self.order[j].pair, deduced_label, Provenance::Deduced);
            }
        }
    }

    /// The labeling order this labeler runs over (local ids).
    #[must_use]
    pub fn order(&self) -> &[ScoredPair] {
        &self.order
    }

    /// Pairs with no label yet that are not awaiting a crowd answer — the
    /// still-open work dynamic re-sharding repartitions.
    #[must_use]
    pub fn unlabeled_pairs(&self) -> Vec<ScoredPair> {
        self.order
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.state[i] == PairState::Unlabeled)
            .map(|(_, sp)| *sp)
            .collect()
    }

    /// Consumes the labeler and returns the labeling result.
    ///
    /// # Panics
    ///
    /// Panics if labeling is not complete.
    #[must_use]
    pub fn into_result(self) -> LabelingResult {
        assert!(self.is_complete(), "labeling is not complete");
        self.result
    }

    /// Read access to the (partial) result while labeling is in progress.
    #[must_use]
    pub fn result(&self) -> &LabelingResult {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{
        run_parallel_rounds, sort_pairs, CandidateSet, GroundTruth, GroundTruthOracle, Oracle,
        ParallelLabeler, SortStrategy,
    };

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    /// Round-based driver for tests.
    fn run_rounds(
        num_objects: usize,
        order: Vec<ScoredPair>,
        oracle: &mut dyn Oracle,
    ) -> (LabelingResult, Vec<usize>) {
        let mut labeler = ShardLabeler::new(num_objects, order);
        let mut batch_sizes = Vec::new();
        while !labeler.is_complete() {
            let batch = labeler.next_batch();
            assert!(!batch.is_empty(), "stuck: incomplete but nothing to publish");
            batch_sizes.push(batch.len());
            for sp in batch {
                let answer = oracle.answer(sp.pair);
                labeler.submit_answer(sp.pair, answer);
            }
        }
        (labeler.into_result(), batch_sizes)
    }

    #[test]
    fn example5_matches_core_labeler() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

        let mut o1 = GroundTruthOracle::new(&truth);
        let (core_result, core_stats) =
            run_parallel_rounds(cs.num_objects(), order.clone(), &mut o1);

        let mut o2 = GroundTruthOracle::new(&truth);
        let (result, batches) = run_rounds(cs.num_objects(), order, &mut o2);

        assert_eq!(batches, core_stats.batch_sizes);
        assert_eq!(result.num_crowdsourced(), core_result.num_crowdsourced());
        assert_eq!(result.num_deduced(), core_result.num_deduced());
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), core_result.label_of(sp.pair));
            assert_eq!(result.provenance_of(sp.pair), core_result.provenance_of(sp.pair));
        }
    }

    #[test]
    fn first_batch_identical_to_core() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut core = ParallelLabeler::new(cs.num_objects(), order.clone());
        let mut ours = ShardLabeler::new(cs.num_objects(), order);
        let a: Vec<Pair> = core.next_batch().iter().map(|sp| sp.pair).collect();
        let b: Vec<Pair> = ours.next_batch().iter().map(|sp| sp.pair).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_equivalence_with_core() {
        let mut rng = crowdjoin_util::SplitMix64::new(77);
        for _ in 0..100 {
            let n = 4 + (rng.next_u64() % 12) as usize;
            let k = 1 + (rng.next_u64() % 4) as u32;
            let entities: Vec<u32> = (0..n as u32).map(|i| i % k).collect();
            let truth = GroundTruth::new(entities);
            let mut pairs = Vec::new();
            let mut seen = crowdjoin_util::FxHashSet::default();
            for _ in 0..n * 2 {
                let a = (rng.next_u64() % n as u64) as u32;
                let b = (rng.next_u64() % n as u64) as u32;
                if a != b {
                    let p = Pair::new(a, b);
                    if seen.insert(p) {
                        pairs.push(ScoredPair::new(p, rng.next_f64()));
                    }
                }
            }
            let cs = CandidateSet::new(n, pairs);
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

            let mut o1 = GroundTruthOracle::new(&truth);
            let (core_result, core_stats) =
                run_parallel_rounds(cs.num_objects(), order.clone(), &mut o1);
            let mut o2 = GroundTruthOracle::new(&truth);
            let (result, batches) = run_rounds(cs.num_objects(), order, &mut o2);

            assert_eq!(batches, core_stats.batch_sizes);
            assert_eq!(result.num_crowdsourced(), core_result.num_crowdsourced());
            for sp in cs.pairs() {
                assert_eq!(result.label_of(sp.pair), core_result.label_of(sp.pair));
            }
        }
    }

    #[test]
    fn empty_order_completes_immediately() {
        let labeler = ShardLabeler::new(4, vec![]);
        assert!(labeler.is_complete());
        assert_eq!(labeler.into_result().num_labeled(), 0);
    }

    #[test]
    fn seeding_crowdsourced_answers_rederives_deductions() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let (live, _) = run_rounds(cs.num_objects(), order.clone(), &mut oracle);

        // Replay only the crowdsourced answers, in labeling order, into a
        // fresh labeler: every deduced label must re-derive.
        let mut replayed = ShardLabeler::new(cs.num_objects(), order.clone());
        for sp in &order {
            if live.provenance_of(sp.pair) == Some(Provenance::Crowdsourced) {
                replayed.seed_known(sp.pair, live.label_of(sp.pair).unwrap());
            }
        }
        assert!(replayed.is_complete());
        assert!(replayed.unlabeled_pairs().is_empty());
        let result = replayed.into_result();
        assert_eq!(result.num_labeled(), live.num_labeled());
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), live.label_of(sp.pair));
        }
    }

    #[test]
    fn seeding_partial_state_resumes_cleanly() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

        // Answer only the first published round, then rebuild and finish.
        let mut first = ShardLabeler::new(cs.num_objects(), order.clone());
        let round1 = first.next_batch();
        for sp in &round1 {
            first.submit_answer(sp.pair, truth.label_of(sp.pair));
        }
        let known: Vec<(Pair, Label)> = order
            .iter()
            .filter(|sp| first.result().provenance_of(sp.pair) == Some(Provenance::Crowdsourced))
            .map(|sp| (sp.pair, first.result().label_of(sp.pair).unwrap()))
            .collect();
        let unlabeled = first.unlabeled_pairs().len();

        let mut resumed = ShardLabeler::new(cs.num_objects(), order.clone());
        for &(pair, label) in &known {
            resumed.seed_known(pair, label);
        }
        assert_eq!(resumed.unlabeled_pairs().len(), unlabeled);
        let mut oracle = GroundTruthOracle::new(&truth);
        while !resumed.is_complete() {
            let batch = resumed.next_batch();
            assert!(!batch.is_empty());
            for sp in batch {
                resumed.submit_answer(sp.pair, oracle.answer(sp.pair));
            }
        }
        let result = resumed.into_result();
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    #[test]
    #[should_panic(expected = "not awaiting")]
    fn double_answer_rejected() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut labeler = ShardLabeler::new(cs.num_objects(), order);
        let batch = labeler.next_batch();
        let p = batch[0].pair;
        labeler.submit_answer(p, Label::Matching);
        labeler.submit_answer(p, Label::Matching);
    }
}
