//! The engine's per-shard labeling state machine.
//!
//! Semantically equivalent to `crowdjoin_core::ParallelLabeler` (Algorithms
//! 2/3 with the instant-decision refinement) but with the post-answer
//! deduction sweep replaced by the [`IncrementalClosure`] delta: submitting
//! an answer costs O(affected pairs), not O(pending pairs). Batch selection
//! (Algorithm 3) is unchanged — it is inherently a scan because the
//! *supposed-matching* graph must be rebuilt under each round's knowledge.
//!
//! The equivalence (same labels, same crowdsourced set for consistent
//! answers) is pinned by the `engine_equivalence` integration tests.
//!
//! Besides the live path ([`ShardLabeler::next_batch`] /
//! [`ShardLabeler::submit_answer`]), the labeler exposes the **replay
//! primitive** [`ShardLabeler::seed_known`]: feed an already-paid-for
//! crowd answer without publishing, propagating its deduction delta
//! exactly as a live answer would. Replaying a shard's crowdsourced
//! answers in labeling order re-derives its deduced labels too, which is
//! what both dynamic re-sharding (rebuilding merged shards at a barrier)
//! and journal recovery (rebuilding labeler state from
//! `crowdjoin-wal` answer records) are built on.

use crate::closure::IncrementalClosure;
use crate::ordering::OrderingMode;
use crowdjoin_core::{Label, LabelingResult, Pair, Provenance, ScoredPair};
use crowdjoin_graph::ClusterGraph;
use crowdjoin_util::FxHashMap;
use std::collections::BinaryHeap;

/// Per-pair lifecycle (mirrors the core labeler's states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairState {
    Unlabeled,
    Published,
    Labeled,
}

/// A lazy priority-queue entry for the online frontier ranking. Entries are
/// never removed in place: an entry is *live* only while its score equals
/// the pair's current score, so a rescore simply pushes a fresh entry and
/// the stale one is skipped on pop.
#[derive(Debug, Clone, Copy)]
struct FrontierEntry {
    score: f64,
    idx: usize,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for FrontierEntry {}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEntry {
    /// Max-heap: highest score first; ties broken toward the *earlier*
    /// position in the labeling order (so an all-zero frontier — round 0 —
    /// degenerates to exactly the likelihood-descending scan). `total_cmp`
    /// makes the order total, so pop order is independent of push order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.total_cmp(&other.score).then_with(|| other.idx.cmp(&self.idx))
    }
}

/// State of the `OnlineExpected` frontier ranking (present only when the
/// labeler was built with [`OrderingMode::Online`]).
#[derive(Debug, Clone)]
struct FrontierRanker {
    /// Current expected-deduction score per pair index (meaningful only
    /// while the pair is unlabeled).
    scores: Vec<f64>,
    /// Lazy max-heap over the unresolved frontier.
    heap: BinaryHeap<FrontierEntry>,
    /// Per-pair stamp of the last scan that considered it, guarding against
    /// duplicate identical entries (a score can oscillate back to a previous
    /// value, leaving two live entries for one pair).
    scan_stamp: Vec<u32>,
    /// Current scan number.
    stamp: u32,
}

impl FrontierRanker {
    fn new(n: usize) -> Self {
        let mut heap = BinaryHeap::with_capacity(n);
        // Every score starts at 0 (the closure graph is empty: each pending
        // key holds exactly its own pair and there is no non-matching
        // adjacency), so round 0 pops in pure index order.
        for idx in 0..n {
            heap.push(FrontierEntry { score: 0.0, idx });
        }
        Self { scores: vec![0.0; n], heap, scan_stamp: vec![0; n], stamp: 0 }
    }
}

/// Event-driven labeler over one shard's (local-id) labeling order.
#[derive(Debug, Clone)]
pub struct ShardLabeler {
    num_objects: usize,
    order: Vec<ScoredPair>,
    index_of: FxHashMap<Pair, usize>,
    state: Vec<PairState>,
    closure: IncrementalClosure,
    result: LabelingResult,
    outstanding: usize,
    scan_conflicts: usize,
    ordering: OrderingMode,
    ranker: Option<FrontierRanker>,
}

impl ShardLabeler {
    /// Creates a labeler for `order` over a universe of `num_objects`,
    /// publishing in likelihood-descending order (the paper's heuristic and
    /// the historical default — bit-identical to pre-policy builds).
    ///
    /// # Panics
    ///
    /// Panics if a pair references an object `>= num_objects` or appears
    /// twice in `order`.
    #[must_use]
    pub fn new(num_objects: usize, order: Vec<ScoredPair>) -> Self {
        Self::with_ordering(num_objects, order, OrderingMode::Likelihood)
    }

    /// Creates a labeler publishing under the given ordering policy.
    ///
    /// `order` is handed over in likelihood-descending order regardless of
    /// mode; the policy's static preparation (e.g. the exact per-component
    /// permutation) is applied here, and [`OrderingMode::Online`] installs
    /// the frontier ranker consulted by [`Self::next_batch`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::new`].
    #[must_use]
    pub fn with_ordering(num_objects: usize, order: Vec<ScoredPair>, mode: OrderingMode) -> Self {
        let policy = mode.policy();
        let order = policy.prepare(num_objects, order);
        let ranker = policy.online().then(|| FrontierRanker::new(order.len()));
        let mut index_of = FxHashMap::default();
        for (i, sp) in order.iter().enumerate() {
            assert!(
                (sp.pair.b() as usize) < num_objects,
                "pair {} references object outside universe of {num_objects}",
                sp.pair
            );
            assert!(index_of.insert(sp.pair, i).is_none(), "duplicate pair {} in order", sp.pair);
        }
        let n = order.len();
        let mut closure = IncrementalClosure::new(num_objects);
        for (i, sp) in order.iter().enumerate() {
            // The graph is empty at construction: nothing is deducible yet,
            // so every pair indexes as pending.
            let already = closure.track(i, sp.pair);
            debug_assert!(already.is_none());
        }
        Self {
            num_objects,
            order,
            index_of,
            state: vec![PairState::Unlabeled; n],
            closure,
            result: LabelingResult::new(),
            outstanding: 0,
            scan_conflicts: 0,
            ordering: mode,
            ranker,
        }
    }

    /// The ordering policy this labeler publishes under.
    #[must_use]
    pub fn ordering(&self) -> OrderingMode {
        self.ordering
    }

    /// `true` once every pair has a label.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.result.num_labeled() == self.order.len()
    }

    /// Number of published pairs whose answers are still outstanding.
    #[must_use]
    pub fn num_outstanding(&self) -> usize {
        self.outstanding
    }

    /// Diagnostic: real labels that conflicted with the assumed-matching
    /// scan graph (stays 0 for consistent answer sources).
    #[must_use]
    pub fn num_scan_conflicts(&self) -> usize {
        self.scan_conflicts
    }

    /// Algorithm 3 with instant decision: the pairs that must be
    /// crowdsourced under current knowledge, excluding those already
    /// published. Marks returned pairs published.
    ///
    /// Under [`OrderingMode::Online`] the unresolved frontier is visited in
    /// expected-deduction order (see `next_batch_ranked`) instead of
    /// index order; the publish-or-hold rule per pair is identical.
    pub fn next_batch(&mut self) -> Vec<ScoredPair> {
        if self.ranker.is_some() {
            self.next_batch_ranked()
        } else {
            self.next_batch_scan()
        }
    }

    /// The historical single-pass scan (likelihood / exact modes): pairs in
    /// index order; real labels build the scan graph, everything else is
    /// supposed matching and publishes unless deducible.
    fn next_batch_scan(&mut self) -> Vec<ScoredPair> {
        let mut scan = ClusterGraph::new(self.num_objects);
        let mut batch = Vec::new();
        for i in 0..self.order.len() {
            let sp = self.order[i];
            let (a, b) = (sp.pair.a(), sp.pair.b());
            match self.state[i] {
                PairState::Labeled => {
                    let label =
                        self.result.label_of(sp.pair).expect("labeled pair must be in result");
                    if scan.insert(a, b, label).is_err() {
                        self.scan_conflicts += 1;
                    }
                }
                PairState::Published | PairState::Unlabeled => {
                    if scan.deduce(a, b).is_none() {
                        if self.state[i] == PairState::Unlabeled {
                            self.state[i] = PairState::Published;
                            self.outstanding += 1;
                            batch.push(sp);
                        }
                        scan.insert(a, b, Label::Matching)
                            .expect("insert after failed deduction cannot conflict");
                    }
                }
            }
        }
        batch
    }

    /// `OnlineExpected`'s scan: labeled pairs (index order) build the scan
    /// graph, outstanding published pairs (index order) are supposed
    /// matching, then the unresolved frontier is drained from the lazy
    /// priority queue — highest expected-deduction score first, index order
    /// on ties — with the same publish-or-hold rule as the index scan.
    /// Held pairs re-enter the queue for the next scan; pairs whose entries
    /// went stale (rescored or resolved since push) are skipped in O(1).
    fn next_batch_ranked(&mut self) -> Vec<ScoredPair> {
        let mut scan = ClusterGraph::new(self.num_objects);
        for i in 0..self.order.len() {
            let sp = self.order[i];
            let (a, b) = (sp.pair.a(), sp.pair.b());
            match self.state[i] {
                PairState::Labeled => {
                    let label =
                        self.result.label_of(sp.pair).expect("labeled pair must be in result");
                    if scan.insert(a, b, label).is_err() {
                        self.scan_conflicts += 1;
                    }
                }
                PairState::Published => {
                    if scan.deduce(a, b).is_none() {
                        scan.insert(a, b, Label::Matching)
                            .expect("insert after failed deduction cannot conflict");
                    }
                }
                PairState::Unlabeled => {}
            }
        }
        let ranker = self.ranker.as_mut().expect("ranked scan requires the online ranker");
        ranker.stamp += 1;
        let mut batch = Vec::new();
        let mut held = Vec::new();
        while let Some(entry) = ranker.heap.pop() {
            let i = entry.idx;
            if self.state[i] != PairState::Unlabeled
                || entry.score != ranker.scores[i]
                || ranker.scan_stamp[i] == ranker.stamp
            {
                continue; // resolved, stale, or duplicate entry
            }
            ranker.scan_stamp[i] = ranker.stamp;
            let sp = self.order[i];
            let (a, b) = (sp.pair.a(), sp.pair.b());
            if scan.deduce(a, b).is_none() {
                self.state[i] = PairState::Published;
                self.outstanding += 1;
                batch.push(sp);
                scan.insert(a, b, Label::Matching)
                    .expect("insert after failed deduction cannot conflict");
            } else {
                held.push(entry);
            }
        }
        // Still-open pairs that were held this scan stay in the queue.
        for entry in held {
            ranker.heap.push(entry);
        }
        batch
    }

    /// Expected deductions triggered by resolving pair `i` now, computed
    /// component-locally from the closure's pending index: with endpoint
    /// cluster slots `X`, `Y`,
    ///
    /// ```text
    /// direct   = pend(X, Y) − 1                    (co-keyed open pairs)
    /// transfer = Σ_{Z ∈ nm-adj(X)} pend(Y, Z)
    ///          + Σ_{Z ∈ nm-adj(Y)} pend(X, Z)      (one-hop negative rules)
    /// score    = direct + ℓᵢ · transfer
    /// ```
    ///
    /// A matching answer merges `X`/`Y` (resolving all `direct` pairs
    /// positively and all `transfer` pairs negatively); a non-matching
    /// answer resolves the `direct` pairs negatively. Both sums are exact
    /// integer counts, so scores are reproducible across platforms.
    fn frontier_score(&self, i: usize) -> f64 {
        let sp = self.order[i];
        let graph = self.closure.graph();
        let x = graph.slot_of_readonly(sp.pair.a());
        let y = graph.slot_of_readonly(sp.pair.b());
        let direct = self.closure.pending_count_between(x, y) - 1;
        let mut transfer = 0usize;
        for z in graph.slot_neighbors(x) {
            transfer += self.closure.pending_count_between(y, z);
        }
        for z in graph.slot_neighbors(y) {
            transfer += self.closure.pending_count_between(x, z);
        }
        direct as f64 + sp.likelihood * transfer as f64
    }

    /// Rescores every open pair incident to a touched cluster slot and
    /// pushes fresh heap entries for the changed ones. O(affected pairs ·
    /// log frontier) — never rescans the pending set.
    fn refresh_scores(&mut self, touched: &[u32]) {
        if self.ranker.is_none() || touched.is_empty() {
            return;
        }
        let mut slots = touched.to_vec();
        slots.sort_unstable();
        slots.dedup();
        let mut ids: Vec<usize> = Vec::new();
        for &s in &slots {
            for t in self.closure.pending_partners(s) {
                ids.extend_from_slice(self.closure.pending_ids_between(s, t));
            }
        }
        ids.sort_unstable();
        ids.dedup();
        for i in ids {
            if self.state[i] != PairState::Unlabeled {
                continue; // published pairs never return to the frontier
            }
            let score = self.frontier_score(i);
            let ranker = self.ranker.as_mut().expect("checked above");
            if score != ranker.scores[i] {
                ranker.scores[i] = score;
                ranker.heap.push(FrontierEntry { score, idx: i });
            }
        }
    }

    /// Feeds one crowd answer, then labels exactly the pairs the answer made
    /// deducible (the incremental-closure delta).
    ///
    /// # Panics
    ///
    /// Panics if `pair` was not published or was already answered.
    pub fn submit_answer(&mut self, pair: Pair, answer: Label) {
        let &i = self
            .index_of
            .get(&pair)
            .unwrap_or_else(|| panic!("pair {pair} is not part of this labeling task"));
        assert_eq!(
            self.state[i],
            PairState::Published,
            "answer submitted for pair {pair} that is not awaiting one"
        );
        self.state[i] = PairState::Labeled;
        self.outstanding -= 1;

        let mut delta = Vec::new();
        let mut touched = Vec::new();
        let inserted = if self.ranker.is_some() {
            self.closure.insert_tracking(pair, answer, &mut delta, &mut touched)
        } else {
            self.closure.insert(pair, answer, &mut delta)
        };
        let label = match inserted {
            Ok(_) => answer,
            Err(conflict) => {
                self.result.record_conflict();
                conflict.deduced
            }
        };
        self.result.record(pair, label, Provenance::Crowdsourced);

        for (j, deduced_label) in delta {
            match self.state[j] {
                PairState::Unlabeled => {
                    self.state[j] = PairState::Labeled;
                    self.result.record(self.order[j].pair, deduced_label, Provenance::Deduced);
                }
                // The answered pair itself appears in its own delta (it was
                // tracked); it is already recorded as crowdsourced. A
                // published pair that became deducible stays awaiting its
                // answer — it was already paid for, and the paper counts it
                // as crowdsourced.
                PairState::Published | PairState::Labeled => {}
            }
        }
        // After the delta settles: rescore open pairs whose pending
        // neighborhood the insert changed.
        self.refresh_scores(&touched);
    }

    /// Seeds an already-known crowd answer without publishing — the replay
    /// primitive dynamic re-sharding uses to reconstruct a merged shard's
    /// deduction state from its predecessors' crowdsourced answers.
    ///
    /// The pair is recorded as crowdsourced (it was paid for in a previous
    /// incarnation) and its deduction delta propagates exactly as a live
    /// answer would, so replaying a shard's crowdsourced answers in labeling
    /// order re-derives its deduced labels too. A pair that an earlier seed
    /// already made deducible is skipped: the closure has its label, and the
    /// money spent on the redundant answer stays accounted to the retired
    /// platform. A replayed conflict is **not** re-counted (the incarnation
    /// that first saw it already did); the deduced label wins as usual.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is not part of this labeling task or is awaiting a
    /// live answer.
    pub fn seed_known(&mut self, pair: Pair, answer: Label) {
        let &i = self
            .index_of
            .get(&pair)
            .unwrap_or_else(|| panic!("pair {pair} is not part of this labeling task"));
        match self.state[i] {
            PairState::Labeled => return,
            PairState::Published => {
                panic!("pair {pair} is awaiting a live answer and cannot be seeded")
            }
            PairState::Unlabeled => {}
        }
        self.state[i] = PairState::Labeled;

        let mut delta = Vec::new();
        let mut touched = Vec::new();
        let inserted = if self.ranker.is_some() {
            self.closure.insert_tracking(pair, answer, &mut delta, &mut touched)
        } else {
            self.closure.insert(pair, answer, &mut delta)
        };
        let label = match inserted {
            Ok(_) => answer,
            Err(conflict) => conflict.deduced,
        };
        self.result.record(pair, label, Provenance::Crowdsourced);
        for (j, deduced_label) in delta {
            if self.state[j] == PairState::Unlabeled {
                self.state[j] = PairState::Labeled;
                self.result.record(self.order[j].pair, deduced_label, Provenance::Deduced);
            }
        }
        self.refresh_scores(&touched);
    }

    /// The labeling order this labeler runs over (local ids).
    #[must_use]
    pub fn order(&self) -> &[ScoredPair] {
        &self.order
    }

    /// Pairs with no label yet that are not awaiting a crowd answer — the
    /// still-open work dynamic re-sharding repartitions.
    #[must_use]
    pub fn unlabeled_pairs(&self) -> Vec<ScoredPair> {
        self.order
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.state[i] == PairState::Unlabeled)
            .map(|(_, sp)| *sp)
            .collect()
    }

    /// Consumes the labeler and returns the labeling result.
    ///
    /// # Panics
    ///
    /// Panics if labeling is not complete.
    #[must_use]
    pub fn into_result(self) -> LabelingResult {
        assert!(self.is_complete(), "labeling is not complete");
        self.result
    }

    /// Read access to the (partial) result while labeling is in progress.
    #[must_use]
    pub fn result(&self) -> &LabelingResult {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{
        run_parallel_rounds, sort_pairs, CandidateSet, GroundTruth, GroundTruthOracle, Oracle,
        ParallelLabeler, SortStrategy,
    };

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    /// Round-based driver for tests.
    fn run_rounds(
        num_objects: usize,
        order: Vec<ScoredPair>,
        oracle: &mut dyn Oracle,
    ) -> (LabelingResult, Vec<usize>) {
        let mut labeler = ShardLabeler::new(num_objects, order);
        let mut batch_sizes = Vec::new();
        while !labeler.is_complete() {
            let batch = labeler.next_batch();
            assert!(!batch.is_empty(), "stuck: incomplete but nothing to publish");
            batch_sizes.push(batch.len());
            for sp in batch {
                let answer = oracle.answer(sp.pair);
                labeler.submit_answer(sp.pair, answer);
            }
        }
        (labeler.into_result(), batch_sizes)
    }

    #[test]
    fn example5_matches_core_labeler() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

        let mut o1 = GroundTruthOracle::new(&truth);
        let (core_result, core_stats) =
            run_parallel_rounds(cs.num_objects(), order.clone(), &mut o1);

        let mut o2 = GroundTruthOracle::new(&truth);
        let (result, batches) = run_rounds(cs.num_objects(), order, &mut o2);

        assert_eq!(batches, core_stats.batch_sizes);
        assert_eq!(result.num_crowdsourced(), core_result.num_crowdsourced());
        assert_eq!(result.num_deduced(), core_result.num_deduced());
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), core_result.label_of(sp.pair));
            assert_eq!(result.provenance_of(sp.pair), core_result.provenance_of(sp.pair));
        }
    }

    #[test]
    fn first_batch_identical_to_core() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut core = ParallelLabeler::new(cs.num_objects(), order.clone());
        let mut ours = ShardLabeler::new(cs.num_objects(), order);
        let a: Vec<Pair> = core.next_batch().iter().map(|sp| sp.pair).collect();
        let b: Vec<Pair> = ours.next_batch().iter().map(|sp| sp.pair).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_equivalence_with_core() {
        let mut rng = crowdjoin_util::SplitMix64::new(77);
        for _ in 0..100 {
            let n = 4 + (rng.next_u64() % 12) as usize;
            let k = 1 + (rng.next_u64() % 4) as u32;
            let entities: Vec<u32> = (0..n as u32).map(|i| i % k).collect();
            let truth = GroundTruth::new(entities);
            let mut pairs = Vec::new();
            let mut seen = crowdjoin_util::FxHashSet::default();
            for _ in 0..n * 2 {
                let a = (rng.next_u64() % n as u64) as u32;
                let b = (rng.next_u64() % n as u64) as u32;
                if a != b {
                    let p = Pair::new(a, b);
                    if seen.insert(p) {
                        pairs.push(ScoredPair::new(p, rng.next_f64()));
                    }
                }
            }
            let cs = CandidateSet::new(n, pairs);
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

            let mut o1 = GroundTruthOracle::new(&truth);
            let (core_result, core_stats) =
                run_parallel_rounds(cs.num_objects(), order.clone(), &mut o1);
            let mut o2 = GroundTruthOracle::new(&truth);
            let (result, batches) = run_rounds(cs.num_objects(), order, &mut o2);

            assert_eq!(batches, core_stats.batch_sizes);
            assert_eq!(result.num_crowdsourced(), core_result.num_crowdsourced());
            for sp in cs.pairs() {
                assert_eq!(result.label_of(sp.pair), core_result.label_of(sp.pair));
            }
        }
    }

    #[test]
    fn empty_order_completes_immediately() {
        let labeler = ShardLabeler::new(4, vec![]);
        assert!(labeler.is_complete());
        assert_eq!(labeler.into_result().num_labeled(), 0);
    }

    #[test]
    fn seeding_crowdsourced_answers_rederives_deductions() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&truth);
        let (live, _) = run_rounds(cs.num_objects(), order.clone(), &mut oracle);

        // Replay only the crowdsourced answers, in labeling order, into a
        // fresh labeler: every deduced label must re-derive.
        let mut replayed = ShardLabeler::new(cs.num_objects(), order.clone());
        for sp in &order {
            if live.provenance_of(sp.pair) == Some(Provenance::Crowdsourced) {
                replayed.seed_known(sp.pair, live.label_of(sp.pair).unwrap());
            }
        }
        assert!(replayed.is_complete());
        assert!(replayed.unlabeled_pairs().is_empty());
        let result = replayed.into_result();
        assert_eq!(result.num_labeled(), live.num_labeled());
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), live.label_of(sp.pair));
        }
    }

    #[test]
    fn seeding_partial_state_resumes_cleanly() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

        // Answer only the first published round, then rebuild and finish.
        let mut first = ShardLabeler::new(cs.num_objects(), order.clone());
        let round1 = first.next_batch();
        for sp in &round1 {
            first.submit_answer(sp.pair, truth.label_of(sp.pair));
        }
        let known: Vec<(Pair, Label)> = order
            .iter()
            .filter(|sp| first.result().provenance_of(sp.pair) == Some(Provenance::Crowdsourced))
            .map(|sp| (sp.pair, first.result().label_of(sp.pair).unwrap()))
            .collect();
        let unlabeled = first.unlabeled_pairs().len();

        let mut resumed = ShardLabeler::new(cs.num_objects(), order.clone());
        for &(pair, label) in &known {
            resumed.seed_known(pair, label);
        }
        assert_eq!(resumed.unlabeled_pairs().len(), unlabeled);
        let mut oracle = GroundTruthOracle::new(&truth);
        while !resumed.is_complete() {
            let batch = resumed.next_batch();
            assert!(!batch.is_empty());
            for sp in batch {
                resumed.submit_answer(sp.pair, oracle.answer(sp.pair));
            }
        }
        let result = resumed.into_result();
        for sp in cs.pairs() {
            assert_eq!(result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    /// For every open pair, the incrementally maintained score must equal a
    /// fresh recomputation from the closure — i.e. the touched-slot marking
    /// in `refresh_scores` missed nothing.
    fn assert_scores_fresh(labeler: &ShardLabeler) {
        let ranker = labeler.ranker.as_ref().expect("online labeler");
        for i in 0..labeler.order.len() {
            if labeler.state[i] == PairState::Unlabeled {
                let fresh = labeler.frontier_score(i);
                assert_eq!(
                    ranker.scores[i], fresh,
                    "stale score for pair {} at index {i}",
                    labeler.order[i].pair
                );
            }
        }
    }

    #[test]
    fn online_scores_stay_fresh_and_labels_match() {
        let mut rng = crowdjoin_util::SplitMix64::new(4242);
        for _ in 0..60 {
            let n = 4 + (rng.next_u64() % 12) as usize;
            let k = 1 + (rng.next_u64() % 4) as u32;
            let truth = GroundTruth::new((0..n as u32).map(|i| i % k).collect());
            let mut pairs = Vec::new();
            let mut seen = crowdjoin_util::FxHashSet::default();
            for _ in 0..n * 3 {
                let a = (rng.next_u64() % n as u64) as u32;
                let b = (rng.next_u64() % n as u64) as u32;
                if a != b {
                    let p = Pair::new(a, b);
                    if seen.insert(p) {
                        pairs.push(ScoredPair::new(p, rng.next_f64()));
                    }
                }
            }
            let cs = CandidateSet::new(n, pairs);
            let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);

            let mut online =
                ShardLabeler::with_ordering(cs.num_objects(), order.clone(), OrderingMode::Online);
            let mut oracle = GroundTruthOracle::new(&truth);
            while !online.is_complete() {
                let batch = online.next_batch();
                assert!(!batch.is_empty(), "online scan stuck");
                for sp in batch {
                    online.submit_answer(sp.pair, oracle.answer(sp.pair));
                    assert_scores_fresh(&online);
                }
            }
            let online_result = online.into_result();

            // Order never changes labels — only who pays for them.
            let mut o2 = GroundTruthOracle::new(&truth);
            let (reference, _) = run_rounds(cs.num_objects(), order, &mut o2);
            assert_eq!(online_result.num_labeled(), reference.num_labeled());
            for sp in cs.pairs() {
                assert_eq!(online_result.label_of(sp.pair), reference.label_of(sp.pair));
            }
        }
    }

    #[test]
    fn online_round0_equals_likelihood_round0() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut a = ShardLabeler::new(cs.num_objects(), order.clone());
        let mut b = ShardLabeler::with_ordering(cs.num_objects(), order, OrderingMode::Online);
        let ba: Vec<Pair> = a.next_batch().iter().map(|sp| sp.pair).collect();
        let bb: Vec<Pair> = b.next_batch().iter().map(|sp| sp.pair).collect();
        assert_eq!(ba, bb, "all-zero frontier must degenerate to the index scan");
    }

    #[test]
    fn exact_mode_seeding_rederives_like_likelihood() {
        // The replay primitive must work under every policy: run exact mode
        // live, replay its crowdsourced answers into a fresh exact labeler.
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut live =
            ShardLabeler::with_ordering(cs.num_objects(), order.clone(), OrderingMode::Exact);
        let mut oracle = GroundTruthOracle::new(&truth);
        while !live.is_complete() {
            for sp in live.next_batch() {
                live.submit_answer(sp.pair, oracle.answer(sp.pair));
            }
        }
        let live = live.into_result();
        let mut replayed =
            ShardLabeler::with_ordering(cs.num_objects(), order.clone(), OrderingMode::Exact);
        for sp in replayed.order().to_vec() {
            if live.provenance_of(sp.pair) == Some(Provenance::Crowdsourced) {
                replayed.seed_known(sp.pair, live.label_of(sp.pair).unwrap());
            }
        }
        assert!(replayed.is_complete());
        let replayed = replayed.into_result();
        for sp in cs.pairs() {
            assert_eq!(replayed.label_of(sp.pair), live.label_of(sp.pair));
            assert_eq!(replayed.provenance_of(sp.pair), live.provenance_of(sp.pair));
        }
    }

    #[test]
    #[should_panic(expected = "not awaiting")]
    fn double_answer_rejected() {
        let (cs, _) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let mut labeler = ShardLabeler::new(cs.num_objects(), order);
        let batch = labeler.next_batch();
        let p = batch[0].pair;
        labeler.submit_answer(p, Label::Matching);
        labeler.submit_answer(p, Label::Matching);
    }
}
