//! Journal glue between the engine and `crowdjoin-wal`: job fingerprints,
//! header verification, and the stats-snapshot conversion.
//!
//! The wal crate defines the on-disk format but knows nothing about
//! labelers or platforms; this module is where journal records gain their
//! engine meaning. The resume entry point lives in
//! [`crate::Engine::resume`]; the record append/verify points live in
//! [`crate::task::ShardTask`] and the event loop.

use crate::engine::EngineConfig;
use crowdjoin_core::{GroundTruth, ScoredPair};
use crowdjoin_sim::{PlatformConfig, PlatformStats};
use crowdjoin_wal::{fnv1a64, JobHeader, StatsSnapshot, WalError, FORMAT_VERSION};

/// Converts live platform counters into the journal's snapshot encoding.
pub(crate) fn snapshot_of(stats: &PlatformStats) -> StatsSnapshot {
    StatsSnapshot {
        hits_published: stats.hits_published as u64,
        pairs_published: stats.pairs_published as u64,
        pair_slots: stats.pair_slots as u64,
        assignments_completed: stats.assignments_completed as u64,
        total_cost_cents: stats.total_cost_cents,
        last_resolution: stats.last_resolution.0,
        qualified_workers: stats.qualified_workers as u64,
        assignments_abandoned: stats.assignments_abandoned as u64,
    }
}

/// Fingerprint of the global labeling order: the order decides what gets
/// crowdsourced versus deduced, so it is part of the job's identity.
fn order_hash(order: &[ScoredPair]) -> u64 {
    fnv1a64(order.iter().flat_map(|sp| {
        sp.pair
            .a()
            .to_le_bytes()
            .into_iter()
            .chain(sp.pair.b().to_le_bytes())
            .chain(sp.likelihood.to_bits().to_le_bytes())
    }))
}

/// Fingerprint of the ground-truth entity assignment the simulated workers
/// answer from.
fn truth_hash(truth: &GroundTruth) -> u64 {
    fnv1a64((0..truth.num_objects() as u32).flat_map(|o| truth.entity_of(o).to_le_bytes()))
}

/// Fingerprint of the platform configuration: every tunable (including
/// the platform seed) hashed field by field, floats by their exact bits.
/// Deliberately *not* a hash of the `Debug` rendering — that format is
/// unstable across toolchains, and a fingerprint that drifts under a
/// rebuild would refuse to resume journals of identical jobs.
fn platform_hash(cfg: &PlatformConfig) -> u64 {
    let dist = |d: &crowdjoin_sim::LogNormal| [d.median().to_bits(), d.sigma().to_bits()];
    let policy = match cfg.assignment_policy {
        crowdjoin_sim::AssignmentPolicy::Random => 0u64,
        crowdjoin_sim::AssignmentPolicy::NonMatchingFirst => 1u64,
    };
    let mut words: Vec<u64> = vec![
        cfg.batch_size as u64,
        u64::from(cfg.assignments_per_hit),
        u64::from(cfg.price_per_assignment_cents),
        cfg.num_workers as u64,
        cfg.spammer_fraction.to_bits(),
        cfg.good_accuracy.to_bits(),
        cfg.spammer_accuracy.to_bits(),
        u64::from(cfg.qualification_test),
        u64::from(cfg.qualification_questions),
        policy,
    ];
    words.extend(dist(&cfg.work_time_per_pair));
    words.extend(dist(&cfg.revisit_delay));
    words.extend(dist(&cfg.between_assignments));
    words.extend([
        cfg.abandonment_rate.to_bits(),
        cfg.abandonment_timeout_secs.to_bits(),
        cfg.seed,
    ]);
    fnv1a64(words.into_iter().flat_map(u64::to_le_bytes))
}

/// Builds the job-identity header a journaled run writes as its first
/// frame. `num_shards` is the *effective* target shard count (after the
/// `0 = one per CPU` default is resolved), so a journal resumes to the
/// same partition on any machine.
pub(crate) fn job_header(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    config: &EngineConfig,
    num_shards: usize,
) -> JobHeader {
    JobHeader {
        version: FORMAT_VERSION,
        num_objects: num_objects as u64,
        order_len: order.len() as u64,
        order_hash: order_hash(order),
        truth_hash: truth_hash(truth),
        platform_hash: platform_hash(platform),
        engine_seed: config.seed,
        num_shards: num_shards as u32,
        instant_decision: config.instant_decision,
        reshard: config.reshard,
        ordering: config.order.wire_byte(),
    }
}

/// Checks field-by-field that the journal belongs to the job being
/// resumed, reporting the first disagreeing field.
pub(crate) fn verify_header(journal: &JobHeader, job: &JobHeader) -> Result<(), WalError> {
    let fields: [(&'static str, u64, u64); 10] = [
        ("num_objects", journal.num_objects, job.num_objects),
        ("order_len", journal.order_len, job.order_len),
        ("order_hash", journal.order_hash, job.order_hash),
        ("truth_hash", journal.truth_hash, job.truth_hash),
        ("platform_hash (platform config/seed)", journal.platform_hash, job.platform_hash),
        ("engine_seed", journal.engine_seed, job.engine_seed),
        ("num_shards", u64::from(journal.num_shards), u64::from(job.num_shards)),
        ("instant_decision", u64::from(journal.instant_decision), u64::from(job.instant_decision)),
        ("reshard", u64::from(journal.reshard), u64::from(job.reshard)),
        (
            "ordering (question-ordering policy, --order)",
            u64::from(journal.ordering),
            u64::from(job.ordering),
        ),
    ];
    for (field, j, r) in fields {
        if j != r {
            return Err(WalError::HeaderMismatch { field, journal: j, job: r });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::Pair;

    fn sample_inputs() -> (Vec<ScoredPair>, GroundTruth, PlatformConfig) {
        let order =
            vec![ScoredPair::new(Pair::new(0, 1), 0.9), ScoredPair::new(Pair::new(1, 2), 0.8)];
        (order, GroundTruth::from_clusters(3, &[vec![0, 1]]), PlatformConfig::perfect_workers(7))
    }

    #[test]
    fn header_is_stable_and_input_sensitive() {
        let (order, truth, platform) = sample_inputs();
        let cfg = EngineConfig::default();
        let h = job_header(3, &order, &truth, &platform, &cfg, 2);
        assert_eq!(h, job_header(3, &order, &truth, &platform, &cfg, 2), "deterministic");
        verify_header(&h, &h).expect("header matches itself");

        // Any input change must be caught.
        let mut reordered = order.clone();
        reordered.swap(0, 1);
        let h2 = job_header(3, &reordered, &truth, &platform, &cfg, 2);
        assert!(verify_header(&h, &h2).is_err(), "order change detected");

        let other_truth = GroundTruth::all_distinct(3);
        let h3 = job_header(3, &order, &other_truth, &platform, &cfg, 2);
        assert!(verify_header(&h, &h3).is_err(), "truth change detected");

        let h4 = job_header(3, &order, &truth, &PlatformConfig::perfect_workers(8), &cfg, 2);
        assert!(verify_header(&h, &h4).is_err(), "platform seed change detected");

        let knobs = PlatformConfig { batch_size: 10, ..platform.clone() };
        let h4b = job_header(3, &order, &truth, &knobs, &cfg, 2);
        assert!(verify_header(&h, &h4b).is_err(), "platform knob change detected");

        let latency = PlatformConfig {
            revisit_delay: crowdjoin_sim::LogNormal::from_median(900.0, 1.0),
            ..platform.clone()
        };
        let h4c = job_header(3, &order, &truth, &latency, &cfg, 2);
        assert!(verify_header(&h, &h4c).is_err(), "latency model change detected");

        let other_cfg = EngineConfig { seed: 1, ..EngineConfig::default() };
        let h5 = job_header(3, &order, &truth, &platform, &other_cfg, 2);
        assert!(verify_header(&h, &h5).is_err(), "engine seed change detected");

        let other_order = EngineConfig {
            order: crate::ordering::OrderingMode::Online,
            ..EngineConfig::default()
        };
        let h6 = job_header(3, &order, &truth, &platform, &other_order, 2);
        let err = verify_header(&h, &h6).expect_err("ordering change detected");
        assert!(
            err.to_string().contains("ordering"),
            "mismatch must name the ordering field: {err}"
        );
    }
}
