//! # crowdjoin-engine — sharded, multi-threaded execution engine
//!
//! The labelers in `crowdjoin-core` process one candidate graph in one
//! thread. Their deduction substrate is naturally partitionable, though:
//! transitive relations (positive and negative alike) propagate only along
//! candidate edges, so **pairs in different connected components can never
//! deduce each other**. This crate turns that observation into a
//! job-oriented execution engine:
//!
//! 1. **Partitioner** ([`partition`]) — extracts connected components with
//!    the `crowdjoin-graph` union–find and bin-packs them (LPT) into
//!    balanced shards.
//! 2. **Scheduler** ([`scheduler`]) — runs shards on a `std::thread` worker
//!    pool; each shard drives its own labeler against a shared, thread-safe
//!    oracle front-end ([`oracle::SharedOracle`]) with batched question
//!    issue, or against its own deterministic crowd-platform instance.
//! 3. **Event loop** ([`event_loop`]) — the platform-driven path's default
//!    driver: every shard is a non-blocking [`task::ShardTask`] state
//!    machine (`Publishing → AwaitingCrowd → Deducing → Done`) and a
//!    cooperative scheduler advances the shard with the earliest pending
//!    virtual event, multiplexing thousands of shards over a bounded worker
//!    pool — with optional dynamic re-sharding between publish rounds
//!    ([`EngineConfig::reshard`]).
//! 4. **Incremental closure** ([`closure`]) — per-shard positive/negative
//!    transitive closure maintained eagerly as labels stream in (semi-naive
//!    delta propagation on `ClusterGraph` structural events), so cross-round
//!    deduction never recomputes from scratch.
//! 5. **Merged report** ([`report`]) — per-shard `LabelingResult`s stitched
//!    into a global result with platform stats summed and completion time
//!    taken as the virtual-time critical path (max over shards).
//!
//! ## Example
//!
//! ```
//! use crowdjoin_core::{sort_pairs, CandidateSet, GroundTruth, Pair, ScoredPair, SortStrategy};
//! use crowdjoin_engine::{run_with_oracle, EngineConfig, SharedGroundTruth};
//!
//! // Two disjoint entity clusters → two components → two shards.
//! let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4, 5]]);
//! let candidates = CandidateSet::new(6, vec![
//!     ScoredPair::new(Pair::new(0, 1), 0.9),
//!     ScoredPair::new(Pair::new(1, 2), 0.8),
//!     ScoredPair::new(Pair::new(3, 4), 0.9),
//!     ScoredPair::new(Pair::new(4, 5), 0.8),
//! ]);
//! let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
//!
//! let oracle = SharedGroundTruth::new(&truth);
//! let report = run_with_oracle(6, &order, &oracle, &EngineConfig::with_shards(2));
//! assert_eq!(report.num_shards(), 2);
//! assert_eq!(report.result.num_labeled(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod driver;
mod engine;
pub mod event_loop;
pub mod labeler;
pub mod oracle;
pub mod ordering;
pub mod partition;
mod persist;
pub mod report;
pub mod scheduler;
pub mod stream;
pub mod task;

/// The on-disk answer-journal format (re-export of `crowdjoin-wal`).
pub use crowdjoin_wal as wal;

/// The pluggable crowd-backend layer (re-export of `crowdjoin-sim`): the
/// [`CrowdBackend`] poll interface the engine is generic over, the
/// [`TimeSource`] clocks it schedules against, and the default simulator
/// factory.
pub use crowdjoin_sim::{
    BackendFactory, CrowdBackend, ShardContext, SimFactory, TimeSource, VirtualClock, WallClock,
};

pub use closure::IncrementalClosure;
pub use driver::{drive_to_completion, PlatformDriveable};
pub use engine::{
    run_non_transitive_with_oracle, run_on_platform, run_on_platform_threaded, run_with_oracle,
    Engine, EngineConfig,
};
pub use labeler::ShardLabeler;
pub use oracle::{SharedGroundTruth, SharedOracle, SyncOracle};
pub use ordering::{
    exact_expected_order, ExactExpected, LikelihoodDescending, OnlineExpected, OrderingMode,
    OrderingPolicy,
};
pub use partition::{partition_candidates, Partition, Shard};
pub use report::{EngineReport, RoundMetric, ShardMetrics, ShardReport};
pub use scheduler::{effective_threads, run_sharded};
pub use stream::{IngestReport, StreamEngine, StreamStepReport};
pub use task::{pair_task_id, task_id_pair, ShardState, ShardTask};
