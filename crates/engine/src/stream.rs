//! Mid-job pair admission for streaming ingestion.
//!
//! A batch job's candidate set is frozen before the engine starts; a
//! streaming job keeps discovering pairs while earlier pairs are already
//! being labeled. [`StreamEngine`] is the admission layer that makes this
//! sound:
//!
//! * [`StreamEngine::ingest`] admits a delta of scored pairs (from the
//!   matcher's incremental join), growing the object universe and the
//!   connected-component structure as it goes — the component bookkeeping
//!   is what the partitioner rebalances at the next reshard barrier;
//! * [`StreamEngine::step_with_oracle`] eagerly labels everything
//!   admitted so far: the current pair set is sorted with the batch
//!   engine's strategy, partitioned into shards, and each shard replays
//!   the already-paid-for answers through [`ShardLabeler::seed_known`]
//!   before asking the oracle only the questions no previous step bought.
//!   **No question is ever paid for twice across steps** — the same
//!   economy journal resume is built on, applied between ingests.
//!
//! ## What is (and is not) equal to batch
//!
//! Deduction is monotone in knowledge but batch *selection* is not: a
//! step that ran before some pair arrived may crowdsource a question the
//! full-knowledge batch run would have deduced. Eager labels are always
//! **correct** (they come from the same closure over the same answers),
//! and with a consistent oracle the final labels equal the batch run's on
//! every pair; the *crowdsourced set* — and hence money — may be a
//! superset of batch's. That is the price of answering early. A streaming
//! job that wants the batch-identical ledger runs the final canonical
//! order through the unmodified batch engine at close (which is exactly
//! what the `crowdjoin` facade's stream path does); `StreamEngine` is for
//! the *eager* regime where provisional labels are wanted mid-stream.

use crate::engine::EngineConfig;
use crate::labeler::ShardLabeler;
use crate::oracle::SharedOracle;
use crate::partition::partition_candidates;
use crate::scheduler::run_sharded;
use crowdjoin_core::{Label, LabelingResult, Pair, ScoredPair};
use crowdjoin_graph::UnionFind;
use crowdjoin_util::{FxHashMap, FxHashSet};

/// What one [`StreamEngine::ingest`] call did to the component structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Pairs admitted (first time seen).
    pub admitted: usize,
    /// Pairs dropped as duplicates of already-admitted pairs.
    pub duplicates: usize,
    /// Admitted pairs that bridged two previously-distinct components —
    /// each such merge may invalidate the current sharding, which the next
    /// barrier rebalances.
    pub components_joined: usize,
    /// Admitted pairs that opened a brand-new component (neither object
    /// was part of any earlier pair).
    pub components_opened: usize,
}

/// Result of one eager labeling step.
#[derive(Debug, Clone)]
pub struct StreamStepReport {
    /// Merged labels over every admitted pair (global ids).
    pub result: LabelingResult,
    /// Questions this step paid for (earlier steps' answers were seeded,
    /// not re-asked).
    pub new_answers: usize,
    /// Answers replayed from earlier steps.
    pub seeded_answers: usize,
    /// Shards the step ran on.
    pub num_shards: usize,
}

/// Admission state for a streaming job: the pairs admitted so far, their
/// component structure, and every crowd answer already paid for.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    config: EngineConfig,
    num_objects: usize,
    admitted: Vec<ScoredPair>,
    seen: FxHashSet<Pair>,
    components: UnionFind,
    active: Vec<bool>,
    known: FxHashMap<Pair, Label>,
}

impl StreamEngine {
    /// An empty admission state (zero objects, zero pairs).
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            num_objects: 0,
            admitted: Vec::new(),
            seen: FxHashSet::default(),
            components: UnionFind::new(0),
            active: Vec::new(),
            known: FxHashMap::default(),
        }
    }

    /// Objects in the universe so far.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Pairs admitted so far.
    #[must_use]
    pub fn num_pairs(&self) -> usize {
        self.admitted.len()
    }

    /// Crowd answers paid for so far (across all steps).
    #[must_use]
    pub fn num_known_answers(&self) -> usize {
        self.known.len()
    }

    /// Live connected components (components containing at least one
    /// admitted pair).
    #[must_use]
    pub fn num_components(&mut self) -> usize {
        let mut roots = FxHashSet::default();
        for i in 0..self.active.len() {
            if self.active[i] {
                roots.insert(self.components.find(i as u32));
            }
        }
        roots.len()
    }

    /// Admits a delta of pairs mid-job. `num_objects` is the new universe
    /// size (monotone — a stream only grows); pairs already admitted are
    /// counted as duplicates and dropped, so re-delivering a delta is
    /// harmless.
    ///
    /// # Panics
    ///
    /// Panics if `num_objects` shrinks the universe or a pair references
    /// an object `>= num_objects`.
    pub fn ingest(&mut self, num_objects: usize, pairs: &[ScoredPair]) -> IngestReport {
        assert!(
            num_objects >= self.num_objects,
            "universe cannot shrink: {} < {}",
            num_objects,
            self.num_objects
        );
        while self.num_objects < num_objects {
            self.components.push();
            self.active.push(false);
            self.num_objects += 1;
        }
        let mut report = IngestReport::default();
        for sp in pairs {
            let (a, b) = (sp.pair.a(), sp.pair.b());
            assert!(
                (b as usize) < self.num_objects,
                "pair {} references object outside universe of {}",
                sp.pair,
                self.num_objects
            );
            if !self.seen.insert(sp.pair) {
                report.duplicates += 1;
                continue;
            }
            let a_active = self.active[a as usize];
            let b_active = self.active[b as usize];
            if !a_active && !b_active {
                report.components_opened += 1;
            } else if a_active && b_active && self.components.find(a) != self.components.find(b) {
                report.components_joined += 1;
            }
            self.components.union(a, b);
            self.active[a as usize] = true;
            self.active[b as usize] = true;
            self.admitted.push(*sp);
            report.admitted += 1;
        }
        report
    }

    /// The admitted pairs in the batch engine's labeling order (likelihood
    /// descending, admission order breaking ties) — the order
    /// [`Self::step_with_oracle`] labels in.
    #[must_use]
    pub fn labeling_order(&self) -> Vec<ScoredPair> {
        let mut order = self.admitted.clone();
        order.sort_by(|x, y| {
            y.likelihood.partial_cmp(&x.likelihood).expect("likelihoods are not NaN")
        });
        order
    }

    /// Eagerly labels everything admitted so far: partition into shards,
    /// seed each shard with the answers earlier steps paid for, ask
    /// `oracle` only the remainder. Newly bought answers are remembered,
    /// so the next step (after more ingests) seeds them instead of
    /// re-asking.
    ///
    /// # Panics
    ///
    /// Panics if a shard reports incomplete while nothing is publishable
    /// (impossible for well-formed inputs).
    pub fn step_with_oracle<O: SharedOracle + ?Sized>(&mut self, oracle: &O) -> StreamStepReport {
        let order = self.labeling_order();
        let partition =
            partition_candidates(self.num_objects, &order, self.config.effective_shards());
        let num_shards = partition.shards.len();
        let known = &self.known;
        let ordering = self.config.order;
        let shard_outcomes = run_sharded(partition.shards, self.config.num_threads, |shard| {
            let mut labeler =
                ShardLabeler::with_ordering(shard.num_objects(), shard.pairs.clone(), ordering);
            let mut seeded = 0usize;
            for sp in &shard.pairs {
                if let Some(&label) = known.get(&shard.to_global(sp.pair)) {
                    labeler.seed_known(sp.pair, label);
                    seeded += 1;
                }
            }
            let mut bought: Vec<(Pair, Label)> = Vec::new();
            while !labeler.is_complete() {
                let batch = labeler.next_batch();
                assert!(
                    !batch.is_empty(),
                    "labeler stuck: shard {} incomplete with nothing to publish",
                    shard.index
                );
                let globals: Vec<Pair> = batch.iter().map(|sp| shard.to_global(sp.pair)).collect();
                let answers = oracle.answer_batch(&globals);
                assert_eq!(answers.len(), batch.len(), "oracle must answer every question");
                for ((sp, global), answer) in batch.iter().zip(globals).zip(answers) {
                    labeler.submit_answer(sp.pair, answer);
                    bought.push((global, answer));
                }
            }
            (shard.globalize(&labeler.into_result()), bought, seeded)
        });

        let mut result = LabelingResult::new();
        let mut new_answers = 0usize;
        let mut seeded_answers = 0usize;
        for (shard_result, bought, seeded) in shard_outcomes {
            for lp in shard_result.labeled_pairs() {
                result.record(lp.pair, lp.label, lp.provenance);
            }
            for _ in 0..shard_result.num_conflicts() {
                result.record_conflict();
            }
            new_answers += bought.len();
            seeded_answers += seeded;
            for (pair, label) in bought {
                self.known.insert(pair, label);
            }
        }
        StreamStepReport { result, new_answers, seeded_answers, num_shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_with_oracle;
    use crate::oracle::SharedGroundTruth;
    use crowdjoin_core::{sort_pairs, CandidateSet, GroundTruth, Provenance, SortStrategy};

    fn sp(a: u32, b: u32, l: f64) -> ScoredPair {
        ScoredPair::new(Pair::new(a, b), l)
    }

    #[test]
    fn ingest_tracks_components() {
        let mut engine = StreamEngine::new(EngineConfig::with_shards(4));
        let r = engine.ingest(4, &[sp(0, 1, 0.9), sp(2, 3, 0.8)]);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.components_opened, 2);
        assert_eq!(r.components_joined, 0);
        assert_eq!(engine.num_components(), 2);

        // A bridge pair joins the two components; a duplicate is dropped.
        let r = engine.ingest(4, &[sp(1, 2, 0.7), sp(0, 1, 0.9)]);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.components_joined, 1);
        assert_eq!(engine.num_components(), 1);
    }

    #[test]
    fn steps_never_pay_twice_and_final_labels_match_batch() {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let all = vec![
            sp(0, 1, 0.95),
            sp(1, 2, 0.90),
            sp(0, 5, 0.85),
            sp(0, 2, 0.80),
            sp(3, 4, 0.75),
            sp(3, 5, 0.70),
            sp(1, 3, 0.65),
            sp(4, 5, 0.60),
        ];
        let config = EngineConfig::with_shards(2);

        let mut engine = StreamEngine::new(config.clone());
        let oracle = SharedGroundTruth::new(&truth);
        // Stream in three chunks, stepping after each.
        let mut total_new = 0usize;
        for chunk in all.chunks(3) {
            engine.ingest(6, chunk);
            let step = engine.step_with_oracle(&oracle);
            assert_eq!(step.result.num_labeled(), engine.num_pairs());
            total_new += step.new_answers;
        }
        assert_eq!(total_new as u64, oracle.questions_asked(), "every answer bought once");

        // Final labels equal the batch run's on every pair.
        let cs = CandidateSet::new(6, all.clone());
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let batch_oracle = SharedGroundTruth::new(&truth);
        let batch = run_with_oracle(6, &order, &batch_oracle, &config);
        let last = engine.step_with_oracle(&oracle);
        for p in all.iter().map(|s| s.pair) {
            assert_eq!(last.result.label_of(p), batch.result.label_of(p));
            assert_eq!(last.result.label_of(p), Some(truth.label_of(p)));
        }
        // The extra step bought nothing: everything was already known.
        assert_eq!(last.new_answers, 0);
        assert_eq!(last.seeded_answers, engine.num_known_answers());
    }

    #[test]
    fn seeded_answers_rederive_deductions_across_steps() {
        // 0-1-2 is one entity; once (0,1) and (1,2) are answered in step 1,
        // a later-arriving (0,2) must be deduced, not bought.
        let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
        let oracle = SharedGroundTruth::new(&truth);
        let mut engine = StreamEngine::new(EngineConfig::with_shards(1));
        engine.ingest(3, &[sp(0, 1, 0.9), sp(1, 2, 0.8)]);
        engine.step_with_oracle(&oracle);
        assert_eq!(oracle.questions_asked(), 2);

        engine.ingest(3, &[sp(0, 2, 0.7)]);
        let step = engine.step_with_oracle(&oracle);
        assert_eq!(oracle.questions_asked(), 2, "(0,2) is deducible from seeded answers");
        assert_eq!(step.new_answers, 0);
        assert_eq!(step.result.provenance_of(Pair::new(0, 2)), Some(Provenance::Deduced));
    }

    #[test]
    #[should_panic(expected = "universe cannot shrink")]
    fn shrinking_universe_rejected() {
        let mut engine = StreamEngine::new(EngineConfig::default());
        engine.ingest(5, &[]);
        engine.ingest(3, &[]);
    }
}
