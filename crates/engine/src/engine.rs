//! Job-level entry points: partition, schedule, run, resume, stitch.

use crate::driver::drive_to_completion;
use crate::event_loop::JournalRun;
use crate::labeler::ShardLabeler;
use crate::oracle::SharedOracle;
use crate::ordering::OrderingMode;
use crate::partition::{partition_candidates, Shard};
use crate::persist::{job_header, verify_header};
use crate::report::{EngineReport, ShardReport};
use crate::scheduler::run_sharded;
use crowdjoin_core::{GroundTruth, LabelingResult, Pair, Provenance, ScoredPair};
use crowdjoin_sim::{
    BackendFactory, Platform, PlatformConfig, SharedClock, SimFactory, VirtualTime,
};
use crowdjoin_wal::{open_resume, partition_replay, Journal, WalError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target shard count; the partitioner may produce fewer when there are
    /// fewer connected components. `0` means one shard per available CPU.
    pub num_shards: usize,
    /// Worker threads; `0` means `min(num_shards, available parallelism)`.
    pub num_threads: usize,
    /// Platform-driven runs: recompute the publishable set after every HIT
    /// resolution (`true`, the paper's instant-decision optimization) or
    /// only when all outstanding pairs are labeled (`false`).
    pub instant_decision: bool,
    /// Event-loop runs: dynamically re-shard between publish rounds —
    /// retire components that collapsed early and merge the shrinking
    /// working set into fewer, fuller shards (less partial-HIT waste).
    /// Ignored by the blocking thread-per-shard driver.
    pub reshard: bool,
    /// Master seed for per-shard platform derivation.
    pub seed: u64,
    /// Platform-driven event-loop runs: append every crowd answer to a
    /// crash-safe write-ahead journal at this path (see `crowdjoin-wal`).
    /// A killed job is then resumable with [`Engine::resume`], re-paying
    /// nothing. The path must not already hold a non-empty file — an
    /// existing journal may contain paid-for answers and must be resumed
    /// or deleted explicitly. Ignored by oracle-driven runs and the
    /// blocking thread-per-shard driver (both documented on their entry
    /// points).
    pub journal: Option<PathBuf>,
    /// Question-ordering policy every shard labeler publishes under (see
    /// [`crate::ordering`]). The default, [`OrderingMode::Likelihood`], is
    /// bit-identical to pre-policy builds; the policy is part of the
    /// journal fingerprint, so a resume must use the order the job was
    /// started with.
    pub order: OrderingMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_shards: 0,
            num_threads: 0,
            instant_decision: true,
            reshard: false,
            seed: 0,
            journal: None,
            order: OrderingMode::Likelihood,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit shard count and defaults elsewhere.
    #[must_use]
    pub fn with_shards(num_shards: usize) -> Self {
        Self { num_shards, ..Self::default() }
    }

    pub(crate) fn effective_shards(&self) -> usize {
        if self.num_shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_shards
        }
    }
}

/// A configured platform-driven job: inputs and tunables bundled so fresh
/// runs and journal resumes share one construction path.
///
/// ```no_run
/// use crowdjoin_core::{GroundTruth, Pair, ScoredPair};
/// use crowdjoin_engine::{Engine, EngineConfig};
/// use crowdjoin_sim::PlatformConfig;
///
/// let truth = GroundTruth::from_clusters(3, &[vec![0, 1, 2]]);
/// let order = vec![ScoredPair::new(Pair::new(0, 1), 0.9)];
/// let platform = PlatformConfig::amt_like(7);
/// let config = EngineConfig { journal: Some("job.wal".into()), ..EngineConfig::default() };
/// let engine = Engine::new(3, &order, &truth, &platform, config);
/// let report = match engine.run() {
///     Ok(report) => report,                                  // journaled run
///     Err(_) => engine.resume("job.wal".as_ref()).unwrap(),  // e.g. journal exists: resume it
/// };
/// assert_eq!(report.result.num_labeled(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Engine<'a> {
    num_objects: usize,
    order: &'a [ScoredPair],
    truth: &'a GroundTruth,
    platform: &'a PlatformConfig,
    config: EngineConfig,
}

impl<'a> Engine<'a> {
    /// Bundles a job's inputs with its engine configuration.
    #[must_use]
    pub fn new(
        num_objects: usize,
        order: &'a [ScoredPair],
        truth: &'a GroundTruth,
        platform: &'a PlatformConfig,
        config: EngineConfig,
    ) -> Self {
        Self { num_objects, order, truth, platform, config }
    }

    /// Runs the job on the event loop against the default simulated-crowd
    /// backend (see [`run_on_platform`] for the execution model). With
    /// [`EngineConfig::journal`] set, every crowd answer is write-ahead
    /// logged so a killed process can be resumed with [`Self::resume`].
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] if the journal path holds a non-empty
    /// file (resume or delete it explicitly), [`WalError::Io`] if the
    /// journal cannot be created. Unjournaled runs never fail.
    ///
    /// # Panics
    ///
    /// Panics on malformed inputs (see [`run_on_platform`]) or on a
    /// journal I/O failure mid-run — a write-ahead log that silently stops
    /// logging would betray the resume, so the engine is fail-stop.
    pub fn run(&self) -> Result<EngineReport, WalError> {
        self.run_with_backend(&SimFactory::new())
    }

    /// Runs the job on the event loop against the crowd backends `factory`
    /// creates — the generic entry point behind [`Self::run`]. One backend
    /// is created per shard incarnation; the event loop schedules every
    /// shard by its backend's next event time and waits on the factory's
    /// [`crowdjoin_sim::TimeSource`], so simulated (virtual-time) and
    /// external (wall-clock) backends run through the identical engine
    /// path.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    ///
    /// # Panics
    ///
    /// As [`Self::run`]; additionally panics when [`EngineConfig::journal`]
    /// is combined with [`EngineConfig::reshard`] on a backend without
    /// [`BackendFactory::deterministic_replay`] — re-sharded partitions
    /// depend on answer timing, so a fed replay could not reconstruct
    /// which shard a journaled answer belongs to.
    pub fn run_with_backend<F: BackendFactory>(
        &self,
        factory: &F,
    ) -> Result<EngineReport, WalError> {
        let journal = match &self.config.journal {
            None => None,
            Some(path) => {
                assert_journalable(factory, &self.config);
                let header = job_header(
                    self.num_objects,
                    self.order,
                    self.truth,
                    self.platform,
                    &self.config,
                    self.config.effective_shards(),
                );
                Some(JournalRun {
                    sink: Arc::new(Journal::create(path, &header)?),
                    plan: crowdjoin_wal::ReplayPlan::default(),
                })
            }
        };
        Ok(self.run_event_loop(factory, &self.config, journal))
    }

    /// Resumes a killed journaled job: replays the journal's paid-for
    /// answers (verifying each re-derived record bit-for-bit), asks the
    /// crowd only the questions the crashed run never paid for, and keeps
    /// appending to the same journal — so a resumed job can itself crash
    /// and be resumed again.
    ///
    /// Because every shard simulation is deterministic, the resumed report
    /// is **bit-identical** to the report of an uninterrupted run: same
    /// labels and provenance, same per-shard platform statistics, same
    /// money, same completion time. What differs is the ledger:
    /// [`EngineReport::num_replayed_answers`] counts the journaled answers
    /// that were *not* re-asked, and [`EngineReport::num_new_answers`]
    /// the ones this run actually paid for. Resuming a journal whose job
    /// already finished replays everything and asks nothing.
    ///
    /// A torn tail (crash mid-append) is truncated on open; answers after
    /// the last durable barrier replay fine — the journal is usable from
    /// any byte-level prefix.
    ///
    /// The engine's `num_shards = 0` ("one shard per CPU") is resolved
    /// from the journal header, so a journal resumes identically on a
    /// machine with a different core count.
    ///
    /// # Errors
    ///
    /// [`WalError::HeaderMismatch`] when the inputs, seeds, or flags
    /// differ from the journaled job (e.g. resuming with a different
    /// `--seed`); [`WalError::Corrupt`] / [`WalError::NotAJournal`] /
    /// [`WalError::VersionMismatch`] for a damaged or foreign file;
    /// [`WalError::Io`] on I/O failure.
    ///
    /// # Panics
    ///
    /// Panics if the journal passes the header check but diverges from the
    /// re-derived history mid-replay — that means the journal and the job
    /// disagree in a way fingerprints could not catch, and continuing
    /// would silently fork paid-for history.
    pub fn resume(&self, path: &Path) -> Result<EngineReport, WalError> {
        self.resume_with_backend(path, &SimFactory::new())
    }

    /// Resumes a killed journaled job on the crowd backends `factory`
    /// creates — the generic entry point behind [`Self::resume`]. The
    /// replay mode follows [`BackendFactory::deterministic_replay`]:
    /// deterministic backends re-execute and verify every record
    /// bit-for-bit (see [`Self::resume`] for the guarantees); external
    /// backends get the journaled answers *fed* straight into the labelers
    /// — no journaled question is ever re-posted, only the remainder goes
    /// back out, and the journal keeps appending so the resumed run is
    /// itself crash-safe.
    ///
    /// # Errors
    ///
    /// As [`Self::resume`].
    ///
    /// # Panics
    ///
    /// As [`Self::resume`]; additionally panics when resuming a re-sharded
    /// journal on a backend without deterministic replay (see
    /// [`Self::run_with_backend`]).
    pub fn resume_with_backend<F: BackendFactory>(
        &self,
        path: &Path,
        factory: &F,
    ) -> Result<EngineReport, WalError> {
        let (contents, sink) = open_resume(path)?;
        let mut config = self.config.clone();
        if config.num_shards == 0 {
            config.num_shards = contents.header.num_shards as usize;
        }
        // New records go to the journal being resumed, whatever
        // `config.journal` says.
        config.journal = Some(path.to_path_buf());
        assert_journalable(factory, &config);
        let header = job_header(
            self.num_objects,
            self.order,
            self.truth,
            self.platform,
            &config,
            config.effective_shards(),
        );
        verify_header(&contents.header, &header)?;
        let plan = partition_replay(&contents.records);
        Ok(self.run_event_loop(factory, &config, Some(JournalRun { sink: Arc::new(sink), plan })))
    }

    fn run_event_loop<F: BackendFactory>(
        &self,
        factory: &F,
        config: &EngineConfig,
        journal: Option<JournalRun>,
    ) -> EngineReport {
        let partition =
            partition_candidates(self.num_objects, self.order, config.effective_shards());
        crate::event_loop::run_event_loop(
            self.num_objects,
            self.order,
            partition,
            self.truth,
            factory,
            self.platform,
            config,
            journal,
        )
    }
}

/// Journaled re-sharding requires deterministic replay: which shard a
/// journaled answer belongs to after a barrier depends on answer timing,
/// which a fed replay cannot reconstruct. Refuse loudly up front instead
/// of diverging mid-resume.
fn assert_journalable<F: BackendFactory>(factory: &F, config: &EngineConfig) {
    assert!(
        factory.deterministic_replay() || !config.reshard,
        "EngineConfig::journal cannot be combined with EngineConfig::reshard on a backend \
         without deterministic replay (journaled re-sharded history is only replayable by \
         re-execution)"
    );
}

/// Runs the sharded engine against a thread-safe oracle.
///
/// Each shard drives its own labeler; crowd questions are issued in one
/// batched `answer_batch` call per publish round. With a consistent oracle
/// the merged labels equal a single-threaded run's on every pair (pinned by
/// the `engine_equivalence` tests).
///
/// `config.journal` is ignored: oracle answers arrive synchronously from
/// the caller, who owns their durability; the write-ahead journal covers
/// the platform-driven path.
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects` or appears twice
/// in `order`.
#[must_use]
pub fn run_with_oracle<O: SharedOracle + ?Sized>(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &O,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let mut labeler =
            ShardLabeler::with_ordering(shard.num_objects(), shard.pairs.clone(), config.order);
        let mut publish_rounds = 0usize;
        while !labeler.is_complete() {
            let batch = labeler.next_batch();
            assert!(
                !batch.is_empty(),
                "labeler stuck: shard {} incomplete with nothing to publish",
                shard.index
            );
            publish_rounds += 1;
            let globals: Vec<Pair> = batch.iter().map(|sp| shard.to_global(sp.pair)).collect();
            let answers = oracle.answer_batch(&globals);
            assert_eq!(answers.len(), batch.len(), "oracle must answer every question");
            for (sp, answer) in batch.iter().zip(answers) {
                labeler.submit_answer(sp.pair, answer);
            }
        }
        ShardReport {
            shard: shard.index,
            num_objects: shard.num_objects(),
            num_pairs: shard.pairs.len(),
            num_components: shard.num_components,
            result: shard.globalize(&labeler.into_result()),
            stats: None,
            completion: VirtualTime::ZERO,
            publish_rounds,
            replayed_answers: 0,
            replayed_cost_cents: 0,
            rounds: Vec::new(),
            peak_unresolved: 0,
        }
    });
    EngineReport::from_shards(reports, num_components)
}

/// Runs the sharded engine against simulated crowd platforms on the
/// **event loop**: one deterministic [`Platform`] per shard (seed derived
/// from the engine seed and the shard index), every shard a poll-based
/// [`crate::ShardTask`] state machine, multiplexed over
/// [`crate::effective_threads`] workers by earliest pending virtual event.
/// Thousands of shards run fine on two threads — shard count is bounded by
/// memory, not the thread limit.
///
/// Shards stage publishable pairs and release them in full HITs of the
/// platform's batch size ([`crowdjoin_sim::HitStager`] — the same batching
/// policy object the single-platform runner uses), flushing partial HITs
/// only when the shard's platform would otherwise idle.
///
/// The `platform` config's worker pool models the **whole crowd**, so it is
/// divided evenly across shards (each shard's platform gets
/// `num_workers / shards`, floored at `assignments_per_hit` so HITs can
/// still resolve). Completion times at different shard counts therefore
/// compare runs with (nearly) equal total crowd labor — the speedup shown
/// is the engine's, not extra hired workers'.
///
/// Per-shard outcomes are bit-identical to the blocking
/// [`run_on_platform_threaded`] driver whenever `config.reshard` is off
/// (pinned by `tests/event_loop.rs`). With `config.reshard` on, the loop
/// additionally merges shards between publish rounds as early answers
/// collapse components (see [`crate::EngineConfig::reshard`]).
///
/// Thin wrapper over [`Engine::run`] for journal-free call sites; see
/// [`Engine::resume`] for continuing a killed journaled job.
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects`, appears twice in
/// `order`, or the platform configuration is invalid. With
/// [`EngineConfig::journal`] set, additionally panics where [`Engine::run`]
/// would return an error — prefer the `Engine` API for journaled jobs.
#[must_use]
pub fn run_on_platform(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    config: &EngineConfig,
) -> EngineReport {
    Engine::new(num_objects, order, truth, platform, config.clone())
        .run()
        .unwrap_or_else(|e| panic!("journaled engine run failed: {e}"))
}

/// The blocking thread-per-shard driver: each worker thread drives one
/// shard's platform to completion before taking the next shard. Kept as the
/// reference arm the event loop is verified against; prefer
/// [`run_on_platform`] (same results, bounded threads, optional dynamic
/// re-sharding).
///
/// `config.reshard` and `config.journal` are ignored — a blocked worker
/// cannot reach a global round barrier, and crash safety belongs to the
/// default driver.
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects`, appears twice in
/// `order`, or the platform configuration is invalid.
#[must_use]
pub fn run_on_platform_threaded(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let num_shards = partition.shards.len().max(1);
    let clock = SharedClock::new();
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let report = run_shard_on_platform(shard, num_shards, truth, platform, config);
        clock.advance_to(report.completion);
        report
    });
    let mut report = EngineReport::from_shards(reports, num_components);
    // The shared clock and the per-shard maxima agree by construction; keep
    // the clock authoritative so future async backends (shards reporting
    // progress mid-run) stay correct.
    report.completion = clock.now();
    report
}

/// Drives one shard against its own platform instance (an equal slice of
/// the configured crowd) via the shared [`drive_to_completion`] loop.
fn run_shard_on_platform(
    shard: &Shard,
    num_shards: usize,
    truth: &GroundTruth,
    platform_cfg: &PlatformConfig,
    config: &EngineConfig,
) -> ShardReport {
    let cfg =
        crate::event_loop::shard_platform_config(platform_cfg, config, 0, shard.index, num_shards);
    let mut platform = Platform::new(cfg);
    let mut labeler =
        ShardLabeler::with_ordering(shard.num_objects(), shard.pairs.clone(), config.order);
    let publish_rounds = drive_to_completion(
        &mut labeler,
        &mut platform,
        config.instant_decision,
        &|local| truth.is_matching(shard.to_global(local)),
        &mut |_, _, _| {},
    );

    ShardReport {
        shard: shard.index,
        num_objects: shard.num_objects(),
        num_pairs: shard.pairs.len(),
        num_components: shard.num_components,
        result: shard.globalize(&labeler.into_result()),
        stats: Some(platform.stats()),
        completion: platform.stats().last_resolution,
        publish_rounds,
        replayed_answers: 0,
        replayed_cost_cents: 0,
        rounds: Vec::new(),
        peak_unresolved: 0,
    }
}

/// Runs the non-transitive baseline (publish everything, accept every
/// answer) through the same sharded machinery — the prior-work arm for
/// engine-level comparisons.
#[must_use]
pub fn run_non_transitive_with_oracle<O: SharedOracle + ?Sized>(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &O,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let globals: Vec<Pair> = shard.pairs.iter().map(|sp| shard.to_global(sp.pair)).collect();
        let answers = oracle.answer_batch(&globals);
        let mut result = LabelingResult::new();
        for (pair, label) in globals.into_iter().zip(answers) {
            result.record(pair, label, Provenance::Crowdsourced);
        }
        ShardReport {
            shard: shard.index,
            num_objects: shard.num_objects(),
            num_pairs: shard.pairs.len(),
            num_components: shard.num_components,
            result,
            stats: None,
            completion: VirtualTime::ZERO,
            publish_rounds: 1,
            replayed_answers: 0,
            replayed_cost_cents: 0,
            rounds: Vec::new(),
            peak_unresolved: 0,
        }
    });
    EngineReport::from_shards(reports, num_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SharedGroundTruth;
    use crowdjoin_core::{sort_pairs, CandidateSet, SortStrategy};

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn oracle_run_labels_everything_correctly() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let oracle = SharedGroundTruth::new(&truth);
        let report =
            run_with_oracle(cs.num_objects(), &order, &oracle, &EngineConfig::with_shards(4));
        assert_eq!(report.result.num_labeled(), cs.len());
        for sp in cs.pairs() {
            assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
        // One connected component: cannot shard further.
        assert_eq!(report.num_shards(), 1);
        assert_eq!(report.num_components, 1);
        assert_eq!(report.num_crowdsourced() as u64, oracle.questions_asked());
    }

    #[test]
    fn platform_run_matches_oracle_run_costs() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let report = run_on_platform(
            cs.num_objects(),
            &order,
            &truth,
            &PlatformConfig::perfect_workers(7),
            &EngineConfig::with_shards(2),
        );
        assert_eq!(report.result.num_crowdsourced(), 6);
        assert_eq!(report.result.num_deduced(), 2);
        assert!(report.completion > VirtualTime::ZERO);
        assert!(report.total_cost_cents > 0);
        for sp in cs.pairs() {
            assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    #[test]
    fn non_transitive_baseline_crowdsources_everything() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let oracle = SharedGroundTruth::new(&truth);
        let report = run_non_transitive_with_oracle(
            cs.num_objects(),
            &order,
            &oracle,
            &EngineConfig::with_shards(2),
        );
        assert_eq!(report.num_crowdsourced(), cs.len());
        assert_eq!(report.num_deduced(), 0);
    }

    #[test]
    fn empty_workload() {
        let truth = GroundTruth::all_distinct(4);
        let oracle = SharedGroundTruth::new(&truth);
        let report = run_with_oracle(4, &[], &oracle, &EngineConfig::default());
        assert_eq!(report.num_shards(), 0);
        assert_eq!(report.result.num_labeled(), 0);
        assert_eq!(report.completion, VirtualTime::ZERO);
    }
}
