//! Job-level entry points: partition, schedule, run, stitch.

use crate::driver::drive_to_completion;
use crate::labeler::ShardLabeler;
use crate::oracle::SharedOracle;
use crate::partition::{partition_candidates, Shard};
use crate::report::{EngineReport, ShardReport};
use crate::scheduler::run_sharded;
use crowdjoin_core::{GroundTruth, LabelingResult, Pair, Provenance, ScoredPair};
use crowdjoin_sim::{Platform, PlatformConfig, SharedClock, VirtualTime};

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Target shard count; the partitioner may produce fewer when there are
    /// fewer connected components. `0` means one shard per available CPU.
    pub num_shards: usize,
    /// Worker threads; `0` means `min(num_shards, available parallelism)`.
    pub num_threads: usize,
    /// Platform-driven runs: recompute the publishable set after every HIT
    /// resolution (`true`, the paper's instant-decision optimization) or
    /// only when all outstanding pairs are labeled (`false`).
    pub instant_decision: bool,
    /// Event-loop runs: dynamically re-shard between publish rounds —
    /// retire components that collapsed early and merge the shrinking
    /// working set into fewer, fuller shards (less partial-HIT waste).
    /// Ignored by the blocking thread-per-shard driver.
    pub reshard: bool,
    /// Master seed for per-shard platform derivation.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { num_shards: 0, num_threads: 0, instant_decision: true, reshard: false, seed: 0 }
    }
}

impl EngineConfig {
    /// Config with an explicit shard count and defaults elsewhere.
    #[must_use]
    pub fn with_shards(num_shards: usize) -> Self {
        Self { num_shards, ..Self::default() }
    }

    fn effective_shards(&self) -> usize {
        if self.num_shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_shards
        }
    }
}

/// Runs the sharded engine against a thread-safe oracle.
///
/// Each shard drives its own labeler; crowd questions are issued in one
/// batched `answer_batch` call per publish round. With a consistent oracle
/// the merged labels equal a single-threaded run's on every pair (pinned by
/// the `engine_equivalence` tests).
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects` or appears twice
/// in `order`.
#[must_use]
pub fn run_with_oracle<O: SharedOracle + ?Sized>(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &O,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let mut labeler = ShardLabeler::new(shard.num_objects(), shard.pairs.clone());
        let mut publish_rounds = 0usize;
        while !labeler.is_complete() {
            let batch = labeler.next_batch();
            assert!(
                !batch.is_empty(),
                "labeler stuck: shard {} incomplete with nothing to publish",
                shard.index
            );
            publish_rounds += 1;
            let globals: Vec<Pair> = batch.iter().map(|sp| shard.to_global(sp.pair)).collect();
            let answers = oracle.answer_batch(&globals);
            assert_eq!(answers.len(), batch.len(), "oracle must answer every question");
            for (sp, answer) in batch.iter().zip(answers) {
                labeler.submit_answer(sp.pair, answer);
            }
        }
        ShardReport {
            shard: shard.index,
            num_objects: shard.num_objects(),
            num_pairs: shard.pairs.len(),
            num_components: shard.num_components,
            result: shard.globalize(&labeler.into_result()),
            stats: None,
            completion: VirtualTime::ZERO,
            publish_rounds,
        }
    });
    EngineReport::from_shards(reports, num_components)
}

/// Runs the sharded engine against simulated crowd platforms on the
/// **event loop**: one deterministic [`Platform`] per shard (seed derived
/// from the engine seed and the shard index), every shard a poll-based
/// [`crate::ShardTask`] state machine, multiplexed over
/// [`crate::effective_threads`] workers by earliest pending virtual event.
/// Thousands of shards run fine on two threads — shard count is bounded by
/// memory, not the thread limit.
///
/// Shards stage publishable pairs and release them in full HITs of the
/// platform's batch size ([`crowdjoin_sim::HitStager`] — the same batching
/// policy object the single-platform runner uses), flushing partial HITs
/// only when the shard's platform would otherwise idle.
///
/// The `platform` config's worker pool models the **whole crowd**, so it is
/// divided evenly across shards (each shard's platform gets
/// `num_workers / shards`, floored at `assignments_per_hit` so HITs can
/// still resolve). Completion times at different shard counts therefore
/// compare runs with (nearly) equal total crowd labor — the speedup shown
/// is the engine's, not extra hired workers'.
///
/// Per-shard outcomes are bit-identical to the blocking
/// [`run_on_platform_threaded`] driver whenever `config.reshard` is off
/// (pinned by `tests/event_loop.rs`). With `config.reshard` on, the loop
/// additionally merges shards between publish rounds as early answers
/// collapse components (see [`crate::EngineConfig::reshard`]).
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects`, appears twice in
/// `order`, or the platform configuration is invalid.
#[must_use]
pub fn run_on_platform(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    crate::event_loop::run_event_loop(num_objects, order, partition, truth, platform, config)
}

/// The blocking thread-per-shard driver: each worker thread drives one
/// shard's platform to completion before taking the next shard. Kept as the
/// reference arm the event loop is verified against; prefer
/// [`run_on_platform`] (same results, bounded threads, optional dynamic
/// re-sharding).
///
/// `config.reshard` is ignored — a blocked worker cannot reach a global
/// round barrier.
///
/// # Panics
///
/// Panics if a pair references an object `>= num_objects`, appears twice in
/// `order`, or the platform configuration is invalid.
#[must_use]
pub fn run_on_platform_threaded(
    num_objects: usize,
    order: &[ScoredPair],
    truth: &GroundTruth,
    platform: &PlatformConfig,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let num_shards = partition.shards.len().max(1);
    let clock = SharedClock::new();
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let report = run_shard_on_platform(shard, num_shards, truth, platform, config);
        clock.advance_to(report.completion);
        report
    });
    let mut report = EngineReport::from_shards(reports, num_components);
    // The shared clock and the per-shard maxima agree by construction; keep
    // the clock authoritative so future async backends (shards reporting
    // progress mid-run) stay correct.
    report.completion = clock.now();
    report
}

/// Drives one shard against its own platform instance (an equal slice of
/// the configured crowd) via the shared [`drive_to_completion`] loop.
fn run_shard_on_platform(
    shard: &Shard,
    num_shards: usize,
    truth: &GroundTruth,
    platform_cfg: &PlatformConfig,
    config: &EngineConfig,
) -> ShardReport {
    let cfg =
        crate::event_loop::shard_platform_config(platform_cfg, config, 0, shard.index, num_shards);
    let mut platform = Platform::new(cfg);
    let mut labeler = ShardLabeler::new(shard.num_objects(), shard.pairs.clone());
    let publish_rounds = drive_to_completion(
        &mut labeler,
        &mut platform,
        config.instant_decision,
        &|local| truth.is_matching(shard.to_global(local)),
        &mut |_, _, _| {},
    );

    ShardReport {
        shard: shard.index,
        num_objects: shard.num_objects(),
        num_pairs: shard.pairs.len(),
        num_components: shard.num_components,
        result: shard.globalize(&labeler.into_result()),
        stats: Some(platform.stats()),
        completion: platform.stats().last_resolution,
        publish_rounds,
    }
}

/// Runs the non-transitive baseline (publish everything, accept every
/// answer) through the same sharded machinery — the prior-work arm for
/// engine-level comparisons.
#[must_use]
pub fn run_non_transitive_with_oracle<O: SharedOracle + ?Sized>(
    num_objects: usize,
    order: &[ScoredPair],
    oracle: &O,
    config: &EngineConfig,
) -> EngineReport {
    let partition = partition_candidates(num_objects, order, config.effective_shards());
    let num_components = partition.num_components;
    let reports = run_sharded(partition.shards, config.num_threads, |shard| {
        let globals: Vec<Pair> = shard.pairs.iter().map(|sp| shard.to_global(sp.pair)).collect();
        let answers = oracle.answer_batch(&globals);
        let mut result = LabelingResult::new();
        for (pair, label) in globals.into_iter().zip(answers) {
            result.record(pair, label, Provenance::Crowdsourced);
        }
        ShardReport {
            shard: shard.index,
            num_objects: shard.num_objects(),
            num_pairs: shard.pairs.len(),
            num_components: shard.num_components,
            result,
            stats: None,
            completion: VirtualTime::ZERO,
            publish_rounds: 1,
        }
    });
    EngineReport::from_shards(reports, num_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SharedGroundTruth;
    use crowdjoin_core::{sort_pairs, CandidateSet, SortStrategy};

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    #[test]
    fn oracle_run_labels_everything_correctly() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let oracle = SharedGroundTruth::new(&truth);
        let report =
            run_with_oracle(cs.num_objects(), &order, &oracle, &EngineConfig::with_shards(4));
        assert_eq!(report.result.num_labeled(), cs.len());
        for sp in cs.pairs() {
            assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
        // One connected component: cannot shard further.
        assert_eq!(report.num_shards(), 1);
        assert_eq!(report.num_components, 1);
        assert_eq!(report.num_crowdsourced() as u64, oracle.questions_asked());
    }

    #[test]
    fn platform_run_matches_oracle_run_costs() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let report = run_on_platform(
            cs.num_objects(),
            &order,
            &truth,
            &PlatformConfig::perfect_workers(7),
            &EngineConfig::with_shards(2),
        );
        assert_eq!(report.result.num_crowdsourced(), 6);
        assert_eq!(report.result.num_deduced(), 2);
        assert!(report.completion > VirtualTime::ZERO);
        assert!(report.total_cost_cents > 0);
        for sp in cs.pairs() {
            assert_eq!(report.result.label_of(sp.pair), Some(truth.label_of(sp.pair)));
        }
    }

    #[test]
    fn non_transitive_baseline_crowdsources_everything() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let oracle = SharedGroundTruth::new(&truth);
        let report = run_non_transitive_with_oracle(
            cs.num_objects(),
            &order,
            &oracle,
            &EngineConfig::with_shards(2),
        );
        assert_eq!(report.num_crowdsourced(), cs.len());
        assert_eq!(report.num_deduced(), 0);
    }

    #[test]
    fn empty_workload() {
        let truth = GroundTruth::all_distinct(4);
        let oracle = SharedGroundTruth::new(&truth);
        let report = run_with_oracle(4, &[], &oracle, &EngineConfig::default());
        assert_eq!(report.num_shards(), 0);
        assert_eq!(report.result.num_labeled(), 0);
        assert_eq!(report.completion, VirtualTime::ZERO);
    }
}
