//! The per-shard non-blocking state machine driven by the event loop.
//!
//! [`ShardTask`] is the poll-based reformulation of the blocking
//! [`crate::driver::drive_to_completion`] loop: instead of monopolizing a
//! worker thread while its platform simulates, a task exposes *when* it next
//! needs attention ([`ShardTask::next_wake`]) and does a bounded amount of
//! work per [`ShardTask::advance`] call. The event loop can therefore
//! multiplex thousands of shards over a handful of workers, always advancing
//! the shard with the earliest pending virtual event.
//!
//! The state machine:
//!
//! ```text
//! Publishing ──publish round──▶ AwaitingCrowd ──resolution──▶ Deducing
//!     ▲                               ▲       (feed answers)    │ │ │
//!     │ platform idle                 └─────publish / wait──────┘ │ │
//!     │ (defensive republish)                                     │ │
//!     └───────────────◀── all labeled ──▶ Done ◀──────────────────┘ │
//!                                                                   │
//!              round fully resolved + parking requested ──▶ Parked ─┘
//!                                       (re-sharding barrier)
//! ```
//!
//! Transition policy is byte-for-byte the blocking driver's: the first
//! round flushes unconditionally, *instant decision* recomputes the
//! publishable set after every HIT resolution, partial HITs flush only when
//! the platform would otherwise idle, and an idle platform with an
//! incomplete labeler must always yield a non-empty batch. With parking
//! disabled the event loop's per-shard outcome is bit-identical to the
//! thread-per-shard scheduler's (pinned by `tests/event_loop.rs`).
//!
//! ## Journaling points (crash safety)
//!
//! With a journal attached ([`ShardTask::attach_journal`]) the state
//! machine becomes a write-ahead logger at exactly two points:
//!
//! * entering `Deducing`, every resolution in the batch is appended as an
//!   [`crowdjoin_wal::AnswerRecord`] **before** any answer is fed to the
//!   labeler — the WAL discipline: a paid answer is durable before its
//!   effects (deductions, the next publish decision) exist anywhere;
//! * a drained platform at a round boundary (the `AwaitingCrowd` →
//!   `Publishing`/`Parked`/`Done` transition) appends an fsynced
//!   [`crowdjoin_wal::BarrierRecord`] snapshotting the platform's full
//!   counters, making every round a durable, verifiable recovery point.
//!
//! On resume the same two points run in reverse — in one of two modes,
//! chosen by the backend's
//! [`crowdjoin_sim::BackendFactory::deterministic_replay`]:
//!
//! * **re-execution** (deterministic backends, i.e. the simulator): while
//!   the journaled replay queue is non-empty, each produced record is
//!   checked bit-for-bit against the journal (pair, label, votes, virtual
//!   time, money) instead of being re-appended, and any divergence panics
//!   loudly rather than silently forking history;
//! * **feeding** ([`ShardTask::feed_replay`], external backends): the
//!   journaled answers are seeded straight into the labeler before the
//!   state machine starts, so the backend is never asked them again —
//!   re-execution is impossible when the answers came from the outside
//!   world.
//!
//! Either way the task counts replayed answers so the engine can report
//! how much of the run was already paid for.
//!
//! ## Task ids
//!
//! The task id handed to the backend encodes the **global pair** —
//! `(a << 32) | b` — so external backends can render the actual question
//! (which two records?) without any side channel. Backends must treat ids
//! as opaque; the simulator does.

use crate::labeler::ShardLabeler;
use crate::ordering::OrderingMode;
use crate::partition::Shard;
use crate::persist::snapshot_of;
use crate::report::{RoundMetric, ShardReport};
use crowdjoin_core::{Label, LabelingResult, Pair, Provenance, ScoredPair};
use crowdjoin_graph::UnionFind;
use crowdjoin_sim::{CrowdBackend, HitStager, ResolvedTask, TaskSpec, VirtualTime};
use crowdjoin_util::{FxHashMap, FxHashSet};
use crowdjoin_wal::{AnswerRecord, BarrierRecord, Journal, Record, ShardEvent};
use std::collections::VecDeque;
use std::sync::Arc;

/// Packs a (global) pair into the task id posted to the backend, making
/// every posted task self-describing — see the module docs.
#[must_use]
pub fn pair_task_id(pair: Pair) -> u64 {
    (u64::from(pair.a()) << 32) | u64::from(pair.b())
}

/// Inverse of [`pair_task_id`].
#[must_use]
pub fn task_id_pair(id: u64) -> Pair {
    Pair::new((id >> 32) as u32, (id & u32::MAX as u64) as u32)
}

/// Lifecycle state of a [`ShardTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The labeler has publishable pairs to stage and release.
    Publishing,
    /// HITs are in flight; the task sleeps until the platform's next event.
    AwaitingCrowd,
    /// A resolution batch is being fed back into the labeler.
    Deducing,
    /// The platform drained at a round boundary and the task waits for the
    /// re-sharding barrier (only entered when parking is requested).
    Parked,
    /// Every pair is labeled; the task can be turned into a report.
    Done,
}

/// What remains of a parked shard when the re-sharding barrier retires it:
/// a report carrying everything already paid for and decided, plus the open
/// work (and its deduction context) to fold into the next generation.
#[derive(Debug)]
pub(crate) struct RetiredShard {
    /// Labels of fully-labeled components, this incarnation's platform
    /// stats (all money it spent, including on still-open components), and
    /// its publish rounds.
    pub report: ShardReport,
    /// Every pair of a component that still has unlabeled pairs, in global
    /// ids, preserving the shard's labeling order.
    pub open_pairs: Vec<ScoredPair>,
    /// Crowdsourced answers already obtained for `open_pairs` (global ids);
    /// seeding them into the next generation's labeler re-derives the
    /// deduced labels too.
    pub known: Vec<(Pair, Label)>,
}

/// A non-blocking shard state machine: labeler + crowd backend + staging
/// policy, advanced cooperatively by the event loop. Generic over the
/// [`CrowdBackend`] that answers its questions — the simulator platform on
/// virtual time, or any external backend on wall-clock time.
#[derive(Debug)]
pub struct ShardTask<B: CrowdBackend> {
    shard: Shard,
    labeler: ShardLabeler,
    platform: B,
    stager: HitStager,
    ids: FxHashMap<u64, Pair>,
    instant_decision: bool,
    state: ShardState,
    /// Resolution batch stashed between `AwaitingCrowd` and `Deducing`.
    resolved: Vec<ResolvedTask>,
    /// Virtual time the stashed batch resolved at (journaled per answer).
    resolved_at: VirtualTime,
    /// Answer journal to append this task's records to, if the run is
    /// journaled.
    journal: Option<Arc<Journal>>,
    /// Journaled prefix of this shard's records, verified (not re-appended
    /// and not re-paid) as the resumed run re-derives them.
    replay: VecDeque<ShardEvent>,
    /// Answers consumed from `replay` so far.
    replayed_answers: usize,
    /// Cumulative platform spend covered by the last replayed record.
    replayed_cost_cents: u64,
    /// The initial publish round is exempt from the stuck assertion (an
    /// empty workload completes at construction instead).
    first_round: bool,
    /// Index under which this task reports (unique across re-sharding
    /// generations, unlike `shard.index` which restarts per generation).
    report_index: usize,
    /// Publish rounds already on this shard's critical path when the task
    /// was created — the sequential depth of the re-sharding generations
    /// behind it (0 for generation 0). Reported rounds are
    /// `base_rounds + own stager rounds`, so the job-level critical-path
    /// maximum counts chained generations sequentially, not as parallel
    /// shards.
    base_rounds: usize,
    /// Per-round telemetry, recorded at each publish release (pure
    /// bookkeeping over deterministic state — rolls up into
    /// [`ShardReport::rounds`], never feeds back into decisions).
    rounds: Vec<RoundMetric>,
    /// Peak simultaneously-unresolved published pairs.
    peak_unresolved: usize,
    /// Global metric handles (`--progress` reads these live).
    m_answers: std::sync::Arc<crowdjoin_obs::metrics::Counter>,
    m_queue: std::sync::Arc<crowdjoin_obs::metrics::Gauge>,
}

/// Human-readable state name for trace events.
fn state_name(s: ShardState) -> &'static str {
    match s {
        ShardState::Publishing => "Publishing",
        ShardState::AwaitingCrowd => "AwaitingCrowd",
        ShardState::Deducing => "Deducing",
        ShardState::Parked => "Parked",
        ShardState::Done => "Done",
    }
}

impl<B: CrowdBackend> ShardTask<B> {
    /// Creates a task for a fresh shard on its own backend, publishing
    /// under the given question-ordering policy.
    #[must_use]
    pub fn new(
        shard: Shard,
        platform: B,
        instant_decision: bool,
        report_index: usize,
        ordering: OrderingMode,
    ) -> Self {
        let labeler =
            ShardLabeler::with_ordering(shard.num_objects(), shard.pairs.clone(), ordering);
        Self::resume(shard, labeler, platform, instant_decision, report_index, 0)
    }

    /// Creates a task around an existing labeler (possibly pre-seeded with
    /// known answers by the re-sharding barrier), `base_rounds` publish
    /// rounds into the job's critical path.
    #[must_use]
    pub fn resume(
        shard: Shard,
        labeler: ShardLabeler,
        platform: B,
        instant_decision: bool,
        report_index: usize,
        base_rounds: usize,
    ) -> Self {
        let state = if labeler.is_complete() { ShardState::Done } else { ShardState::Publishing };
        let shard_tag = report_index as u32;
        Self {
            shard,
            labeler,
            platform,
            stager: HitStager::for_shard(shard_tag),
            ids: FxHashMap::default(),
            instant_decision,
            state,
            resolved: Vec::new(),
            resolved_at: VirtualTime::ZERO,
            journal: None,
            replay: VecDeque::new(),
            replayed_answers: 0,
            replayed_cost_cents: 0,
            first_round: true,
            report_index,
            base_rounds,
            rounds: Vec::new(),
            peak_unresolved: 0,
            m_answers: crowdjoin_obs::counter("engine.answers", shard_tag),
            m_queue: crowdjoin_obs::gauge("engine.unresolved_pairs", shard_tag),
        }
    }

    /// Attaches the answer journal: every record this task produces is
    /// appended to `sink`, except while `replay` (the journaled prefix of
    /// this shard's records, from a crashed run) is non-empty — those are
    /// verified against the journal instead, so a resumed run never
    /// re-appends or re-pays what the journal already holds.
    pub fn attach_journal(&mut self, sink: Option<Arc<Journal>>, replay: VecDeque<ShardEvent>) {
        self.journal = sink;
        self.replay = replay;
    }

    /// Feed-mode replay for **non-deterministic** backends: seeds every
    /// journaled answer straight into the labeler (crowdsourced provenance,
    /// deduction deltas re-derived) without touching the backend, so a
    /// resumed run never re-posts a paid-for question. Journaled barriers
    /// advance the inherited round count and the covered-spend watermark;
    /// the total journaled spend is folded into the backend's ledger via
    /// [`CrowdBackend::absorb_replayed_cost`] so the job's money report
    /// stays whole-run. Conflicts a noisy history contained are *not*
    /// re-counted (the crashed run already reported them; labels and money
    /// replay exactly).
    ///
    /// Deterministic backends must not use this — their replay is the
    /// bit-verified re-execution of [`Self::attach_journal`].
    ///
    /// # Panics
    ///
    /// Panics if called after the task has started (or on a journal whose
    /// answers do not belong to this shard — inputs changed between run
    /// and resume in a way the header fingerprint could not catch).
    pub fn feed_replay(&mut self, events: VecDeque<ShardEvent>) {
        assert!(
            self.first_round && self.stager.num_staged() == 0 && self.replay.is_empty(),
            "feed_replay must run before the task starts"
        );
        for event in events {
            match event {
                ShardEvent::Answer(a) => {
                    let global = Pair::new(a.a, a.b);
                    let local = self.shard.to_local(global).unwrap_or_else(|| {
                        panic!(
                            "journal divergence on shard {}: journaled answer {global} is not \
                             a pair of this shard",
                            self.report_index
                        )
                    });
                    let label = if a.matching { Label::Matching } else { Label::NonMatching };
                    self.labeler.seed_known(local, label);
                    self.replayed_answers += 1;
                    self.replayed_cost_cents = a.cost_cents;
                }
                ShardEvent::Barrier(b) => {
                    self.base_rounds = self.base_rounds.max(b.rounds as usize);
                    self.replayed_cost_cents = b.stats.total_cost_cents;
                }
            }
        }
        self.platform.absorb_replayed_cost(self.replayed_cost_cents);
        if self.labeler.is_complete() {
            self.state = ShardState::Done;
        }
    }

    /// Answers replayed from the journal so far (0 for non-resumed runs).
    #[must_use]
    pub fn replayed_answers(&self) -> usize {
        self.replayed_answers
    }

    /// Publish rounds on this shard's critical path so far: the sequential
    /// depth inherited from earlier generations plus this incarnation's own
    /// rounds.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.base_rounds + self.stager.publish_rounds()
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> ShardState {
        self.state
    }

    /// When this task next needs attention, in its platform's virtual time:
    /// the next platform event, or "now" when it has work ready (publishing,
    /// deducing, or an idle platform to republish into). `None` once done or
    /// parked.
    #[must_use]
    pub fn next_wake(&self) -> Option<VirtualTime> {
        match self.state {
            ShardState::Done | ShardState::Parked => None,
            ShardState::Publishing | ShardState::Deducing => Some(self.platform.now()),
            ShardState::AwaitingCrowd => {
                Some(self.platform.next_event_time().unwrap_or_else(|| self.platform.now()))
            }
        }
    }

    /// The task platform's current virtual time (the re-sharding barrier
    /// maximizes this over parked tasks).
    #[must_use]
    pub fn platform_now(&self) -> VirtualTime {
        self.platform.now()
    }

    /// Updates the state, emitting a `task.state` trace event when the
    /// transition is real and tracing is on (one relaxed load otherwise).
    fn set_state(&mut self, next: ShardState) {
        if crowdjoin_obs::enabled() && next != self.state {
            crowdjoin_obs::EventBuilder::new("engine", "task.state", self.report_index as u32)
                .virt(self.platform.now().0)
                .field("from", state_name(self.state))
                .field("to", state_name(next))
                .emit();
        }
        self.state = next;
    }

    /// Publishes staged pairs under a `backend.post` span and records the
    /// round's telemetry when anything went out.
    fn release_staged(&mut self, flush: bool) {
        let mut span =
            crowdjoin_obs::SpanGuard::new("engine", "backend.post", self.report_index as u32)
                .virt(self.platform.now().0);
        let published = self.stager.release(&mut self.platform, flush);
        span.set_field("pairs", published);
        drop(span);
        if published > 0 {
            let round = self.total_rounds();
            let result = self.labeler.result();
            let metric = RoundMetric {
                round,
                published,
                crowdsourced: result.num_crowdsourced(),
                deduced: result.num_deduced(),
                cost_cents: self.platform.stats().total_cost_cents,
                at: self.platform.now(),
            };
            self.rounds.push(metric);
        }
        self.note_queue_depth();
    }

    /// Tracks the crowd queue depth (peak for the report, gauge for live
    /// `--progress`).
    fn note_queue_depth(&mut self) {
        let depth = self.platform.num_unresolved_pairs();
        self.peak_unresolved = self.peak_unresolved.max(depth);
        self.m_queue.set(depth as i64);
    }

    fn stage(&mut self, batch: &[ScoredPair], truth_of: &(dyn Fn(Pair) -> bool + Sync)) {
        let tasks: Vec<TaskSpec> = batch
            .iter()
            .map(|sp| {
                let global = self.shard.to_global(sp.pair);
                let id = pair_task_id(global);
                self.ids.insert(id, sp.pair);
                TaskSpec { id, truth: truth_of(global), priority: sp.likelihood }
            })
            .collect();
        self.stager.stage(tasks);
    }

    /// Advances the state machine by one bounded step: publish a round, poll
    /// the platform up to its next event, or feed one resolution batch (and
    /// publish per the instant-decision policy). Returns with the task
    /// `Done`, `Parked` (re-sharding requested and the platform idled at a
    /// round boundary), or `AwaitingCrowd` with a fresh [`Self::next_wake`].
    ///
    /// `truth_of` supplies ground-truth answers in **global** ids, exactly
    /// like the blocking driver's closure.
    ///
    /// # Panics
    ///
    /// Panics if the labeler reports incomplete while the platform is idle
    /// and no batch is publishable — impossible for well-formed inputs.
    pub fn advance(&mut self, truth_of: &(dyn Fn(Pair) -> bool + Sync), park_on_idle: bool) {
        loop {
            match self.state {
                ShardState::Done | ShardState::Parked => return,
                ShardState::Publishing => {
                    let batch = self.labeler.next_batch();
                    self.stage(&batch, truth_of);
                    assert!(
                        self.first_round || self.stager.num_staged() > 0,
                        "labeler stuck: platform idle but only {} pairs labeled",
                        self.labeler.result().num_labeled()
                    );
                    self.first_round = false;
                    self.release_staged(true);
                    self.set_state(ShardState::AwaitingCrowd);
                    return;
                }
                ShardState::AwaitingCrowd => {
                    let Some(until) = self.platform.next_event_time() else {
                        // Platform drained at a round boundary: a durable,
                        // verifiable recovery point.
                        self.journal_round_boundary();
                        if self.labeler.is_complete() {
                            self.set_state(ShardState::Done);
                        } else if park_on_idle {
                            self.set_state(ShardState::Parked);
                        } else {
                            self.set_state(ShardState::Publishing);
                            continue;
                        }
                        return;
                    };
                    let mut poll_span = crowdjoin_obs::SpanGuard::new(
                        "engine",
                        "backend.poll",
                        self.report_index as u32,
                    )
                    .virt(until.0);
                    match self.platform.poll_completions(until) {
                        Some((at, resolved)) => {
                            poll_span.set_field("resolved", resolved.len());
                            drop(poll_span);
                            self.resolved = resolved;
                            self.resolved_at = at;
                            self.set_state(ShardState::Deducing);
                        }
                        // Events processed without a resolution; hand
                        // control back so the loop can reschedule fairly.
                        None => return,
                    }
                }
                ShardState::Deducing => {
                    let resolved = std::mem::take(&mut self.resolved);
                    // WAL discipline: every answer of the batch is durable
                    // (or verified against the journal) before any of them
                    // takes effect in the labeler.
                    self.journal_answers(&resolved);
                    for r in &resolved {
                        let pair = self.ids[&r.id];
                        let label = if r.label { Label::Matching } else { Label::NonMatching };
                        self.labeler.submit_answer(pair, label);
                    }
                    self.m_answers.add(resolved.len() as u64);
                    self.note_queue_depth();
                    if self.labeler.is_complete() {
                        self.set_state(ShardState::Done);
                        return;
                    }
                    // A fully-resolved round with nothing staged or awaiting
                    // is a clean round boundary: park there when re-sharding
                    // is on (publishing the next round is exactly what the
                    // barrier wants to do globally instead).
                    if park_on_idle
                        && self.platform.num_unresolved_pairs() == 0
                        && self.stager.num_staged() == 0
                        && self.labeler.num_outstanding() == 0
                    {
                        self.set_state(ShardState::Parked);
                        return;
                    }
                    let may_publish =
                        self.instant_decision || self.platform.num_unresolved_pairs() == 0;
                    if may_publish {
                        let batch = self.labeler.next_batch();
                        self.stage(&batch, truth_of);
                        // Flush partial HITs only when the platform would
                        // otherwise go idle waiting for them.
                        let flush = self.platform.num_unresolved_pairs() == 0;
                        self.release_staged(flush);
                    }
                    self.set_state(ShardState::AwaitingCrowd);
                    return;
                }
            }
        }
    }

    /// Journals (or, on resume, verifies) one batch of resolutions before
    /// they are applied. A record is appended only once the replay queue is
    /// exhausted — everything before that is history the crashed run
    /// already wrote and paid for.
    ///
    /// # Panics
    ///
    /// Panics on journal divergence (the resumed run produced a different
    /// answer than the journal — inputs, seeds, or flags changed) or on a
    /// journal I/O failure (continuing without durability would betray a
    /// later resume).
    fn journal_answers(&mut self, resolved: &[ResolvedTask]) {
        if self.journal.is_none() && self.replay.is_empty() {
            return;
        }
        let _span = crowdjoin_obs::SpanGuard::new("wal", "wal.append", self.report_index as u32)
            .virt(self.resolved_at.0)
            .field("answers", resolved.len());
        for r in resolved {
            let global = self.shard.to_global(self.ids[&r.id]);
            let record = AnswerRecord {
                shard: self.report_index as u32,
                a: global.a(),
                b: global.b(),
                matching: r.label,
                yes_votes: r.yes_votes,
                no_votes: r.no_votes,
                time: self.resolved_at.0,
                cost_cents: self.platform.stats().total_cost_cents,
            };
            match self.replay.pop_front() {
                Some(ShardEvent::Answer(journaled)) => {
                    assert_eq!(
                        journaled, record,
                        "journal divergence on shard {}: the resumed run re-derived a \
                         different answer than the journaled one",
                        self.report_index
                    );
                    self.replayed_answers += 1;
                    self.replayed_cost_cents = journaled.cost_cents;
                }
                Some(ShardEvent::Barrier(_)) => panic!(
                    "journal divergence on shard {}: journal holds a round barrier where \
                     the resumed run produced an answer",
                    self.report_index
                ),
                None => {
                    if let Some(journal) = &self.journal {
                        journal
                            .append(&Record::Answer(record))
                            .expect("answer journal append failed; refusing to continue unlogged");
                    }
                }
            }
        }
    }

    /// Journals (or, on resume, verifies) a fully-resolved round boundary:
    /// an fsynced barrier record snapshotting the platform's counters.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::journal_answers`].
    fn journal_round_boundary(&mut self) {
        if self.journal.is_none() && self.replay.is_empty() {
            return;
        }
        // Barrier appends fsync; the span makes that latency visible.
        let _span = crowdjoin_obs::SpanGuard::new("wal", "wal.barrier", self.report_index as u32)
            .virt(self.platform.now().0);
        let record = BarrierRecord {
            shard: self.report_index as u32,
            rounds: self.total_rounds() as u32,
            time: self.platform.now().0,
            stats: snapshot_of(&self.platform.stats()),
        };
        match self.replay.pop_front() {
            Some(ShardEvent::Barrier(journaled)) => {
                assert_eq!(
                    journaled, record,
                    "journal divergence on shard {}: round-barrier platform counters do \
                     not match the journaled ones",
                    self.report_index
                );
                self.replayed_cost_cents = journaled.stats.total_cost_cents;
            }
            Some(ShardEvent::Answer(_)) => panic!(
                "journal divergence on shard {}: journal holds an answer where the \
                 resumed run reached a round barrier",
                self.report_index
            ),
            None => {
                if let Some(journal) = &self.journal {
                    journal
                        .append_durable(&Record::Barrier(record))
                        .expect("barrier journal append failed; refusing to continue unlogged");
                }
            }
        }
    }

    /// Converts a finished task into its shard report.
    ///
    /// # Panics
    ///
    /// Panics if the task is not `Done`, or if journaled replay events
    /// remain unconsumed (the journal holds history this run never
    /// re-derived — a divergence).
    #[must_use]
    pub fn into_report(self) -> ShardReport {
        assert_eq!(self.state, ShardState::Done, "task must be done to report");
        assert!(
            self.replay.is_empty(),
            "journal divergence on shard {}: {} journaled event(s) were never re-derived",
            self.report_index,
            self.replay.len()
        );
        let publish_rounds = self.total_rounds();
        ShardReport {
            shard: self.report_index,
            num_objects: self.shard.num_objects(),
            num_pairs: self.shard.pairs.len(),
            num_components: self.shard.num_components,
            result: self.shard.globalize(&self.labeler.into_result()),
            stats: Some(self.platform.stats()),
            completion: self.platform.stats().last_resolution,
            publish_rounds,
            replayed_answers: self.replayed_answers,
            replayed_cost_cents: self.replayed_cost_cents,
            rounds: self.rounds,
            peak_unresolved: self.peak_unresolved,
        }
    }

    /// Retires a parked task at the re-sharding barrier: splits it into a
    /// report of everything decided and paid for so far, the open work to
    /// repartition, and the answers that rebuild its deduction context.
    ///
    /// # Panics
    ///
    /// Panics if the task is not `Parked` (the barrier only retires parked
    /// tasks, which by construction have nothing staged or outstanding).
    #[must_use]
    pub(crate) fn retire(self) -> RetiredShard {
        assert_eq!(self.state, ShardState::Parked, "only parked tasks retire");
        assert_eq!(self.labeler.num_outstanding(), 0, "parked task cannot await answers");
        assert_eq!(self.stager.num_staged(), 0, "parked task cannot hold staged pairs");
        assert!(
            self.replay.is_empty(),
            "journal divergence on shard {}: {} journaled event(s) were never re-derived \
             before parking",
            self.report_index,
            self.replay.len()
        );

        // Components over the shard's local candidate graph; a component is
        // *open* while any of its pairs is unlabeled.
        let mut uf = UnionFind::new(self.shard.num_objects());
        for sp in self.labeler.order() {
            uf.union(sp.pair.a(), sp.pair.b());
        }
        let comp_of = uf.component_ids();
        let mut open: FxHashSet<u32> = FxHashSet::default();
        for sp in self.labeler.unlabeled_pairs() {
            open.insert(comp_of[sp.pair.a() as usize]);
        }

        // Labels of closed components retire now; conflicts stay attributed
        // to this incarnation (replay into the next one never re-counts).
        let mut retired = LabelingResult::new();
        let mut closed_components: FxHashSet<u32> = FxHashSet::default();
        for lp in self.labeler.result().labeled_pairs() {
            let c = comp_of[lp.pair.a() as usize];
            if !open.contains(&c) {
                closed_components.insert(c);
                retired.record(self.shard.to_global(lp.pair), lp.label, lp.provenance);
            }
        }
        for _ in 0..self.labeler.result().num_conflicts() {
            retired.record_conflict();
        }

        let mut open_pairs = Vec::new();
        let mut known = Vec::new();
        for sp in self.labeler.order() {
            if !open.contains(&comp_of[sp.pair.a() as usize]) {
                continue;
            }
            let global = self.shard.to_global(sp.pair);
            open_pairs.push(ScoredPair::new(global, sp.likelihood));
            if self.labeler.result().provenance_of(sp.pair) == Some(Provenance::Crowdsourced) {
                let label = self.labeler.result().label_of(sp.pair).expect("labeled");
                known.push((global, label));
            }
        }

        let num_labeled = retired.num_labeled();
        RetiredShard {
            report: ShardReport {
                shard: self.report_index,
                num_objects: self.shard.num_objects(),
                num_pairs: num_labeled,
                num_components: closed_components.len(),
                result: retired,
                stats: Some(self.platform.stats()),
                completion: self.platform.stats().last_resolution,
                publish_rounds: self.total_rounds(),
                replayed_answers: self.replayed_answers,
                replayed_cost_cents: self.replayed_cost_cents,
                rounds: self.rounds.clone(),
                peak_unresolved: self.peak_unresolved,
            },
            open_pairs,
            known,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::drive_to_completion;
    use crowdjoin_core::{sort_pairs, CandidateSet, GroundTruth, SortStrategy};
    use crowdjoin_sim::{Platform, PlatformConfig};

    fn running_example() -> (CandidateSet, GroundTruth) {
        let truth = GroundTruth::from_clusters(6, &[vec![0, 1, 2], vec![3, 4]]);
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.95),
            ScoredPair::new(Pair::new(1, 2), 0.90),
            ScoredPair::new(Pair::new(0, 5), 0.85),
            ScoredPair::new(Pair::new(0, 2), 0.80),
            ScoredPair::new(Pair::new(3, 4), 0.75),
            ScoredPair::new(Pair::new(3, 5), 0.70),
            ScoredPair::new(Pair::new(1, 3), 0.65),
            ScoredPair::new(Pair::new(4, 5), 0.60),
        ];
        (CandidateSet::new(6, pairs), truth)
    }

    fn whole_universe_shard(cs: &CandidateSet) -> Shard {
        crate::partition::partition_candidates(cs.num_objects(), cs.pairs(), 1).shards.remove(0)
    }

    /// Driving a ShardTask to completion through `advance` must reproduce
    /// the blocking driver bit for bit: same labels, provenance, rounds,
    /// platform stats, and completion time.
    #[test]
    fn task_matches_blocking_driver_exactly() {
        let (cs, truth) = running_example();
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        for instant in [true, false] {
            let cfg = PlatformConfig::perfect_workers(17);

            let mut platform = Platform::new(cfg.clone());
            let mut labeler = ShardLabeler::new(cs.num_objects(), order.clone());
            let rounds = drive_to_completion(
                &mut labeler,
                &mut platform,
                instant,
                &|pair| truth.is_matching(pair),
                &mut |_, _, _| {},
            );

            let shard = whole_universe_shard(&cs);
            let mut task =
                ShardTask::new(shard, Platform::new(cfg), instant, 0, OrderingMode::Likelihood);
            let truth_of = |pair: Pair| truth.is_matching(pair);
            while task.state() != ShardState::Done {
                assert!(task.next_wake().is_some(), "active task must have a wake time");
                task.advance(&truth_of, false);
            }
            let report = task.into_report();

            assert_eq!(report.publish_rounds, rounds, "instant={instant}");
            assert_eq!(report.stats, Some(platform.stats()), "instant={instant}");
            assert_eq!(report.completion, platform.stats().last_resolution);
            let blocking = labeler.into_result();
            assert_eq!(report.result.num_crowdsourced(), blocking.num_crowdsourced());
            assert_eq!(report.result.num_deduced(), blocking.num_deduced());
            for sp in cs.pairs() {
                assert_eq!(report.result.label_of(sp.pair), blocking.label_of(sp.pair));
                assert_eq!(report.result.provenance_of(sp.pair), blocking.provenance_of(sp.pair));
            }
        }
    }

    /// With parking enabled the task stops at its first fully-resolved round
    /// boundary and retire() hands back exactly the open components and
    /// their crowdsourced context.
    #[test]
    fn parks_at_round_boundary_and_retires_open_work() {
        // A triangle over all-distinct objects plus a disjoint matching
        // pair: round 1 publishes (0,1), (1,2) and (3,4) — (0,2) is held as
        // presumed-deducible. The two non-matching answers refute the
        // deduction, so the shard needs a second round and parks before it.
        let pairs = vec![
            ScoredPair::new(Pair::new(0, 1), 0.9),
            ScoredPair::new(Pair::new(1, 2), 0.8),
            ScoredPair::new(Pair::new(0, 2), 0.7),
            ScoredPair::new(Pair::new(3, 4), 0.6),
        ];
        let cs = CandidateSet::new(5, pairs);
        let truth = GroundTruth::from_clusters(5, &[vec![3, 4]]);
        let order = sort_pairs(&cs, SortStrategy::ExpectedLikelihood);
        let shard = crate::partition::partition_candidates(5, &order, 1).shards.remove(0);
        let mut task = ShardTask::new(
            shard,
            Platform::new(PlatformConfig::perfect_workers(5)),
            true,
            3,
            OrderingMode::Likelihood,
        );
        let truth_of = |pair: Pair| truth.is_matching(pair);
        while !matches!(task.state(), ShardState::Parked | ShardState::Done) {
            task.advance(&truth_of, true);
        }
        assert_eq!(task.state(), ShardState::Parked);
        assert!(task.next_wake().is_none());

        let retired = task.retire();
        assert_eq!(retired.report.shard, 3);
        assert!(retired.report.stats.expect("platform stats").total_cost_cents > 0);
        // The {3,4} component closed in round 1 and retires with its label.
        assert_eq!(retired.report.result.num_labeled(), 1);
        assert_eq!(retired.report.result.label_of(Pair::new(3, 4)), Some(Label::Matching));
        // The triangle component stays open: all three of its pairs travel,
        // with the two answered ones as known context.
        let open: FxHashSet<Pair> = retired.open_pairs.iter().map(|sp| sp.pair).collect();
        assert_eq!(open, [Pair::new(0, 1), Pair::new(1, 2), Pair::new(0, 2)].into_iter().collect());
        let mut known = retired.known.clone();
        known.sort_by_key(|&(p, _)| p);
        assert_eq!(
            known,
            vec![(Pair::new(0, 1), Label::NonMatching), (Pair::new(1, 2), Label::NonMatching)]
        );

        // Seeding the known answers into a fresh labeler over the open pairs
        // resumes exactly where the shard parked: one pair left to publish.
        let resumed_shard =
            crate::partition::partition_candidates(5, &retired.open_pairs, 1).shards.remove(0);
        let mut labeler =
            ShardLabeler::new(resumed_shard.num_objects(), resumed_shard.pairs.clone());
        let known_of: FxHashMap<Pair, Label> = retired.known.iter().copied().collect();
        for sp in &resumed_shard.pairs {
            if let Some(&label) = known_of.get(&resumed_shard.to_global(sp.pair)) {
                labeler.seed_known(sp.pair, label);
            }
        }
        assert!(!labeler.is_complete());
        let batch = labeler.next_batch();
        assert_eq!(batch.len(), 1, "only (0,2) is left to crowdsource");
        assert_eq!(resumed_shard.to_global(batch[0].pair), Pair::new(0, 2));
    }
}
