//! Incremental transitive closure over a set of *tracked* pairs.
//!
//! The core labelers sweep every still-pending pair after each crowd answer
//! (`ParallelLabeler::sweep_deductions` is O(pending) per answer). At engine
//! scale that rescan dominates, so this module maintains the closure
//! **eagerly and incrementally**, in the style of semi-naive datalog
//! evaluation: only facts derived *by the newest label* propagate, nothing
//! is recomputed from scratch.
//!
//! The index keys every tracked-but-undecided pair by the unordered pair of
//! **cluster slots** of its endpoints (slots are the stable cluster ids of
//! [`ClusterGraph`]). The deduction rules of the paper then become index
//! operations on the structural events reported by
//! [`ClusterGraph::insert_tracked`]:
//!
//! * new non-matching cluster edge `(A, B)` → every pending pair keyed
//!   `(A, B)` is deducible **non-matching**;
//! * cluster merge `dropped → kept` → pending keys `(dropped, X)` re-key to
//!   `(kept, X)`; pairs keyed `(dropped, kept)` become **matching**; re-keyed
//!   pairs whose new key hits an existing cluster edge become
//!   **non-matching**; and each *new neighbor* the merge grafted onto `kept`
//!   resolves pending pairs keyed `(kept, neighbor)` as **non-matching**.
//!
//! Total work over a run is bounded by key migrations, which follow the
//! ClusterGraph's smaller-set merge rule — O(P log P) amortized for P
//! tracked pairs, versus O(P · answers) for the rescan strategy.

use crowdjoin_core::{Label, Pair};
use crowdjoin_graph::{ClusterGraph, ConflictError, InsertOutcome, TrackedInsert};
use crowdjoin_util::{FxHashMap, FxHashSet};

/// A newly deduced tracked pair: the caller-assigned id and the label.
pub type Deduction = (usize, Label);

/// Incrementally maintained positive/negative transitive closure.
#[derive(Debug, Clone)]
pub struct IncrementalClosure {
    graph: ClusterGraph,
    /// Unordered slot-pair key → caller ids of pending pairs between those
    /// clusters.
    pending: FxHashMap<(u32, u32), Vec<usize>>,
    /// Per slot: partner slots with at least one pending pair.
    partners: Vec<FxHashSet<u32>>,
    /// Pairs tracked and not yet resolved.
    num_pending: usize,
}

fn key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

impl IncrementalClosure {
    /// Creates a closure over objects `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            graph: ClusterGraph::new(n),
            pending: FxHashMap::default(),
            partners: vec![FxHashSet::default(); n],
            num_pending: 0,
        }
    }

    /// Number of tracked pairs not yet deducible.
    #[must_use]
    pub fn num_pending(&self) -> usize {
        self.num_pending
    }

    /// Read access to the underlying label graph.
    #[must_use]
    pub fn graph(&self) -> &ClusterGraph {
        &self.graph
    }

    /// Registers a pair of interest under the caller's `id`.
    ///
    /// Returns the label right away if the pair is already deducible
    /// (it is then *not* indexed); otherwise the pair is indexed and will be
    /// reported through [`Self::insert`]'s deduction output exactly once,
    /// when it first becomes deducible.
    pub fn track(&mut self, id: usize, pair: Pair) -> Option<Label> {
        let sa = self.graph.slot_of(pair.a());
        let sb = self.graph.slot_of(pair.b());
        if sa == sb {
            return Some(Label::Matching);
        }
        if self.graph.slots_adjacent(sa, sb) {
            return Some(Label::NonMatching);
        }
        self.pending.entry(key(sa, sb)).or_default().push(id);
        self.partners[sa as usize].insert(sb);
        self.partners[sb as usize].insert(sa);
        self.num_pending += 1;
        None
    }

    /// Attempts to deduce a pair's label from the labels inserted so far.
    pub fn deduce(&mut self, pair: Pair) -> Option<Label> {
        self.graph.deduce(pair.a(), pair.b())
    }

    /// Partner slots of `slot` with at least one pending pair, in index
    /// iteration order (deterministic for a fixed insert history).
    pub fn pending_partners(&self, slot: u32) -> impl Iterator<Item = u32> + '_ {
        self.partners[slot as usize].iter().copied()
    }

    /// Caller ids of pending pairs keyed by the unordered slot pair
    /// `(a, b)`; empty when no pending pair spans those clusters.
    #[must_use]
    pub fn pending_ids_between(&self, a: u32, b: u32) -> &[usize] {
        self.pending.get(&key(a, b)).map_or(&[], Vec::as_slice)
    }

    /// Number of pending pairs keyed by the unordered slot pair `(a, b)`.
    #[must_use]
    pub fn pending_count_between(&self, a: u32, b: u32) -> usize {
        self.pending_ids_between(a, b).len()
    }

    /// Inserts a crowd label and appends every tracked pair that *became*
    /// deducible to `deduced` (semi-naive delta propagation).
    ///
    /// On conflict (the label contradicts the existing closure) nothing
    /// changes and the error carries the deduced label — callers choose the
    /// resolution policy exactly as with [`ClusterGraph::insert`].
    pub fn insert(
        &mut self,
        pair: Pair,
        label: Label,
        deduced: &mut Vec<Deduction>,
    ) -> Result<InsertOutcome, ConflictError> {
        self.insert_impl(pair, label, deduced, None)
    }

    /// Like [`Self::insert`], additionally appending to `touched` every
    /// cluster slot whose pending-pair structure (pending counts between
    /// slot pairs, pending-partner sets, or non-matching adjacency) may have
    /// changed. The set is complete for first-order effects: any pair whose
    /// endpoints are all *outside* `touched` has the same pending
    /// neighborhood before and after the insert. Slots may repeat, and a
    /// dropped (merged-away) slot is never reported — only surviving slots
    /// appear.
    pub fn insert_tracking(
        &mut self,
        pair: Pair,
        label: Label,
        deduced: &mut Vec<Deduction>,
        touched: &mut Vec<u32>,
    ) -> Result<InsertOutcome, ConflictError> {
        self.insert_impl(pair, label, deduced, Some(touched))
    }

    fn insert_impl(
        &mut self,
        pair: Pair,
        label: Label,
        deduced: &mut Vec<Deduction>,
        touched: Option<&mut Vec<u32>>,
    ) -> Result<InsertOutcome, ConflictError> {
        let event = self.graph.insert_tracked(pair.a(), pair.b(), label)?;
        match event {
            TrackedInsert::Redundant => Ok(InsertOutcome::Redundant),
            TrackedInsert::NonMatchingEdge { slot_a, slot_b } => {
                if let Some(touched) = touched {
                    touched.push(slot_a);
                    touched.push(slot_b);
                }
                self.resolve_key(slot_a, slot_b, Label::NonMatching, deduced);
                Ok(InsertOutcome::Inserted)
            }
            TrackedInsert::Merge { kept_slot, dropped_slot, new_neighbors } => {
                self.apply_merge(kept_slot, dropped_slot, &new_neighbors, deduced, touched);
                Ok(InsertOutcome::Inserted)
            }
        }
    }

    /// Drains the pending list keyed `(a, b)`, reporting each pair with
    /// `label`.
    fn resolve_key(&mut self, a: u32, b: u32, label: Label, deduced: &mut Vec<Deduction>) {
        if let Some(ids) = self.pending.remove(&key(a, b)) {
            self.partners[a as usize].remove(&b);
            self.partners[b as usize].remove(&a);
            self.num_pending -= ids.len();
            deduced.extend(ids.into_iter().map(|id| (id, label)));
        }
    }

    /// Applies a cluster merge to the index.
    fn apply_merge(
        &mut self,
        kept: u32,
        dropped: u32,
        new_neighbors: &[u32],
        deduced: &mut Vec<Deduction>,
        touched: Option<&mut Vec<u32>>,
    ) {
        if let Some(touched) = touched {
            // The kept slot's merged pending/adjacency structure, every slot
            // that had pending pairs to the dropped side (their keys re-home
            // or resolve), and every neighbor the merge grafts onto the kept
            // cluster (new non-matching adjacency).
            touched.push(kept);
            touched.extend(self.partners[dropped as usize].iter().copied());
            touched.extend_from_slice(new_neighbors);
        }
        // Re-home every pending key involving the dropped slot.
        let dropped_partners = std::mem::take(&mut self.partners[dropped as usize]);
        for t in dropped_partners {
            let ids = self
                .pending
                .remove(&key(dropped, t))
                .expect("partner set and pending keys must agree");
            self.partners[t as usize].remove(&dropped);
            if t == kept {
                // Pairs between the two merging clusters: now matching.
                self.num_pending -= ids.len();
                deduced.extend(ids.into_iter().map(|id| (id, Label::Matching)));
            } else if self.graph.slots_adjacent(kept, t) {
                // The merged cluster already carries a non-matching edge to
                // t: one hop of negative transitivity.
                self.num_pending -= ids.len();
                deduced.extend(ids.into_iter().map(|id| (id, Label::NonMatching)));
            } else {
                // Still undecided; carried over under the surviving slot.
                self.partners[t as usize].insert(kept);
                self.partners[kept as usize].insert(t);
                self.pending.entry(key(kept, t)).or_default().extend(ids);
            }
        }
        // Cluster edges the merge grafted onto the kept side resolve pending
        // pairs between the kept cluster and those neighbors.
        for &t in new_neighbors {
            self.resolve_key(kept, t, Label::NonMatching, deduced);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    /// Reference: after each insert, the delta must equal the set of tracked
    /// pairs that switched from undeducible to deducible in a fresh graph.
    fn check_against_reference(n: usize, tracked: &[Pair], inserts: &[(Pair, Label)]) {
        let mut closure = IncrementalClosure::new(n);
        let mut immediately: Vec<(usize, Option<Label>)> = Vec::new();
        for (id, &pr) in tracked.iter().enumerate() {
            immediately.push((id, closure.track(id, pr)));
        }
        let mut resolved: FxHashMap<usize, Label> =
            immediately.iter().filter_map(|&(id, l)| l.map(|l| (id, l))).collect();

        let mut reference = ClusterGraph::new(n);
        for &(pr, label) in inserts {
            let before: Vec<Option<Label>> =
                tracked.iter().map(|t| reference.deduce(t.a(), t.b())).collect();
            let mut delta = Vec::new();
            let ours = closure.insert(pr, label, &mut delta);
            let refr = reference.insert(pr.a(), pr.b(), label);
            assert_eq!(ours.is_err(), refr.is_err(), "conflict behavior diverged on {pr}");
            let after: Vec<Option<Label>> =
                tracked.iter().map(|t| reference.deduce(t.a(), t.b())).collect();

            let mut expect: Vec<(usize, Label)> = before
                .iter()
                .zip(&after)
                .enumerate()
                .filter_map(|(id, (b, a))| match (b, a) {
                    (None, Some(l)) if !resolved.contains_key(&id) => Some((id, *l)),
                    _ => None,
                })
                .collect();
            expect.sort_unstable_by_key(|&(id, _)| id);
            delta.sort_unstable_by_key(|&(id, _)| id);
            assert_eq!(delta, expect, "delta diverged after inserting {pr} {label}");
            for (id, l) in delta {
                resolved.insert(id, l);
            }
        }
    }

    #[test]
    fn track_reports_already_deducible() {
        let mut c = IncrementalClosure::new(3);
        let mut delta = Vec::new();
        c.insert(p(0, 1), Label::Matching, &mut delta).unwrap();
        assert!(delta.is_empty());
        assert_eq!(c.track(0, p(0, 1)), Some(Label::Matching));
        assert_eq!(c.track(1, p(0, 2)), None);
        assert_eq!(c.num_pending(), 1);
    }

    #[test]
    fn positive_chain_delta() {
        let mut c = IncrementalClosure::new(4);
        let mut delta = Vec::new();
        assert_eq!(c.track(0, p(0, 2)), None); // will follow 0=1, 1=2
        assert_eq!(c.track(1, p(0, 3)), None);
        c.insert(p(0, 1), Label::Matching, &mut delta).unwrap();
        assert!(delta.is_empty());
        c.insert(p(1, 2), Label::Matching, &mut delta).unwrap();
        assert_eq!(delta, vec![(0, Label::Matching)]);
        delta.clear();
        c.insert(p(2, 3), Label::Matching, &mut delta).unwrap();
        assert_eq!(delta, vec![(1, Label::Matching)]);
        assert_eq!(c.num_pending(), 0);
    }

    #[test]
    fn negative_single_hop_delta() {
        let mut c = IncrementalClosure::new(3);
        let mut delta = Vec::new();
        c.track(7, p(0, 2));
        c.insert(p(0, 1), Label::Matching, &mut delta).unwrap();
        c.insert(p(1, 2), Label::NonMatching, &mut delta).unwrap();
        assert_eq!(delta, vec![(7, Label::NonMatching)]);
    }

    #[test]
    fn merge_with_existing_edge_resolves_nonmatching() {
        // track (1,2); 0≠2; then 0=1 merges and the pre-existing edge to
        // {2} makes (1,2) non-matching.
        let mut c = IncrementalClosure::new(3);
        let mut delta = Vec::new();
        c.track(0, p(1, 2));
        c.insert(p(0, 2), Label::NonMatching, &mut delta).unwrap();
        assert!(delta.is_empty());
        c.insert(p(0, 1), Label::Matching, &mut delta).unwrap();
        assert_eq!(delta, vec![(0, Label::NonMatching)]);
    }

    #[test]
    fn conflict_leaves_index_untouched() {
        let mut c = IncrementalClosure::new(3);
        let mut delta = Vec::new();
        c.track(0, p(0, 2));
        c.insert(p(0, 1), Label::Matching, &mut delta).unwrap();
        c.insert(p(1, 2), Label::Matching, &mut delta).unwrap();
        assert_eq!(delta, vec![(0, Label::Matching)]);
        delta.clear();
        let err = c.insert(p(0, 2), Label::NonMatching, &mut delta).unwrap_err();
        assert_eq!(err.deduced, Label::Matching);
        assert!(delta.is_empty());
    }

    #[test]
    fn paper_running_example_against_reference() {
        // Figure 3: all 8 candidate pairs tracked, answers arriving in the
        // expected-likelihood order.
        let tracked = [p(0, 1), p(1, 2), p(0, 5), p(0, 2), p(3, 4), p(3, 5), p(1, 3), p(4, 5)];
        let inserts = [
            (p(0, 1), Label::Matching),
            (p(1, 2), Label::Matching),
            (p(0, 5), Label::NonMatching),
            (p(3, 4), Label::Matching),
            (p(3, 5), Label::NonMatching),
            (p(1, 3), Label::NonMatching),
        ];
        check_against_reference(6, &tracked, &inserts);
    }

    #[test]
    fn randomized_against_reference() {
        // Deterministic pseudo-random instances exercise merge re-keying,
        // parallel-edge collapse, and new-neighbor grafting.
        let mut rng = crowdjoin_util::SplitMix64::new(0xC10_05E);
        for case in 0..200 {
            let n = 4 + (rng.next_u64() % 10) as usize;
            let mut tracked = Vec::new();
            let mut seen = FxHashSet::default();
            for _ in 0..n * 2 {
                let a = (rng.next_u64() % n as u64) as u32;
                let b = (rng.next_u64() % n as u64) as u32;
                if a != b && seen.insert(key(a, b)) {
                    tracked.push(p(a, b));
                }
            }
            // Consistent truth: entity = id % k.
            let k = 1 + (rng.next_u64() % 4) as u32;
            let label_of = |pr: Pair| {
                if pr.a() % k == pr.b() % k {
                    Label::Matching
                } else {
                    Label::NonMatching
                }
            };
            let mut inserts: Vec<(Pair, Label)> =
                tracked.iter().map(|&t| (t, label_of(t))).collect();
            // Shuffle arrival order.
            for i in (1..inserts.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                inserts.swap(i, j);
            }
            check_against_reference(n, &tracked, &inserts);
            let _ = case;
        }
    }
}
