//! The cooperative event loop: multiplexes many [`ShardTask`] state
//! machines over a bounded worker pool, with an optional re-sharding
//! barrier between publish rounds.
//!
//! ## Scheduling
//!
//! Every task exposes the virtual time at which it next needs attention
//! ([`ShardTask::next_wake`]); the loop keeps tasks in a min-heap on that
//! time and workers always advance the task with the earliest pending
//! event. Shards are disjoint workloads, so per-shard outcomes are
//! independent of worker count and interleaving — the loop drives thousands
//! of shards on two threads to the *same* labels, costs, and completion
//! times as the thread-per-shard scheduler (pinned by
//! `tests/event_loop.rs`). Workers never block on a platform: one
//! [`ShardTask::advance`] call does a bounded amount of simulation and
//! returns, so shard count is limited by memory, not threads.
//!
//! ## Dynamic re-sharding
//!
//! With [`crate::EngineConfig::reshard`] set, a task that drains its
//! platform at a round boundary *parks* instead of republishing. Once every
//! task is done or parked (a deterministic global barrier — no worker can
//! make progress), the loop retires the parked tasks, re-runs
//! [`partition_candidates`] over the pairs of still-open components, and
//! packs them into fewer shards as the working set shrinks (components that
//! collapsed early drop out entirely). Each merged shard gets a fresh
//! platform warped to the barrier's virtual time and a labeler re-seeded
//! with the already-paid-for crowd answers, so no deduction potential and
//! no money is lost. Fewer, fuller shards mean later rounds pack full HITs
//! instead of per-shard partial ones — directly shrinking
//! [`crate::EngineReport::partial_hit_waste`].
//!
//! ## Journaling
//!
//! A journaled run ([`crate::EngineConfig::journal`] /
//! [`crate::Engine::resume`]) threads one shared
//! [`crowdjoin_wal::Journal`] sink through the loop. The per-shard
//! journaling points live in [`ShardTask`]; the loop itself owns the two
//! global record kinds: an fsynced [`crowdjoin_wal::GenerationRecord`] at
//! every re-sharding barrier (before the merged generation's tasks are
//! enqueued) and one [`crowdjoin_wal::CompleteRecord`] when the job
//! finishes. On resume the loop hands each task the journaled replay queue
//! for its report index, and the deterministic re-execution consumes those
//! queues exactly — any leftover is a divergence and panics loudly.

use crate::engine::EngineConfig;
use crate::partition::{partition_candidates, Partition};
use crate::report::{EngineReport, ShardReport};
use crate::scheduler::effective_threads;
use crate::task::{ShardState, ShardTask};
use crate::ShardLabeler;
use crowdjoin_core::{GroundTruth, Label, Pair, ScoredPair};
use crowdjoin_sim::{BackendFactory, CrowdBackend, PlatformConfig, ShardContext, VirtualTime};
use crowdjoin_util::{derive_seed, FxHashMap};
use crowdjoin_wal as wal;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Derives the platform configuration for one shard of a generation: a
/// deterministic per-shard seed, and an even split of the configured crowd
/// across the generation's `active_shards` platforms (floored at
/// `assignments_per_hit` so HITs can still resolve).
///
/// Generation 0 reproduces the historical derivation exactly, which is what
/// keeps the event loop bit-identical to the thread-per-shard path.
pub(crate) fn shard_platform_config(
    base: &PlatformConfig,
    engine: &EngineConfig,
    generation: usize,
    shard_index: usize,
    active_shards: usize,
) -> PlatformConfig {
    PlatformConfig {
        seed: derive_seed(
            engine.seed ^ base.seed,
            shard_index as u64 | ((generation as u64) << 40),
        ),
        num_workers: (base.num_workers / active_shards.max(1))
            .max(base.assignments_per_hit as usize),
        ..base.clone()
    }
}

/// A journal attached to one event-loop run: the append sink plus the
/// replay queues of a resumed journal (all empty for a fresh journaled
/// run).
pub(crate) struct JournalRun {
    /// Shared append sink; tasks and the loop clone the `Arc`.
    pub sink: Arc<wal::Journal>,
    /// Journaled history to verify instead of re-append, split per shard.
    pub plan: wal::ReplayPlan,
}

/// Shared mutable scheduler state (behind one mutex; workers hold it only
/// between advances, never while simulating).
struct LoopState<B: CrowdBackend> {
    /// Min-heap of `(wake time, slot)`; the slot index breaks ties
    /// deterministically.
    heap: BinaryHeap<Reverse<(VirtualTime, usize)>>,
    /// Slot-indexed task storage; `None` while a worker holds the task or
    /// after it finished.
    slots: Vec<Option<ShardTask<B>>>,
    /// Tasks waiting at the re-sharding barrier.
    parked: Vec<ShardTask<B>>,
    /// Tasks currently held by workers.
    inflight: usize,
    /// Tasks not yet `Done` (in the heap, in flight, or parked).
    active: usize,
    /// Completed shard reports (current and retired generations).
    finished: Vec<ShardReport>,
    /// Allocator for report indices across generations.
    next_report_index: usize,
    /// Re-sharding generations performed so far.
    generations: usize,
    /// Replay queues of shard incarnations not yet created (consumed at
    /// task creation; must be empty when the loop finishes).
    replay_shards: std::collections::BTreeMap<u32, VecDeque<wal::ShardEvent>>,
    /// Journaled re-sharding barriers to verify instead of re-append.
    replay_generations: VecDeque<wal::GenerationRecord>,
}

/// Everything workers need by reference.
struct LoopCtx<'a, F: BackendFactory> {
    truth: &'a GroundTruth,
    /// Creates the per-shard backends and owns the clock workers wait on.
    factory: &'a F,
    platform_cfg: &'a PlatformConfig,
    engine_cfg: &'a EngineConfig,
    num_objects: usize,
    initial_shards: usize,
    total_pairs: usize,
    /// Position of each pair in the caller's global labeling order, so
    /// re-sharding can merge open pairs back into that exact order (the
    /// order encodes the sort strategy — it decides which pairs get
    /// crowdsourced vs deduced and must survive the barrier).
    order_position: FxHashMap<Pair, usize>,
    /// Answer-journal sink of a journaled run.
    journal: Option<Arc<wal::Journal>>,
}

/// Runs a partitioned workload on the event loop and stitches the merged
/// report. The entry point behind [`crate::run_on_platform`] and
/// [`crate::Engine::run_with_backend`]; `order` is the same global labeling
/// order the partition was built from, `factory` creates the per-shard
/// [`CrowdBackend`]s and owns the [`crowdjoin_sim::TimeSource`] workers
/// wait on.
#[allow(clippy::too_many_arguments)] // crate-internal; the one caller is Engine::run_event_loop
pub(crate) fn run_event_loop<F: BackendFactory>(
    num_objects: usize,
    order: &[ScoredPair],
    partition: Partition,
    truth: &GroundTruth,
    factory: &F,
    platform_cfg: &PlatformConfig,
    engine_cfg: &EngineConfig,
    journal: Option<JournalRun>,
) -> EngineReport {
    let deterministic = factory.deterministic_replay();
    let num_components = partition.num_components;
    let shards = partition.shards;
    let (sink, replay_shards, replay_generations, journal_complete) = match journal {
        Some(j) => (Some(j.sink), j.plan.shards, j.plan.generations, j.plan.complete),
        None => (None, std::collections::BTreeMap::new(), VecDeque::new(), None),
    };
    if shards.is_empty() {
        let mut report = EngineReport::from_shards(Vec::new(), num_components);
        report.fed_replay = !deterministic;
        journal_completion(sink.as_deref(), journal_complete, &report, deterministic);
        return report;
    }

    let initial_shards = shards.len();
    let total_pairs: usize = shards.iter().map(|s| s.pairs.len()).sum();
    let workers = effective_threads(engine_cfg.num_threads, initial_shards);

    let mut state = LoopState {
        heap: BinaryHeap::with_capacity(initial_shards),
        slots: Vec::with_capacity(initial_shards),
        parked: Vec::new(),
        inflight: 0,
        active: 0,
        finished: Vec::new(),
        next_report_index: initial_shards,
        generations: 0,
        replay_shards,
        replay_generations,
    };
    for shard in shards {
        let cfg = shard_platform_config(platform_cfg, engine_cfg, 0, shard.index, initial_shards);
        let index = shard.index;
        let shard_ctx = ShardContext {
            generation: 0,
            shard_index: index,
            active_shards: initial_shards,
            report_index: index,
        };
        let backend = factory.create(&cfg, &shard_ctx);
        let mut task =
            ShardTask::new(shard, backend, engine_cfg.instant_decision, index, engine_cfg.order);
        if sink.is_some() {
            let replay = state.replay_shards.remove(&(index as u32)).unwrap_or_default();
            if deterministic {
                task.attach_journal(sink.clone(), replay);
            } else {
                // Non-deterministic backends cannot re-execute history:
                // journaled answers are fed to the labeler and only new
                // records append.
                task.feed_replay(replay);
                task.attach_journal(sink.clone(), VecDeque::new());
            }
        }
        enqueue(&mut state, task);
    }

    // Only the re-sharding barrier reads the position map; don't pay the
    // O(total pairs) build on default (reshard-off) runs.
    let order_position: FxHashMap<Pair, usize> = if engine_cfg.reshard {
        order.iter().enumerate().map(|(i, sp)| (sp.pair, i)).collect()
    } else {
        FxHashMap::default()
    };
    let ctx = LoopCtx {
        truth,
        factory,
        platform_cfg,
        engine_cfg,
        num_objects,
        initial_shards,
        total_pairs,
        order_position,
        journal: sink.clone(),
    };
    let state = Mutex::new(state);
    let cv = Condvar::new();
    if workers <= 1 {
        worker_loop(&state, &cv, &ctx);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&state, &cv, &ctx));
            }
        });
    }

    let state = state.into_inner().expect("event loop mutex poisoned");
    debug_assert_eq!(state.active, 0);
    assert!(
        state.replay_shards.is_empty(),
        "journal divergence: journal holds records for {} shard incarnation(s) the resumed \
         run never created",
        state.replay_shards.len()
    );
    assert!(
        state.replay_generations.is_empty(),
        "journal divergence: {} journaled re-sharding barrier(s) were never re-derived",
        state.replay_generations.len()
    );
    let mut reports = state.finished;
    reports.sort_unstable_by_key(|r| r.shard);

    // `from_shards` takes completion as the per-shard maximum — the
    // virtual-time critical path (re-sharded generations warp past their
    // predecessors, so the maximum spans incarnations too).
    let mut report = EngineReport::from_shards(reports, num_components);
    report.reshard_generations = state.generations;
    report.fed_replay = !deterministic;
    journal_completion(sink.as_deref(), journal_complete, &report, deterministic);
    report
}

/// Appends (or, on a resume whose journal already ends with one, verifies)
/// the job-completion record.
///
/// Under re-execution replay (`deterministic`) the whole record must match
/// bit-for-bit — answers, money, completion time. Under feed replay the
/// backend's counters only cover what *this* run posted, so the answer
/// total is `replayed + new`, money is checked against the absorbed
/// ledger, and the completion time — wall-clock, different every run — is
/// not compared.
///
/// # Panics
///
/// Panics on journal divergence or I/O failure.
fn journal_completion(
    sink: Option<&wal::Journal>,
    journaled: Option<wal::CompleteRecord>,
    report: &EngineReport,
    deterministic: bool,
) {
    let Some(sink) = sink else { return };
    // `num_crowd_answers` is replay-mode aware (via `fed_replay`), so this
    // is the whole-job answer count either way.
    let record = wal::CompleteRecord {
        answers: report.num_crowd_answers() as u64,
        cost_cents: report.total_cost_cents,
        completion: report.completion.0,
    };
    match journaled {
        Some(j) if deterministic => assert_eq!(
            j, record,
            "journal divergence: the resumed run finished with different totals than the \
             journaled completion record"
        ),
        Some(j) => {
            assert_eq!(
                (j.answers, j.cost_cents),
                (record.answers, record.cost_cents),
                "journal divergence: the fed-replay resume finished with different \
                 answer/money totals than the journaled completion record"
            );
        }
        None => sink
            .append_durable(&wal::Record::Complete(record))
            .expect("completion journal append failed"),
    }
}

/// Inserts a task into the scheduler (or straight into `finished` when it
/// completed at construction, e.g. an empty workload).
fn enqueue<B: CrowdBackend>(state: &mut LoopState<B>, task: ShardTask<B>) {
    match task.next_wake() {
        Some(wake) => {
            let slot = state.slots.len();
            state.slots.push(Some(task));
            state.heap.push(Reverse((wake, slot)));
            state.active += 1;
        }
        None => {
            debug_assert_eq!(task.state(), ShardState::Done);
            state.finished.push(task.into_report());
        }
    }
}

/// Restores scheduler counters if [`ShardTask::advance`] panics while the
/// mutex is unlocked: the task is lost, but peers must see consistent
/// `inflight`/`active` so they can drain the remaining shards and let the
/// thread scope re-raise the panic — instead of waiting forever on a count
/// that will never reach zero.
struct AdvanceGuard<'a, B: CrowdBackend> {
    state: &'a Mutex<LoopState<B>>,
    cv: &'a Condvar,
    armed: bool,
}

impl<B: CrowdBackend> Drop for AdvanceGuard<'_, B> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.state.lock() {
                st.inflight -= 1;
                st.active -= 1;
            }
            self.cv.notify_all();
        }
    }
}

/// One worker: pop the earliest-event task, wait out its deadline on the
/// factory's time source (a no-op on virtual time, a real sleep on wall
/// clock), advance it outside the lock, reinsert/park/finish it, and run
/// the re-sharding barrier when no task can progress otherwise.
fn worker_loop<F: BackendFactory>(
    state: &Mutex<LoopState<F::Backend>>,
    cv: &Condvar,
    ctx: &LoopCtx<'_, F>,
) {
    let truth_of = |pair: Pair| ctx.truth.is_matching(pair);
    let park_on_idle = ctx.engine_cfg.reshard;
    let mut st = state.lock().expect("event loop mutex poisoned");
    loop {
        if st.active == 0 {
            cv.notify_all();
            return;
        }
        if let Some(Reverse((wake, slot))) = st.heap.pop() {
            let mut task = st.slots[slot].take().expect("scheduled slot must hold a task");
            st.inflight += 1;
            drop(st);

            // Wall-clock backends schedule polls in the future; sleep until
            // the deadline instead of busy-polling. Virtual time returns
            // immediately — polling is what advances it. Waits that really
            // slept (≥ 1ms of wall time) are traced as scheduling gaps;
            // virtual-time no-op waits would only be noise.
            if crowdjoin_obs::enabled() {
                let start = crowdjoin_obs::recorder::wall_micros();
                ctx.factory.time_source().wait_until(wake);
                let dur = crowdjoin_obs::recorder::wall_micros().saturating_sub(start);
                if dur >= 1000 {
                    crowdjoin_obs::record(crowdjoin_obs::TraceEvent {
                        kind: "loop.wait",
                        cat: "engine",
                        shard: crowdjoin_obs::NO_SHARD,
                        tid: crowdjoin_obs::recorder::thread_ordinal(),
                        wall_us: start,
                        dur_us: Some(dur),
                        virt_ms: Some(wake.0),
                        fields: vec![("slot", crowdjoin_obs::FieldValue::U64(slot as u64))],
                    });
                }
            } else {
                ctx.factory.time_source().wait_until(wake);
            }

            let mut guard = AdvanceGuard { state, cv, armed: true };
            task.advance(&truth_of, park_on_idle);
            guard.armed = false;

            st = state.lock().expect("event loop mutex poisoned");
            st.inflight -= 1;
            match task.state() {
                ShardState::Done => {
                    st.active -= 1;
                    st.finished.push(task.into_report());
                    // Termination and the reshard barrier gate on
                    // `active`/`inflight`; every waiter must re-check.
                    cv.notify_all();
                }
                ShardState::Parked => {
                    st.parked.push(task);
                    cv.notify_all();
                }
                _ => {
                    let wake = task.next_wake().expect("active task must have a wake time");
                    st.slots[slot] = Some(task);
                    st.heap.push(Reverse((wake, slot)));
                    // Exactly one unit of work appeared; one waiter suffices.
                    cv.notify_one();
                }
            }
            continue;
        }
        // Nothing runnable. If peers are mid-advance they may requeue work
        // (or park); wait for them. Otherwise every remaining task is
        // parked: this is the deterministic re-sharding barrier.
        if st.inflight > 0 {
            st = cv.wait(st).expect("event loop mutex poisoned");
            continue;
        }
        if !st.parked.is_empty() {
            reshard(&mut st, ctx);
            cv.notify_all();
        }
    }
}

/// The re-sharding barrier: retire every parked task, repartition the pairs
/// of still-open components into fewer shards (proportional to how much
/// work remains), and enqueue the merged generation on fresh backends that
/// continue the virtual timeline.
fn reshard<F: BackendFactory>(st: &mut LoopState<F::Backend>, ctx: &LoopCtx<'_, F>) {
    st.generations += 1;
    let parked = std::mem::take(&mut st.parked);
    st.active -= parked.len();
    let barrier = parked.iter().map(ShardTask::platform_now).max().unwrap_or(VirtualTime::ZERO);
    // The merged generation runs strictly after every parked round, so its
    // rounds chain onto the deepest critical path retired here.
    let barrier_rounds = parked.iter().map(ShardTask::total_rounds).max().unwrap_or(0);

    let mut open_pairs: Vec<ScoredPair> = Vec::new();
    let mut known: FxHashMap<Pair, Label> = FxHashMap::default();
    for task in parked {
        let retired = task.retire();
        st.finished.push(retired.report);
        open_pairs.extend(retired.open_pairs);
        known.extend(retired.known);
    }
    // Merge open pairs back into the caller's global labeling order: the
    // order encodes the sort strategy (it decides which pairs are
    // crowdsourced vs deduced within a component), so the barrier must not
    // impose its own.
    open_pairs.sort_unstable_by_key(|sp| ctx.order_position[&sp.pair]);

    // Merge shards as the working set shrinks: aim for at least a full
    // HIT's worth of pairs per shard (otherwise every merged shard still
    // flushes a tiny partial HIT each round), and never exceed the initial
    // pairs-per-shard balance. Shard count is sized to the *predicted
    // next-round publishable count* under the active ordering policy, not
    // the raw open-pair count — most open pairs are held as deducible, so
    // raw count over-provisions shards that then flush partial HITs.
    let publishable = predict_publishable(ctx, &open_pairs, &known);
    let min_load = ctx.total_pairs.div_ceil(ctx.initial_shards).max(ctx.platform_cfg.batch_size);
    let target = publishable.div_ceil(min_load.max(1)).clamp(1, ctx.initial_shards);
    let partition = partition_candidates(ctx.num_objects, &open_pairs, target);
    let active_shards = partition.shards.len().max(1);

    if crowdjoin_obs::enabled() {
        crowdjoin_obs::EventBuilder::new("engine", "engine.reshard", crowdjoin_obs::NO_SHARD)
            .virt(barrier.0)
            .field("generation", st.generations)
            .field("shards", active_shards)
            .field("open_pairs", open_pairs.len())
            .field("publishable", publishable)
            .field("rounds", barrier_rounds)
            .emit();
    }

    // The generation record goes to the journal before any merged task can
    // append an answer, so a journal always reads `…gen-N answers,
    // generation barrier, gen-N+1 answers…` in order.
    if ctx.journal.is_some() || !st.replay_generations.is_empty() {
        let record = wal::GenerationRecord {
            generation: st.generations as u32,
            shards: active_shards as u32,
            time: barrier.0,
            rounds: barrier_rounds as u32,
            open_pairs: open_pairs.len() as u64,
        };
        match st.replay_generations.pop_front() {
            Some(journaled) => assert_eq!(
                journaled, record,
                "journal divergence: re-sharding barrier {} does not match the journaled one",
                st.generations
            ),
            None => {
                if let Some(sink) = &ctx.journal {
                    sink.append_durable(&wal::Record::Generation(record))
                        .expect("generation journal append failed");
                }
            }
        }
    }

    for shard in partition.shards {
        let cfg = shard_platform_config(
            ctx.platform_cfg,
            ctx.engine_cfg,
            st.generations,
            shard.index,
            active_shards,
        );
        let report_index_for_ctx = st.next_report_index;
        let shard_ctx = ShardContext {
            generation: st.generations,
            shard_index: shard.index,
            active_shards,
            report_index: report_index_for_ctx,
        };
        let mut platform = ctx.factory.create(&cfg, &shard_ctx);
        platform.warp_to(barrier);
        let mut labeler = ShardLabeler::with_ordering(
            shard.num_objects(),
            shard.pairs.clone(),
            ctx.engine_cfg.order,
        );
        for sp in &shard.pairs {
            if let Some(&label) = known.get(&shard.to_global(sp.pair)) {
                labeler.seed_known(sp.pair, label);
            }
        }
        let report_index = report_index_for_ctx;
        st.next_report_index += 1;
        let mut task = ShardTask::resume(
            shard,
            labeler,
            platform,
            ctx.engine_cfg.instant_decision,
            report_index,
            barrier_rounds,
        );
        if ctx.journal.is_some() {
            // Journaled re-sharding runs are deterministic by construction
            // (the engine refuses the journal+reshard combination for
            // feed-replay backends), so this is always verify-mode replay.
            let replay = st.replay_shards.remove(&(report_index as u32)).unwrap_or_default();
            task.attach_journal(ctx.journal.clone(), replay);
        }
        enqueue(st, task);
    }
}

/// Predicts how many of the merged generation's open pairs the active
/// ordering policy would publish in its first round: a throwaway labeler
/// over the global open-pair order, seeded with every already-paid-for
/// answer, asked for one batch. Deterministic (pure function of the barrier
/// state and the engine config), so journal replay re-derives the same
/// shard target.
fn predict_publishable<F: BackendFactory>(
    ctx: &LoopCtx<'_, F>,
    open_pairs: &[ScoredPair],
    known: &FxHashMap<Pair, Label>,
) -> usize {
    let mut probe =
        ShardLabeler::with_ordering(ctx.num_objects, open_pairs.to_vec(), ctx.engine_cfg.order);
    for sp in open_pairs {
        if let Some(&label) = known.get(&sp.pair) {
            probe.seed_known(sp.pair, label);
        }
    }
    probe.next_batch().len()
}
