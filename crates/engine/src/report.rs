//! Merged outcome of a sharded engine run, with per-shard and per-round
//! metric rollups.

use crowdjoin_core::LabelingResult;
use crowdjoin_sim::{PlatformStats, VirtualTime};

/// One publish round as a shard saw it, recorded at release time. The
/// cumulative columns (`crowdsourced`, `deduced`, `cost_cents`) reflect
/// the shard's state **when the round was published** — i.e. before the
/// round's own answers arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundMetric {
    /// Publish round index on the shard's critical path (1-based;
    /// re-sharded generations continue their predecessors' count).
    pub round: usize,
    /// Pairs published by this release.
    pub published: usize,
    /// Cumulative crowdsourced labels when the round went out.
    pub crowdsourced: usize,
    /// Cumulative deduced labels when the round went out.
    pub deduced: usize,
    /// Cumulative platform spend (cents) when the round went out.
    pub cost_cents: u64,
    /// Virtual time of the release.
    pub at: VirtualTime,
}

/// Rolled-up per-shard telemetry derived from a [`ShardReport`]: the
/// paper's money/waste columns plus scheduling depth, in one row.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetrics {
    /// Report index of the shard incarnation.
    pub shard: usize,
    /// Pairs the crowd answered.
    pub crowdsourced: usize,
    /// Pairs deduced for free via transitivity.
    pub deduced: usize,
    /// Answers that contradicted an existing deduction.
    pub conflicts: usize,
    /// Publish rounds on the shard's critical path.
    pub publish_rounds: usize,
    /// Money spent by the shard's platform (cents); 0 for oracle runs.
    pub spend_cents: u64,
    /// Fraction of this shard's paid HIT pair slots left empty by partial
    /// HITs (0 when no platform or no slots).
    pub waste: f64,
    /// Highest number of simultaneously unresolved published pairs the
    /// shard ever had in flight (its peak crowd queue depth).
    pub peak_unresolved: usize,
    /// Crowd answers replayed from a journal instead of re-asked.
    pub replayed_answers: usize,
}

/// Outcome of one shard's labeling run. `result` is expressed in **global**
/// object ids (the engine maps back before reporting).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index within the partition.
    pub shard: usize,
    /// Objects in the shard.
    pub num_objects: usize,
    /// Candidate pairs the shard labeled.
    pub num_pairs: usize,
    /// Connected components packed into the shard.
    pub num_components: usize,
    /// The shard's labeling result, in global ids.
    pub result: LabelingResult,
    /// Platform statistics (platform-driven runs only).
    pub stats: Option<PlatformStats>,
    /// Virtual completion time of the shard (zero for oracle-driven runs).
    pub completion: VirtualTime,
    /// Publish rounds the shard's labeler needed.
    pub publish_rounds: usize,
    /// Crowd answers replayed from a journal instead of re-asked (0 unless
    /// the run was an [`crate::Engine::resume`]).
    pub replayed_answers: usize,
    /// The shard platform's cumulative spend already covered by the
    /// journal at its last replayed record — money the crashed run paid,
    /// not this one.
    pub replayed_cost_cents: u64,
    /// Per-round telemetry, ascending by round (empty for drivers that do
    /// not track rounds, e.g. oracle runs).
    pub rounds: Vec<RoundMetric>,
    /// Peak simultaneously-unresolved published pairs (crowd queue depth).
    pub peak_unresolved: usize,
}

impl ShardReport {
    /// This shard's rolled-up metric row.
    #[must_use]
    pub fn metrics(&self) -> ShardMetrics {
        let (spend_cents, waste) = match &self.stats {
            Some(st) => (
                st.total_cost_cents,
                if st.pair_slots == 0 {
                    0.0
                } else {
                    1.0 - st.pairs_published as f64 / st.pair_slots as f64
                },
            ),
            None => (0, 0.0),
        };
        ShardMetrics {
            shard: self.shard,
            crowdsourced: self.result.num_crowdsourced(),
            deduced: self.result.num_deduced(),
            conflicts: self.result.num_conflicts(),
            publish_rounds: self.publish_rounds,
            spend_cents,
            waste,
            peak_unresolved: self.peak_unresolved,
            replayed_answers: self.replayed_answers,
        }
    }
}

/// The stitched, job-level outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-shard reports, ascending by shard index.
    pub shards: Vec<ShardReport>,
    /// Merged labeling result over the global id space.
    pub result: LabelingResult,
    /// Job completion time: the virtual-time critical path, i.e. the
    /// maximum over shards (shards run concurrently on the platform).
    pub completion: VirtualTime,
    /// Total money cost in cents: the sum over shards.
    pub total_cost_cents: u64,
    /// Connected components found by the partitioner.
    pub num_components: usize,
    /// Dynamic re-sharding barriers the event loop ran (0 for the blocking
    /// driver, oracle runs, and event-loop runs with re-sharding off). When
    /// positive, `shards` holds one report per shard *incarnation*: retired
    /// generations carry the labels of their completed components plus all
    /// platform money they spent; merged successors carry the rest.
    pub reshard_generations: usize,
    /// `true` when this run replayed its journal by **feeding** (external,
    /// non-deterministic backends): journaled answers went straight into
    /// the labelers, so the backend counters only cover what *this* run
    /// posted. `false` for deterministic re-execution replay (and all
    /// non-resumed runs), where the re-executed platforms count everything.
    /// [`Self::num_crowd_answers`] uses this to report whole-job totals
    /// either way.
    pub fed_replay: bool,
}

impl EngineReport {
    /// Stitches shard reports (assumed ascending by shard index) into the
    /// job-level view.
    #[must_use]
    pub fn from_shards(shards: Vec<ShardReport>, num_components: usize) -> Self {
        let mut result = LabelingResult::new();
        let mut completion = VirtualTime::ZERO;
        let mut total_cost_cents = 0u64;
        for shard in &shards {
            for lp in shard.result.labeled_pairs() {
                result.record(lp.pair, lp.label, lp.provenance);
            }
            for _ in 0..shard.result.num_conflicts() {
                result.record_conflict();
            }
            completion = completion.max(shard.completion);
            if let Some(stats) = &shard.stats {
                total_cost_cents += stats.total_cost_cents;
            }
        }
        EngineReport {
            shards,
            result,
            completion,
            total_cost_cents,
            num_components,
            reshard_generations: 0,
            fed_replay: false,
        }
    }

    /// Number of shards the job ran on.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total pairs answered by the crowd (the money metric).
    #[must_use]
    pub fn num_crowdsourced(&self) -> usize {
        self.result.num_crowdsourced()
    }

    /// Total pairs deduced for free.
    #[must_use]
    pub fn num_deduced(&self) -> usize {
        self.result.num_deduced()
    }

    /// Publish rounds on the critical path (max over shards).
    #[must_use]
    pub fn critical_path_rounds(&self) -> usize {
        self.shards.iter().map(|s| s.publish_rounds).max().unwrap_or(0)
    }

    /// Crowd answers paid for across the whole job — for re-sharding runs
    /// this counts every *paid* answer once (unlike
    /// [`Self::num_crowdsourced`], which counts labeled pairs and can fall
    /// below it when a merged generation re-derives a redundant answer as
    /// deduced). On a fed-replay resume the journaled answers are added on
    /// top of the backend counters (which only saw this run's posts); under
    /// re-execution replay the platforms re-count them. Equals the
    /// journal's answer-record count on journaled runs either way; 0 for
    /// oracle-driven runs (no platforms).
    #[must_use]
    pub fn num_crowd_answers(&self) -> usize {
        let posted: usize =
            self.shards.iter().filter_map(|s| s.stats.as_ref()).map(|st| st.pairs_published).sum();
        if self.fed_replay {
            posted + self.num_replayed_answers()
        } else {
            posted
        }
    }

    /// Crowd answers replayed from a journal instead of re-asked (0 unless
    /// the run was an [`crate::Engine::resume`]).
    #[must_use]
    pub fn num_replayed_answers(&self) -> usize {
        self.shards.iter().map(|s| s.replayed_answers).sum()
    }

    /// Crowd answers this run actually paid for: everything the journal
    /// did not already cover.
    #[must_use]
    pub fn num_new_answers(&self) -> usize {
        self.num_crowd_answers() - self.num_replayed_answers()
    }

    /// Money (cents) already covered by the journal — spend the crashed
    /// run paid that this run did not repeat. Exact at round barriers;
    /// mid-round it excludes assignments that had not yet produced a
    /// journaled resolution.
    #[must_use]
    pub fn replayed_cost_cents(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed_cost_cents).sum()
    }

    /// Fraction of paid-for HIT pair slots left empty by partial HITs,
    /// aggregated over every shard platform: each published HIT reserves
    /// `batch_size` pair slots, so
    /// `1 − pairs_published / (hits_published × batch_size)`.
    ///
    /// Per-shard publishing fragments HIT packing — every shard flushes its
    /// own partial HIT per round (~30% of slots on small sharded workloads)
    /// — and since every HIT costs `assignments_per_hit` assignments
    /// regardless of fill, empty slots are money spent without questions
    /// asked. Dynamic re-sharding exists to shrink this number. Returns 0
    /// for oracle-driven runs (no platforms).
    #[must_use]
    pub fn partial_hit_waste(&self) -> f64 {
        let (published, slots) = self
            .shards
            .iter()
            .filter_map(|s| s.stats.as_ref())
            .fold((0usize, 0usize), |(p, c), st| (p + st.pairs_published, c + st.pair_slots));
        if slots == 0 {
            0.0
        } else {
            1.0 - published as f64 / slots as f64
        }
    }

    /// Rolled-up per-shard metric rows, ascending by shard index.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.shards.iter().map(ShardReport::metrics).collect()
    }

    /// Job-level per-round telemetry: for each publish round on the
    /// critical path, pairs published that round (summed over shards)
    /// plus the cumulative crowdsourced/deduced/spend totals as of each
    /// shard's latest release at or before that round (a shard that
    /// finished early carries its final values forward). `at` is the
    /// latest release time of the round. Empty for oracle runs.
    #[must_use]
    pub fn round_metrics(&self) -> Vec<RoundMetric> {
        let last_round =
            self.shards.iter().filter_map(|s| s.rounds.last()).map(|r| r.round).max().unwrap_or(0);
        (1..=last_round)
            .map(|round| {
                let mut m = RoundMetric { round, ..RoundMetric::default() };
                for shard in &self.shards {
                    for r in shard.rounds.iter().filter(|r| r.round == round) {
                        m.published += r.published;
                        m.at = m.at.max(r.at);
                    }
                    if let Some(r) = shard.rounds.iter().rev().find(|r| r.round <= round) {
                        m.crowdsourced += r.crowdsourced;
                        m.deduced += r.deduced;
                        m.cost_cents += r.cost_cents;
                    }
                }
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::{Label, Pair, Provenance};

    fn shard_report(shard: usize) -> ShardReport {
        ShardReport {
            shard,
            num_objects: 2,
            num_pairs: 1,
            num_components: 1,
            result: LabelingResult::new(),
            stats: None,
            completion: VirtualTime::ZERO,
            publish_rounds: 0,
            replayed_answers: 0,
            replayed_cost_cents: 0,
            rounds: Vec::new(),
            peak_unresolved: 0,
        }
    }

    /// A job resolved entirely by deduction publishes zero pair slots;
    /// the waste ratio must report 0, never NaN (the satellite bug this
    /// test pins).
    #[test]
    fn waste_is_zero_not_nan_with_zero_published_slots() {
        let mut all_deduced = shard_report(0);
        all_deduced.result.record(Pair::new(0, 1), Label::Matching, Provenance::Deduced);
        all_deduced.stats = Some(PlatformStats::default());
        let report = EngineReport::from_shards(vec![all_deduced], 1);
        assert_eq!(report.partial_hit_waste(), 0.0);
        assert_eq!(report.shard_metrics()[0].waste, 0.0);
        assert!(!report.partial_hit_waste().is_nan());

        // No platforms at all (oracle run) is equally guarded.
        let oracle = EngineReport::from_shards(vec![shard_report(0)], 1);
        assert_eq!(oracle.partial_hit_waste(), 0.0);
    }

    #[test]
    fn round_metrics_aggregate_and_carry_forward() {
        let mut a = shard_report(0);
        a.rounds = vec![
            RoundMetric {
                round: 1,
                published: 20,
                cost_cents: 0,
                at: VirtualTime(10),
                ..Default::default()
            },
            RoundMetric {
                round: 2,
                published: 5,
                crowdsourced: 20,
                deduced: 3,
                cost_cents: 120,
                at: VirtualTime(40),
            },
        ];
        let mut b = shard_report(1);
        b.rounds = vec![RoundMetric {
            round: 1,
            published: 10,
            cost_cents: 0,
            at: VirtualTime(25),
            ..Default::default()
        }];
        let report = EngineReport::from_shards(vec![a, b], 2);
        let rounds = report.round_metrics();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].published, 30);
        assert_eq!(rounds[0].at, VirtualTime(25));
        // Round 2: only shard 0 published, shard 1 carries its round-1
        // cumulative values forward.
        assert_eq!(rounds[1].published, 5);
        assert_eq!(rounds[1].crowdsourced, 20);
        assert_eq!(rounds[1].deduced, 3);
        assert_eq!(rounds[1].cost_cents, 120);
        assert_eq!(rounds[1].at, VirtualTime(40));
    }
}
