//! Merged outcome of a sharded engine run.

use crowdjoin_core::LabelingResult;
use crowdjoin_sim::{PlatformStats, VirtualTime};

/// Outcome of one shard's labeling run. `result` is expressed in **global**
/// object ids (the engine maps back before reporting).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index within the partition.
    pub shard: usize,
    /// Objects in the shard.
    pub num_objects: usize,
    /// Candidate pairs the shard labeled.
    pub num_pairs: usize,
    /// Connected components packed into the shard.
    pub num_components: usize,
    /// The shard's labeling result, in global ids.
    pub result: LabelingResult,
    /// Platform statistics (platform-driven runs only).
    pub stats: Option<PlatformStats>,
    /// Virtual completion time of the shard (zero for oracle-driven runs).
    pub completion: VirtualTime,
    /// Publish rounds the shard's labeler needed.
    pub publish_rounds: usize,
    /// Crowd answers replayed from a journal instead of re-asked (0 unless
    /// the run was an [`crate::Engine::resume`]).
    pub replayed_answers: usize,
    /// The shard platform's cumulative spend already covered by the
    /// journal at its last replayed record — money the crashed run paid,
    /// not this one.
    pub replayed_cost_cents: u64,
}

/// The stitched, job-level outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-shard reports, ascending by shard index.
    pub shards: Vec<ShardReport>,
    /// Merged labeling result over the global id space.
    pub result: LabelingResult,
    /// Job completion time: the virtual-time critical path, i.e. the
    /// maximum over shards (shards run concurrently on the platform).
    pub completion: VirtualTime,
    /// Total money cost in cents: the sum over shards.
    pub total_cost_cents: u64,
    /// Connected components found by the partitioner.
    pub num_components: usize,
    /// Dynamic re-sharding barriers the event loop ran (0 for the blocking
    /// driver, oracle runs, and event-loop runs with re-sharding off). When
    /// positive, `shards` holds one report per shard *incarnation*: retired
    /// generations carry the labels of their completed components plus all
    /// platform money they spent; merged successors carry the rest.
    pub reshard_generations: usize,
    /// `true` when this run replayed its journal by **feeding** (external,
    /// non-deterministic backends): journaled answers went straight into
    /// the labelers, so the backend counters only cover what *this* run
    /// posted. `false` for deterministic re-execution replay (and all
    /// non-resumed runs), where the re-executed platforms count everything.
    /// [`Self::num_crowd_answers`] uses this to report whole-job totals
    /// either way.
    pub fed_replay: bool,
}

impl EngineReport {
    /// Stitches shard reports (assumed ascending by shard index) into the
    /// job-level view.
    #[must_use]
    pub fn from_shards(shards: Vec<ShardReport>, num_components: usize) -> Self {
        let mut result = LabelingResult::new();
        let mut completion = VirtualTime::ZERO;
        let mut total_cost_cents = 0u64;
        for shard in &shards {
            for lp in shard.result.labeled_pairs() {
                result.record(lp.pair, lp.label, lp.provenance);
            }
            for _ in 0..shard.result.num_conflicts() {
                result.record_conflict();
            }
            completion = completion.max(shard.completion);
            if let Some(stats) = &shard.stats {
                total_cost_cents += stats.total_cost_cents;
            }
        }
        EngineReport {
            shards,
            result,
            completion,
            total_cost_cents,
            num_components,
            reshard_generations: 0,
            fed_replay: false,
        }
    }

    /// Number of shards the job ran on.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total pairs answered by the crowd (the money metric).
    #[must_use]
    pub fn num_crowdsourced(&self) -> usize {
        self.result.num_crowdsourced()
    }

    /// Total pairs deduced for free.
    #[must_use]
    pub fn num_deduced(&self) -> usize {
        self.result.num_deduced()
    }

    /// Publish rounds on the critical path (max over shards).
    #[must_use]
    pub fn critical_path_rounds(&self) -> usize {
        self.shards.iter().map(|s| s.publish_rounds).max().unwrap_or(0)
    }

    /// Crowd answers paid for across the whole job — for re-sharding runs
    /// this counts every *paid* answer once (unlike
    /// [`Self::num_crowdsourced`], which counts labeled pairs and can fall
    /// below it when a merged generation re-derives a redundant answer as
    /// deduced). On a fed-replay resume the journaled answers are added on
    /// top of the backend counters (which only saw this run's posts); under
    /// re-execution replay the platforms re-count them. Equals the
    /// journal's answer-record count on journaled runs either way; 0 for
    /// oracle-driven runs (no platforms).
    #[must_use]
    pub fn num_crowd_answers(&self) -> usize {
        let posted: usize =
            self.shards.iter().filter_map(|s| s.stats.as_ref()).map(|st| st.pairs_published).sum();
        if self.fed_replay {
            posted + self.num_replayed_answers()
        } else {
            posted
        }
    }

    /// Crowd answers replayed from a journal instead of re-asked (0 unless
    /// the run was an [`crate::Engine::resume`]).
    #[must_use]
    pub fn num_replayed_answers(&self) -> usize {
        self.shards.iter().map(|s| s.replayed_answers).sum()
    }

    /// Crowd answers this run actually paid for: everything the journal
    /// did not already cover.
    #[must_use]
    pub fn num_new_answers(&self) -> usize {
        self.num_crowd_answers() - self.num_replayed_answers()
    }

    /// Money (cents) already covered by the journal — spend the crashed
    /// run paid that this run did not repeat. Exact at round barriers;
    /// mid-round it excludes assignments that had not yet produced a
    /// journaled resolution.
    #[must_use]
    pub fn replayed_cost_cents(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed_cost_cents).sum()
    }

    /// Fraction of paid-for HIT pair slots left empty by partial HITs,
    /// aggregated over every shard platform: each published HIT reserves
    /// `batch_size` pair slots, so
    /// `1 − pairs_published / (hits_published × batch_size)`.
    ///
    /// Per-shard publishing fragments HIT packing — every shard flushes its
    /// own partial HIT per round (~30% of slots on small sharded workloads)
    /// — and since every HIT costs `assignments_per_hit` assignments
    /// regardless of fill, empty slots are money spent without questions
    /// asked. Dynamic re-sharding exists to shrink this number. Returns 0
    /// for oracle-driven runs (no platforms).
    #[must_use]
    pub fn partial_hit_waste(&self) -> f64 {
        let (published, slots) = self
            .shards
            .iter()
            .filter_map(|s| s.stats.as_ref())
            .fold((0usize, 0usize), |(p, c), st| (p + st.pairs_published, c + st.pair_slots));
        if slots == 0 {
            0.0
        } else {
            1.0 - published as f64 / slots as f64
        }
    }
}
