//! The platform drive loop, shared by the single-platform runner (in the
//! `crowdjoin` facade) and the engine's per-shard driver.
//!
//! Policy encoded here, in one place:
//!
//! * publishable pairs are staged and released in full HITs
//!   ([`HitStager`]), flushing partial HITs only when the platform would
//!   otherwise idle;
//! * with *instant decision* the publishable set is recomputed after every
//!   HIT resolution, otherwise only once nothing is outstanding;
//! * an idle platform with an incomplete labeler must always yield a
//!   non-empty batch (anything else means the algorithm cannot progress).

use crowdjoin_core::{Label, Pair, ParallelLabeler, ScoredPair};
use crowdjoin_sim::{HitStager, Platform, TaskSpec, VirtualTime};
use crowdjoin_util::FxHashMap;

/// A labeling state machine the platform driver can run: both the core
/// [`ParallelLabeler`] and the engine's [`crate::ShardLabeler`] qualify.
pub trait PlatformDriveable {
    /// Algorithm 3: pairs that must be crowdsourced under current
    /// knowledge, marked as published.
    fn next_batch(&mut self) -> Vec<ScoredPair>;
    /// Feeds one crowd answer.
    fn submit_answer(&mut self, pair: Pair, answer: Label);
    /// `true` once every pair is labeled.
    fn is_complete(&self) -> bool;
    /// Pairs answered by the crowd so far.
    fn num_crowdsourced(&self) -> usize;
    /// Pairs labeled so far.
    fn num_labeled(&self) -> usize;
}

impl PlatformDriveable for ParallelLabeler {
    fn next_batch(&mut self) -> Vec<ScoredPair> {
        ParallelLabeler::next_batch(self)
    }
    fn submit_answer(&mut self, pair: Pair, answer: Label) {
        ParallelLabeler::submit_answer(self, pair, answer);
    }
    fn is_complete(&self) -> bool {
        ParallelLabeler::is_complete(self)
    }
    fn num_crowdsourced(&self) -> usize {
        self.result().num_crowdsourced()
    }
    fn num_labeled(&self) -> usize {
        self.result().num_labeled()
    }
}

impl PlatformDriveable for crate::labeler::ShardLabeler {
    fn next_batch(&mut self) -> Vec<ScoredPair> {
        crate::labeler::ShardLabeler::next_batch(self)
    }
    fn submit_answer(&mut self, pair: Pair, answer: Label) {
        crate::labeler::ShardLabeler::submit_answer(self, pair, answer);
    }
    fn is_complete(&self) -> bool {
        crate::labeler::ShardLabeler::is_complete(self)
    }
    fn num_crowdsourced(&self) -> usize {
        self.result().num_crowdsourced()
    }
    fn num_labeled(&self) -> usize {
        self.result().num_labeled()
    }
}

/// Drives `labeler` to completion against `platform` and returns the number
/// of publish rounds.
///
/// `truth_of` supplies the ground-truth answer the simulator uses to
/// synthesize worker responses, in the **labeler's** id space (map inside
/// the closure when labeler ids are shard-local). `on_resolution` fires
/// after each resolution batch is fed back, with `(crowdsourced so far,
/// open pairs on the platform, virtual time)` — the hook the runner uses to
/// record Figure 15 availability series.
///
/// # Panics
///
/// Panics if the labeler reports incomplete while the platform is idle and
/// no batch is publishable — impossible for well-formed inputs.
pub fn drive_to_completion(
    labeler: &mut dyn PlatformDriveable,
    platform: &mut Platform,
    instant_decision: bool,
    truth_of: &dyn Fn(Pair) -> bool,
    on_resolution: &mut dyn FnMut(usize, usize, VirtualTime),
) -> usize {
    let mut ids: FxHashMap<u64, Pair> = FxHashMap::default();
    let mut next_id = 0u64;
    let mut stager = HitStager::new();
    let mut to_tasks = |batch: &[ScoredPair], ids: &mut FxHashMap<u64, Pair>| -> Vec<TaskSpec> {
        batch
            .iter()
            .map(|sp| {
                let id = next_id;
                next_id += 1;
                ids.insert(id, sp.pair);
                TaskSpec { id, truth: truth_of(sp.pair), priority: sp.likelihood }
            })
            .collect()
    };

    let first = labeler.next_batch();
    stager.stage(to_tasks(&first, &mut ids));
    stager.release(platform, true);

    while !labeler.is_complete() {
        match platform.step() {
            Some((time, resolved)) => {
                for r in &resolved {
                    let pair = ids[&r.id];
                    let label = if r.label { Label::Matching } else { Label::NonMatching };
                    labeler.submit_answer(pair, label);
                }
                on_resolution(labeler.num_crowdsourced(), platform.num_open_pairs(), time);
                let may_publish = instant_decision || platform.num_unresolved_pairs() == 0;
                if may_publish && !labeler.is_complete() {
                    let batch = labeler.next_batch();
                    stager.stage(to_tasks(&batch, &mut ids));
                    // Flush partial HITs only when the platform would
                    // otherwise go idle waiting for them.
                    let flush = platform.num_unresolved_pairs() == 0;
                    stager.release(platform, flush);
                }
            }
            None => {
                // Platform drained; labeling must still be able to progress.
                let batch = labeler.next_batch();
                stager.stage(to_tasks(&batch, &mut ids));
                assert!(
                    stager.num_staged() > 0,
                    "labeler stuck: platform idle but only {} pairs labeled",
                    labeler.num_labeled()
                );
                stager.release(platform, true);
            }
        }
    }
    stager.publish_rounds()
}
