//! Pluggable question-ordering policies.
//!
//! The paper's production heuristic publishes pairs in likelihood-descending
//! order; its direct sequel ("The Expected Optimal Labeling Order Problem
//! for Crowdsourced Joins and Entity Resolution", arXiv 1409.7472) shows
//! that orders maximizing *expected transitive deductions* ask measurably
//! fewer crowd questions. This module is the engine's seam for that work:
//!
//! * [`OrderingMode::Likelihood`] — the default. The labeling order is used
//!   exactly as handed in (the caller sorts likelihood-descending), and the
//!   scan loop is byte-for-byte the historical one, so default runs stay
//!   bit-identical to pre-policy builds.
//! * [`OrderingMode::Exact`] — per connected component with at most
//!   [`EXACT_ORDER_MAX_PAIRS`] pairs, the expected-optimal *static*
//!   permutation is computed from the exact world enumeration in
//!   `crowdjoin_core::expected` (brute force up to
//!   [`BRUTE_FORCE_MAX_PAIRS`] pairs, greedy prefix search beyond);
//!   oversized components fall back to the incoming likelihood order.
//! * [`OrderingMode::Online`] — a dynamic O(delta·log) approximation: the
//!   unresolved frontier is re-ranked after every resolution batch by the
//!   *expected deductions* publishing each pair would trigger, computed
//!   component-locally from the incremental closure's pending index and the
//!   cluster graph's non-matching adjacency (see
//!   [`crate::ShardLabeler`]'s frontier ranking for the score definition).
//!
//! The trait below is the policy contract; the [`OrderingMode`] enum is the
//! serializable selector the engine config, WAL header, and CLI speak.

use crowdjoin_core::{ScoredPair, WorldEnumeration};
use crowdjoin_graph::UnionFind;
use crowdjoin_util::FxHashMap;

/// Largest component (in pairs) the exact policy will reorder. Bounded well
/// below `crowdjoin_core::MAX_ENUMERABLE_PAIRS`: a 12-pair component can
/// already hold thousands of consistent worlds, and the exact policy runs at
/// labeler construction on every shard.
pub const EXACT_ORDER_MAX_PAIRS: usize = 12;

/// Components up to this many pairs get the full factorial search
/// ([`WorldEnumeration::brute_force_optimal`]); larger (but still
/// enumerable) components use the greedy prefix search.
pub const BRUTE_FORCE_MAX_PAIRS: usize = 6;

/// A question-ordering policy: how a shard's labeling order is prepared at
/// construction, and whether the unresolved frontier is re-ranked between
/// publish scans.
///
/// The contract every implementation must honor: a policy may change **which
/// pairs are crowdsourced versus deduced** (and therefore money and rounds),
/// but never the final labels — deduction is closure over answers, and the
/// closure is order-independent. The `ordering_equivalence` tests pin this
/// for all built-in policies.
pub trait OrderingPolicy {
    /// Stable policy name (the CLI flag value and the WAL header spelling).
    fn name(&self) -> &'static str;

    /// Static preparation of a shard's labeling order at labeler
    /// construction. The default is the identity.
    fn prepare(&self, num_objects: usize, order: Vec<ScoredPair>) -> Vec<ScoredPair> {
        let _ = num_objects;
        order
    }

    /// `true` when the labeler should re-rank the unresolved frontier by
    /// expected deductions between scans (the online approximation).
    fn online(&self) -> bool {
        false
    }
}

/// Today's behavior: the order is used as handed in (likelihood
/// descending), unchanged across rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LikelihoodDescending;

impl OrderingPolicy for LikelihoodDescending {
    fn name(&self) -> &'static str {
        "likelihood"
    }
}

/// Exact expected-optimal static order for small components, likelihood
/// fallback elsewhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactExpected;

impl OrderingPolicy for ExactExpected {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn prepare(&self, num_objects: usize, order: Vec<ScoredPair>) -> Vec<ScoredPair> {
        exact_expected_order(num_objects, order)
    }
}

/// Online expected-deduction frontier ranking (dynamic, per scan).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineExpected;

impl OrderingPolicy for OnlineExpected {
    fn name(&self) -> &'static str {
        "online"
    }

    fn online(&self) -> bool {
        true
    }
}

/// Serializable selector for the built-in policies — what
/// [`crate::EngineConfig::order`], the WAL job header, and the CLI `--order`
/// flag carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingMode {
    /// [`LikelihoodDescending`] (the default; bit-identical to pre-policy
    /// builds).
    #[default]
    Likelihood,
    /// [`ExactExpected`].
    Exact,
    /// [`OnlineExpected`].
    Online,
}

impl OrderingMode {
    /// Every mode, in wire-byte order.
    pub const ALL: [OrderingMode; 3] =
        [OrderingMode::Likelihood, OrderingMode::Exact, OrderingMode::Online];

    /// The policy object this mode selects.
    #[must_use]
    pub fn policy(self) -> &'static dyn OrderingPolicy {
        match self {
            OrderingMode::Likelihood => &LikelihoodDescending,
            OrderingMode::Exact => &ExactExpected,
            OrderingMode::Online => &OnlineExpected,
        }
    }

    /// Stable name (CLI spelling).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.policy().name()
    }

    /// Stable single-byte encoding for the WAL job header.
    #[must_use]
    pub fn wire_byte(self) -> u8 {
        match self {
            OrderingMode::Likelihood => 0,
            OrderingMode::Exact => 1,
            OrderingMode::Online => 2,
        }
    }

    /// Inverse of [`Self::wire_byte`].
    #[must_use]
    pub fn from_wire_byte(byte: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.wire_byte() == byte)
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.as_str() == s)
    }
}

impl std::fmt::Display for OrderingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reorders each small connected component of `order` into its
/// expected-optimal permutation, keeping every component's *slots* in the
/// global order (pairs only permute within the positions their component
/// already occupied, so cross-component interleaving — and therefore shard
/// packing and HIT mixing — is unchanged).
#[must_use]
pub fn exact_expected_order(num_objects: usize, order: Vec<ScoredPair>) -> Vec<ScoredPair> {
    if order.len() < 2 {
        return order;
    }
    let mut uf = UnionFind::new(num_objects);
    for sp in &order {
        uf.union(sp.pair.a(), sp.pair.b());
    }
    // Component root -> indices (ascending) of its pairs in `order`.
    let mut members: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (i, sp) in order.iter().enumerate() {
        members.entry(uf.find(sp.pair.a())).or_default().push(i);
    }
    let mut out = order.clone();
    for indices in members.values() {
        let m = indices.len();
        if !(2..=EXACT_ORDER_MAX_PAIRS).contains(&m) {
            continue;
        }
        let pairs: Vec<ScoredPair> = indices.iter().map(|&i| order[i]).collect();
        if let Some(perm) = component_optimal_permutation(&pairs) {
            for (slot, &p) in indices.iter().zip(&perm) {
                out[*slot] = pairs[p];
            }
        }
    }
    out
}

/// Expected-optimal permutation of one component's pairs (indices into
/// `pairs`), or `None` when enumeration is unavailable. Objects are
/// compacted to a dense local universe first so world enumeration never
/// scales with the global object count.
fn component_optimal_permutation(pairs: &[ScoredPair]) -> Option<Vec<usize>> {
    let mut local_of: FxHashMap<u32, u32> = FxHashMap::default();
    let mut next = 0u32;
    let mut local_id = |o: u32, local_of: &mut FxHashMap<u32, u32>| -> u32 {
        *local_of.entry(o).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    let local: Vec<ScoredPair> = pairs
        .iter()
        .map(|sp| {
            let a = local_id(sp.pair.a(), &mut local_of);
            let b = local_id(sp.pair.b(), &mut local_of);
            ScoredPair::new(crowdjoin_core::Pair::new(a, b), sp.likelihood)
        })
        .collect();
    let we = WorldEnumeration::new(next as usize, &local).ok()?;
    if pairs.len() <= BRUTE_FORCE_MAX_PAIRS {
        let (perm, _) = we.brute_force_optimal();
        Some(perm)
    } else {
        Some(greedy_optimal_permutation(&we))
    }
}

/// Greedy prefix search: at each step, pick the pair whose placement next
/// minimizes the expected cost of `prefix + candidate + rest (current
/// order)`. O(m² ) expectation evaluations; deterministic (strictly-better
/// comparison keeps the earliest candidate on ties).
fn greedy_optimal_permutation(we: &WorldEnumeration) -> Vec<usize> {
    let m = we.pairs().len();
    let mut rest: Vec<usize> = (0..m).collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(m);
    while rest.len() > 1 {
        let mut best_at = 0usize;
        let mut best_cost = f64::INFINITY;
        for at in 0..rest.len() {
            let mut candidate = chosen.clone();
            candidate.push(rest[at]);
            candidate.extend(rest.iter().enumerate().filter(|&(j, _)| j != at).map(|(_, &i)| i));
            let cost = we.expected_cost(&candidate);
            if cost + 1e-12 < best_cost {
                best_cost = cost;
                best_at = at;
            }
        }
        chosen.push(rest.remove(best_at));
    }
    chosen.extend(rest);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_core::Pair;

    fn sp(a: u32, b: u32, l: f64) -> ScoredPair {
        ScoredPair::new(Pair::new(a, b), l)
    }

    #[test]
    fn mode_roundtrips() {
        for mode in OrderingMode::ALL {
            assert_eq!(OrderingMode::parse(mode.as_str()), Some(mode));
            assert_eq!(OrderingMode::from_wire_byte(mode.wire_byte()), Some(mode));
        }
        assert_eq!(OrderingMode::parse("fastest"), None);
        assert_eq!(OrderingMode::from_wire_byte(9), None);
        assert_eq!(OrderingMode::default(), OrderingMode::Likelihood);
    }

    #[test]
    fn likelihood_policy_is_identity() {
        let order = vec![sp(0, 1, 0.2), sp(1, 2, 0.9)];
        let prepared = OrderingMode::Likelihood.policy().prepare(3, order.clone());
        assert_eq!(prepared, order);
        assert!(!OrderingMode::Likelihood.policy().online());
        assert!(OrderingMode::Online.policy().online());
    }

    #[test]
    fn exact_reorder_is_a_per_component_permutation() {
        // Example 4 triangle (component A) interleaved with a disjoint edge
        // (component B): the triangle may permute within its own slots; the
        // edge must stay where it is.
        let order = vec![
            sp(0, 1, 0.9), // A
            sp(3, 4, 0.5), // B
            sp(1, 2, 0.5), // A
            sp(0, 2, 0.1), // A
        ];
        let out = exact_expected_order(5, order.clone());
        assert_eq!(out[1], order[1], "disjoint component keeps its slot");
        let mut triangle: Vec<Pair> = [out[0], out[2], out[3]].iter().map(|s| s.pair).collect();
        triangle.sort_unstable();
        assert_eq!(triangle, vec![Pair::new(0, 1), Pair::new(0, 2), Pair::new(1, 2)]);
        // Likelihood-descending is optimal on Example 4 (pinned in core), so
        // the exact policy must reproduce it.
        assert_eq!(out, order);
    }

    #[test]
    fn exact_reorder_moves_a_suboptimal_order() {
        // Example 4 handed in *ascending* order: the exact policy must not
        // keep the ω3 order (cost 2.83) when ω1 (2.09) exists.
        let order = vec![sp(0, 2, 0.1), sp(1, 2, 0.5), sp(0, 1, 0.9)];
        let out = exact_expected_order(3, order.clone());
        let we = WorldEnumeration::new(3, &order).unwrap();
        let before = we.expected_cost_of_pairs(&order);
        let after = we.expected_cost_of_pairs(&out);
        assert!(after + 1e-9 < before, "reorder must improve: {before} -> {after}");
        let (_, best) = we.brute_force_optimal();
        assert!((after - best).abs() < 1e-9, "small component must be optimal");
    }

    #[test]
    fn greedy_handles_components_past_brute_force() {
        // The complete graph on 5 objects: 10 pairs (> BRUTE_FORCE_MAX_PAIRS)
        // in one component.
        let mut order = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..5u32 {
                let idx = order.len() as u32;
                order.push(sp(i, j, 0.05 + 0.08 * f64::from(idx)));
            }
        }
        assert!(order.len() > BRUTE_FORCE_MAX_PAIRS);
        let out = exact_expected_order(5, order.clone());
        let we = WorldEnumeration::new(5, &order).unwrap();
        let before = we.expected_cost_of_pairs(&order);
        let after = we.expected_cost_of_pairs(&out);
        assert!(after <= before + 1e-9, "greedy must never be worse: {before} -> {after}");
    }

    #[test]
    fn oversized_components_fall_back_to_input_order() {
        // A 30-pair path: too big to enumerate, order must be unchanged.
        let order: Vec<ScoredPair> = (0..30u32).map(|i| sp(i, i + 1, 0.5)).collect();
        assert_eq!(exact_expected_order(31, order.clone()), order);
    }
}
