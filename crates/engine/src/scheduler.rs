//! The worker-pool scheduler: runs shard jobs on `std::thread` workers.
//!
//! Shards are independent (the partitioner guarantees no deduction can
//! cross them), so scheduling is a plain work queue: workers pull the next
//! unclaimed shard until the queue drains. Results are reassembled in shard
//! order so the merged report is deterministic regardless of thread timing.

use crate::partition::Shard;
use std::sync::Mutex;

/// Effective worker count: `requested`, or (when 0) the machine's available
/// parallelism, never more than `jobs`.
///
/// Contract: **zero jobs need zero workers** — `effective_threads(_, 0)`
/// returns 0 and callers must not spawn. For `jobs > 0` the result is
/// always in `1..=jobs`.
#[must_use]
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    if jobs == 0 {
        return 0;
    }
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let base = if requested == 0 { hw } else { requested };
    base.clamp(1, jobs)
}

/// Runs `job` over every shard on a pool of `num_threads` workers and
/// returns the results in shard-index order.
///
/// `job` observes shards in an arbitrary interleaving but the returned
/// vector is ordered, so callers see a deterministic view whenever `job`
/// itself is deterministic per shard.
pub fn run_sharded<T, F>(shards: Vec<Shard>, num_threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Shard) -> T + Sync,
{
    let n_jobs = shards.len();
    if n_jobs == 0 {
        return Vec::new();
    }
    let workers = effective_threads(num_threads, n_jobs);
    if workers <= 1 {
        return shards.iter().map(&job).collect();
    }

    let queue: Mutex<std::vec::IntoIter<Shard>> = Mutex::new(shards.into_iter());
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n_jobs));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(shard) = queue.lock().expect("queue mutex poisoned").next() else {
                    return;
                };
                let index = shard.index;
                let out = job(&shard);
                results.lock().expect("results mutex poisoned").push((index, out));
            });
        }
    });

    let mut results = results.into_inner().expect("results mutex poisoned");
    results.sort_unstable_by_key(|&(i, _)| i);
    assert_eq!(results.len(), n_jobs, "every shard must produce a result");
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_candidates;
    use crowdjoin_core::{Pair, ScoredPair};

    fn shards(n: usize) -> Vec<Shard> {
        let order: Vec<ScoredPair> =
            (0..n as u32).map(|i| ScoredPair::new(Pair::new(i * 2, i * 2 + 1), 0.5)).collect();
        partition_candidates(2 * n, &order, n).shards
    }

    #[test]
    fn results_come_back_in_shard_order() {
        let out = run_sharded(shards(16), 4, |s| s.index * 10);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = run_sharded(shards(3), 1, |s| s.pairs.len());
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn empty_queue() {
        let out: Vec<usize> = run_sharded(Vec::new(), 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_bounds() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn effective_threads_zero_jobs_means_zero_workers() {
        assert_eq!(effective_threads(0, 0), 0);
        assert_eq!(effective_threads(4, 0), 0);
        assert_eq!(effective_threads(usize::MAX, 0), 0);
    }
}
