//! Generator for the **Paper** workload — a stand-in for the Cora research
//! publication dataset (997 records, five attributes, heavy-tail duplicate
//! clusters topping out around 102 records).
//!
//! What the experiments depend on and what is therefore calibrated:
//!
//! 1. the cluster-size distribution (Figure 10(a)'s shape: many small
//!    clusters, a tail reaching ~100), which controls how much transitivity
//!    can save;
//! 2. duplicate records being textual perturbations of a canonical entity,
//!    so the matcher's likelihoods correlate with the truth.
//!
//! The actual strings are synthetic; see DESIGN.md §5 for the substitution
//! argument.

use crate::clusters::{assign_entities, sample_sizes, ClusterSpec};
use crate::perturb::{PerturbConfig, Perturber};
use crate::record::{Dataset, Record, Schema, Table};
use crate::vocab::{Vocab, GIVEN_NAMES, SURNAMES, TITLE_WORDS, VENUES};
use crowdjoin_util::derive_seed;

/// Configuration of the Paper-like generator.
#[derive(Debug, Clone)]
pub struct PaperGenConfig {
    /// Number of records (the real Cora has 997).
    pub num_records: usize,
    /// Cluster-size distribution.
    pub clusters: ClusterSpec,
    /// Perturbation profile applied to duplicates.
    pub perturb: PerturbConfig,
    /// Probability that a new entity is a *sibling* of an earlier one — a
    /// distinct publication whose text closely resembles another entity's
    /// (think conference vs. journal versions by the same authors). Siblings
    /// are the hard negatives: non-matching candidate pairs with high
    /// machine likelihood, which is what makes the parallel labeler need
    /// multiple iterations (Figures 13/14) and the labeling order matter
    /// (Figure 12).
    pub sibling_probability: f64,
    /// Master seed; all internal streams derive from it.
    pub seed: u64,
}

impl Default for PaperGenConfig {
    fn default() -> Self {
        Self {
            num_records: 997,
            // Calibrated to Figure 10(a): over a hundred singletons, counts
            // decaying by size, mid-size tail, and one ~100-record cluster.
            clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: 100, force_max: true },
            // Heavy perturbation keeps duplicate similarities spread out, so
            // the likelihood-threshold sweep (Figures 11/12) has non-trivial
            // candidate mixes at every threshold, as in the real Cora.
            perturb: PerturbConfig::heavy(),
            sibling_probability: 0.35,
            seed: 0xC04A,
        }
    }
}

/// The five-attribute publication schema (Author, Title, Venue, Date, Pages).
#[must_use]
pub fn paper_schema() -> Schema {
    Schema::new(vec!["author", "title", "venue", "date", "pages"])
}

/// Generates the Paper dataset (a self-join/deduplication workload).
#[must_use]
pub fn generate_paper(config: &PaperGenConfig) -> Dataset {
    assert!(
        (0.0..=1.0).contains(&config.sibling_probability),
        "sibling_probability must be in [0,1]"
    );
    let sizes = sample_sizes(&config.clusters, config.num_records, derive_seed(config.seed, 1));
    let entity_of = assign_entities(&sizes);
    let mut vocab = Vocab::new(derive_seed(config.seed, 2));
    let mut perturber = Perturber::new(config.perturb, derive_seed(config.seed, 3));
    // Siblings get their own, lighter perturbation stream: they must stay
    // recognizably similar to their parent entity while not being duplicates.
    let mut sibling_perturber = Perturber::new(PerturbConfig::light(), derive_seed(config.seed, 4));

    let mut table = Table::new(paper_schema());
    let mut canonicals: Vec<Vec<String>> = Vec::with_capacity(sizes.len());
    for (cluster_id, &k) in sizes.iter().enumerate() {
        let canonical = if !canonicals.is_empty() && vocab.unit() < config.sibling_probability {
            let parent = &canonicals[(vocab.int_in(0, canonicals.len() as u64)) as usize];
            sibling_publication(parent, &mut vocab, &mut sibling_perturber, cluster_id)
        } else {
            canonical_publication(&mut vocab, cluster_id)
        };
        for copy in 0..k {
            let record = if copy == 0 {
                // The first member keeps the canonical form.
                Record::new(canonical.clone())
            } else {
                Record::new(vec![
                    perturber.perturb(&canonical[0]),
                    perturber.perturb(&canonical[1]),
                    perturber.perturb(&canonical[2]),
                    canonical[3].clone(), // dates rarely corrupted
                    perturber.perturb(&canonical[4]),
                ])
            };
            table.push(record);
        }
        canonicals.push(canonical);
    }

    Dataset { table, entity_of, split: None, name: "paper".into() }
}

/// One canonical publication record: authors, title, venue, date, pages.
fn canonical_publication(vocab: &mut Vocab, cluster_id: usize) -> Vec<String> {
    let n_authors = vocab.int_in(1, 4);
    let authors: Vec<String> = (0..n_authors)
        .map(|_| format!("{} {}", vocab.pick(GIVEN_NAMES), vocab.pick(SURNAMES)))
        .collect();
    let n_words = vocab.int_in(4, 8);
    let mut title_words: Vec<String> =
        (0..n_words).map(|_| vocab.pick_or_mint(TITLE_WORDS, 0.12)).collect();
    // Salt with the cluster id so unrelated entities stay separable.
    title_words.push(format!("c{cluster_id}"));
    let venue = vocab.pick(VENUES).to_string();
    let year = vocab.int_in(1985, 2014);
    let start = vocab.int_in(1, 400);
    let end = start + vocab.int_in(8, 25);
    vec![
        authors.join(" and "),
        title_words.join(" "),
        venue,
        year.to_string(),
        format!("pages {start} {end}"),
    ]
}

/// A distinct entity cloned from `parent` — same authors, near-identical
/// title, different venue/year/pages (the conference-vs-journal hard case).
fn sibling_publication(
    parent: &[String],
    vocab: &mut Vocab,
    perturber: &mut Perturber,
    cluster_id: usize,
) -> Vec<String> {
    let mut title = perturber.perturb(&parent[1]);
    // Replace the parent's salt token with this entity's own.
    let parent_salt_stripped: String = title
        .split_whitespace()
        .filter(|t| !(t.starts_with('c') && t[1..].chars().all(|c| c.is_ascii_digit())))
        .collect::<Vec<_>>()
        .join(" ");
    title = format!("{parent_salt_stripped} c{cluster_id}");
    let venue = vocab.pick(VENUES).to_string();
    let year: i64 = parent[3].parse::<i64>().unwrap_or(2000) + vocab.int_in(1, 4) as i64;
    let start = vocab.int_in(1, 400);
    let end = start + vocab.int_in(8, 25);
    vec![parent[0].clone(), title, venue, year.to_string(), format!("pages {start} {end}")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_997_records() {
        let ds = generate_paper(&PaperGenConfig::default());
        assert_eq!(ds.len(), 997);
        assert_eq!(ds.entity_of.len(), 997);
        assert_eq!(ds.split, None);
        assert_eq!(ds.total_join_pairs(), 997 * 996 / 2);
    }

    #[test]
    fn has_heavy_tail_cluster() {
        let ds = generate_paper(&PaperGenConfig::default());
        let h = ds.cluster_size_histogram();
        assert_eq!(h.max_bucket(), Some(100), "forced Cora-style big cluster");
        assert!(h.count(1) > 10, "should still have many singletons");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_paper(&PaperGenConfig::default());
        let b = generate_paper(&PaperGenConfig::default());
        assert_eq!(a.entity_of, b.entity_of);
        for i in 0..a.len() {
            assert_eq!(a.table.record(i), b.table.record(i));
        }
        let mut other = PaperGenConfig::default();
        other.seed ^= 1;
        let c = generate_paper(&other);
        assert!(
            (0..a.len()).any(|i| a.table.record(i) != c.table.record(i)),
            "different seed should change records"
        );
    }

    #[test]
    fn duplicates_share_vocabulary() {
        // Two records of one cluster should share far more title tokens with
        // each other than with records of other entities.
        let ds = generate_paper(&PaperGenConfig::default());
        let title_idx = ds.table.schema().index_of("title").unwrap();
        // Find a cluster with >= 2 members.
        let mut first_of: crowdjoin_util::FxHashMap<u32, usize> = Default::default();
        let mut found = None;
        for i in 0..ds.len() {
            if let Some(&j) = first_of.get(&ds.entity_of[i]) {
                found = Some((j, i));
                break;
            }
            first_of.insert(ds.entity_of[i], i);
        }
        let (i, j) = found.expect("a duplicate cluster exists");
        let toks = |i: usize| -> crowdjoin_util::FxHashSet<&str> {
            ds.table.record(i).field(title_idx).split_whitespace().collect()
        };
        let (ti, tj) = (toks(i), toks(j));
        let shared = ti.intersection(&tj).count();
        assert!(shared * 2 >= ti.len().min(tj.len()), "duplicates too dissimilar");
    }

    #[test]
    fn small_instance_generation() {
        let cfg = PaperGenConfig {
            num_records: 20,
            clusters: ClusterSpec::Explicit(vec![(5, 2), (2, 3)]),
            perturb: PerturbConfig::light(),
            ..PaperGenConfig::default()
        };
        let ds = generate_paper(&cfg);
        assert_eq!(ds.len(), 20);
        let h = ds.cluster_size_histogram();
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(2), 3);
        assert_eq!(h.count(1), 4);
    }
}
