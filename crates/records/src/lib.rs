//! # crowdjoin-records — record model and synthetic dataset generators
//!
//! The paper evaluates on two public datasets we cannot ship: **Cora**
//! (997 publication records, heavy-tail duplicate clusters) and **Abt-Buy**
//! (1081 × 1092 product records, almost all 1:1 matches). This crate
//! provides the record/table model and seeded generators that reproduce the
//! *properties those experiments depend on* — the cluster-size distributions
//! of Figure 10 and a textual-perturbation structure that gives the machine
//! matcher a usable similarity signal. See DESIGN.md §5 for the substitution
//! rationale.
//!
//! ```
//! use crowdjoin_records::{generate_paper, PaperGenConfig};
//!
//! let dataset = generate_paper(&PaperGenConfig::default());
//! assert_eq!(dataset.len(), 997);
//! // One Cora-style ~100-record duplicate cluster exists.
//! assert_eq!(dataset.cluster_size_histogram().max_bucket(), Some(100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clusters;
pub mod csv;
pub mod jsonl;
pub mod papergen;
pub mod perturb;
pub mod productgen;
pub mod record;
pub mod vocab;

pub use clusters::{assign_entities, sample_sizes, ClusterSpec};
pub use csv::{parse_csv, table_from_csv, table_to_csv, write_csv, CsvError};
pub use jsonl::{parse_jsonl_line, table_from_jsonl, table_to_jsonl, JsonlError};
pub use papergen::{generate_paper, paper_schema, PaperGenConfig};
pub use perturb::{PerturbConfig, Perturber};
pub use productgen::{generate_product, product_schema, ProductGenConfig};
pub use record::{Dataset, Record, Schema, Table};
pub use vocab::Vocab;
