//! Vocabularies for synthetic record generation.
//!
//! Small embedded word lists give the generated datasets a recognizable
//! flavor (publication titles, product names); a syllable combinator extends
//! them so that thousand-entity datasets don't collapse onto a handful of
//! distinct tokens (which would destroy the similarity signal the matcher
//! depends on).

use crowdjoin_util::SplitMix64;

/// Surname stems for author generation.
#[rustfmt::skip]
pub const SURNAMES: &[&str] = &[
    "wang", "li", "kraska", "franklin", "feng", "smith", "johnson", "garcia", "miller", "davis",
    "martinez", "lopez", "wilson", "anderson", "taylor", "thomas", "moore", "jackson", "martin",
    "lee", "thompson", "white", "harris", "clark", "lewis", "walker", "hall", "young", "allen",
    "king", "wright", "scott", "green", "baker", "adams", "nelson", "hill", "campbell", "mitchell",
    "roberts", "carter", "phillips", "evans", "turner", "torres", "parker", "collins", "edwards",
    "stewart", "flores", "morris", "nguyen", "murphy", "rivera", "cook", "rogers", "morgan",
    "peterson", "cooper", "reed", "bailey", "bell", "gomez", "kelly", "howard", "ward", "cox",
];

/// Given-name stems for author generation.
#[rustfmt::skip]
pub const GIVEN_NAMES: &[&str] = &[
    "jiannan", "guoliang", "tim", "michael", "jianhua", "james", "mary", "robert", "patricia",
    "john", "jennifer", "david", "linda", "william", "elizabeth", "richard", "barbara", "joseph",
    "susan", "charles", "jessica", "daniel", "sarah", "matthew", "karen", "anthony", "lisa",
    "mark", "nancy", "donald", "betty", "steven", "margaret", "paul", "sandra", "andrew", "ashley",
    "joshua", "kimberly", "kenneth", "emily", "kevin", "donna", "brian", "michelle", "george",
    "dorothy", "timothy", "carol", "ronald",
];

/// Content words for publication titles.
#[rustfmt::skip]
pub const TITLE_WORDS: &[&str] = &[
    "crowdsourced", "transitive", "relations", "joins", "entity", "resolution", "query",
    "processing", "parallel", "labeling", "optimal", "ordering", "hybrid", "human", "machine",
    "database", "systems", "scalable", "distributed", "adaptive", "efficient", "approximate",
    "learning", "probabilistic", "graph", "clustering", "similarity", "indexing", "streaming",
    "transactional", "consistency", "replication", "partitioning", "optimization", "declarative",
    "incremental", "sampling", "estimation", "workload", "benchmark", "storage", "memory",
    "concurrent", "algorithms", "framework", "analysis", "evaluation", "mining", "integration",
    "cleaning", "deduplication", "provenance", "crowdsourcing", "selection", "aggregation",
];

/// Venue names for publications.
#[rustfmt::skip]
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "kdd", "www", "cidr", "edbt", "sigir", "nips", "icml", "aaai",
    "ijcai", "socc", "podc", "osdi", "sosp", "nsdi", "eurosys", "atc", "fast",
];

/// Product brand names.
#[rustfmt::skip]
pub const BRANDS: &[&str] = &[
    "apple", "sony", "samsung", "panasonic", "toshiba", "canon", "nikon", "bose", "philips",
    "sharp", "sanyo", "yamaha", "pioneer", "denon", "garmin", "logitech", "netgear", "linksys",
    "kenwood", "jvc", "olympus", "casio", "epson", "brother", "lexmark", "haier", "frigidaire",
    "whirlpool", "delonghi", "cuisinart",
];

/// Product category nouns.
#[rustfmt::skip]
pub const PRODUCT_NOUNS: &[&str] = &[
    "television", "camcorder", "receiver", "headphones", "speaker", "subwoofer", "microwave",
    "refrigerator", "dishwasher", "washer", "dryer", "camera", "lens", "printer", "scanner",
    "monitor", "keyboard", "mouse", "router", "switch", "player", "recorder", "turntable",
    "amplifier", "soundbar", "projector", "tablet", "notebook", "phone", "watch",
];

/// Product qualifier words (series/size/colors).
#[rustfmt::skip]
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "black", "white", "silver", "pro", "plus", "mini", "max", "ultra", "series", "edition",
    "wireless", "bluetooth", "portable", "compact", "digital", "hd", "uhd", "smart", "gaming",
    "home",
];

/// Consonant-vowel syllables used to mint extra tokens.
#[rustfmt::skip]
const SYLLABLES: &[&str] = &[
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke", "ki", "ko", "ku",
    "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
    "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
];

/// Deterministic vocabulary sampler.
#[derive(Debug, Clone)]
pub struct Vocab {
    rng: SplitMix64,
}

impl Vocab {
    /// Creates a sampler with its own RNG stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: SplitMix64::new(seed) }
    }

    /// Uniform choice from a word list.
    pub fn pick<'a>(&mut self, list: &'a [&'a str]) -> &'a str {
        list[(self.rng.next_u64() % list.len() as u64) as usize]
    }

    /// A minted pseudo-word of 2–4 syllables, e.g. `"kotiva"`.
    pub fn mint_word(&mut self) -> String {
        let syllables = 2 + (self.rng.next_u64() % 3) as usize;
        let mut w = String::with_capacity(syllables * 2);
        for _ in 0..syllables {
            w.push_str(SYLLABLES[(self.rng.next_u64() % SYLLABLES.len() as u64) as usize]);
        }
        w
    }

    /// A word from `list` most of the time, a minted word otherwise —
    /// controls vocabulary breadth via `mint_probability`.
    pub fn pick_or_mint(&mut self, list: &[&str], mint_probability: f64) -> String {
        if self.rng.next_f64() < mint_probability {
            self.mint_word()
        } else {
            self.pick(list).to_string()
        }
    }

    /// An integer in `[lo, hi)`.
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.next_u64() % (hi - lo)
    }

    /// Uniform draw in `[0,1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sampling() {
        let mut a = Vocab::new(5);
        let mut b = Vocab::new(5);
        for _ in 0..50 {
            assert_eq!(a.pick(SURNAMES), b.pick(SURNAMES));
            assert_eq!(a.mint_word(), b.mint_word());
        }
    }

    #[test]
    fn minted_words_are_plausible() {
        let mut v = Vocab::new(9);
        for _ in 0..100 {
            let w = v.mint_word();
            assert!(w.len() >= 4 && w.len() <= 8, "{w}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn pick_or_mint_respects_extremes() {
        let mut v = Vocab::new(1);
        for _ in 0..20 {
            let w = v.pick_or_mint(VENUES, 0.0);
            assert!(VENUES.contains(&w.as_str()));
        }
        for _ in 0..20 {
            let w = v.pick_or_mint(VENUES, 1.0);
            assert!(!VENUES.contains(&w.as_str()), "minted word collided: {w}");
        }
    }

    #[test]
    fn int_in_bounds() {
        let mut v = Vocab::new(2);
        for _ in 0..1000 {
            let x = v.int_in(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn word_lists_nonempty_and_lowercase() {
        for list in
            [SURNAMES, GIVEN_NAMES, TITLE_WORDS, VENUES, BRANDS, PRODUCT_NOUNS, PRODUCT_QUALIFIERS]
        {
            assert!(!list.is_empty());
            for w in list {
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            }
        }
    }
}
