//! Minimal CSV support (RFC-4180 subset) so real record files can flow
//! through the pipeline without extra dependencies.
//!
//! Supported: comma separation, `"` quoting, embedded commas/quotes/newlines
//! inside quoted fields, CRLF and LF line endings. Not supported (rejected
//! with an error rather than silently mangled): unterminated quotes, data
//! after a closing quote.

use crate::record::{Record, Schema, Table};

/// CSV parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into rows of fields.
///
/// Empty input yields no rows; a trailing newline does not create an empty
/// row.
///
/// # Errors
///
/// Returns [`CsvError`] for malformed quoting.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Only a separator or end of line may follow.
                        match chars.peek() {
                            Some(',') | Some('\n') | Some('\r') | None => {}
                            Some(other) => {
                                return Err(CsvError {
                                    line,
                                    message: format!(
                                        "unexpected character {other:?} after closing quote"
                                    ),
                                });
                            }
                        }
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(CsvError {
                            line,
                            message: "quote inside unquoted field".to_string(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow the \n of a CRLF if present; treat bare \r as
                    // a newline too.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError { line, message: "unterminated quoted field".to_string() });
    }
    if saw_any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Escapes one field for CSV output (quotes only when needed).
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes rows as CSV text (LF line endings, trailing newline).
#[must_use]
pub fn write_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let encoded: Vec<String> = row.iter().map(|f| escape_field(f)).collect();
        out.push_str(&encoded.join(","));
        out.push('\n');
    }
    out
}

/// Loads a [`Table`] from CSV text whose first row is the header (field
/// names become the schema).
///
/// # Errors
///
/// Returns [`CsvError`] for malformed CSV, a missing header, or rows whose
/// arity differs from the header's.
pub fn table_from_csv(text: &str) -> Result<Table, CsvError> {
    let rows = parse_csv(text)?;
    let mut iter = rows.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| CsvError { line: 1, message: "missing header row".to_string() })?;
    if header.iter().any(|h| h.trim().is_empty()) {
        return Err(CsvError { line: 1, message: "empty field name in header".to_string() });
    }
    let mut table = Table::new(Schema::new(header.clone()));
    for (i, row) in iter.enumerate() {
        if row.len() != header.len() {
            return Err(CsvError {
                line: i + 2,
                message: format!("expected {} fields, found {}", header.len(), row.len()),
            });
        }
        table.push(Record::new(row));
    }
    Ok(table)
}

/// Serializes a [`Table`] (header + records) as CSV text.
#[must_use]
pub fn table_to_csv(table: &Table) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(table.len() + 1);
    rows.push(table.schema().fields().to_vec());
    for r in table.records() {
        rows.push(r.values().to_vec());
    }
    write_csv(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_rows() {
        let rows = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn quoted_fields() {
        let rows = parse_csv("name,price\n\"sony, 40 inch\",\"99\"\"99\"\n").unwrap();
        assert_eq!(rows[1], vec!["sony, 40 inch", "99\"99"]);
    }

    #[test]
    fn embedded_newline() {
        let rows = parse_csv("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1], vec!["line1\nline2"]);
    }

    #[test]
    fn crlf_and_no_trailing_newline() {
        let rows = parse_csv("a,b\r\n1,2").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn empty_input_and_empty_fields() {
        assert!(parse_csv("").unwrap().is_empty());
        let rows = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_csv("a\n\"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn garbage_after_quote_is_error() {
        let err = parse_csv("\"x\"y\n").unwrap_err();
        assert!(err.message.contains("after closing quote"), "{err}");
    }

    #[test]
    fn quote_inside_unquoted_field_is_error() {
        let err = parse_csv("ab\"c\n").unwrap_err();
        assert!(err.message.contains("unquoted"), "{err}");
    }

    #[test]
    fn table_round_trip() {
        let csv = "name,price\niPad 2,499\n\"TV, 40in\",\"1299\"\n";
        let table = table_from_csv(csv).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema().fields(), &["name".to_string(), "price".to_string()]);
        assert_eq!(table.record(1).field(0), "TV, 40in");
        let out = table_to_csv(&table);
        let reparsed = table_from_csv(&out).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(reparsed.record(1).field(0), "TV, 40in");
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let err = table_from_csv("a,b\n1,2\n1,2,3\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn missing_header() {
        let err = table_from_csv("").unwrap_err();
        assert!(err.message.contains("header"));
    }

    proptest! {
        /// write → parse is the identity on arbitrary field content.
        #[test]
        fn round_trip(rows in proptest::collection::vec(
            proptest::collection::vec("[ -~\n\"]{0,12}", 1..5), 1..8)
        ) {
            // Normalize: all rows same arity as the first (CSV has no ragged
            // contract here; we test rectangular data).
            let arity = rows[0].len();
            let rect: Vec<Vec<String>> = rows.into_iter().map(|mut r| {
                r.resize(arity, String::new());
                r
            }).collect();
            let text = write_csv(&rect);
            let parsed = parse_csv(&text).unwrap();
            prop_assert_eq!(parsed, rect);
        }
    }
}
