//! Minimal JSON-Lines support so streamed record feeds (one flat JSON
//! object per line) can flow through the pipeline without extra
//! dependencies — the streaming counterpart of [`crate::csv`].
//!
//! Supported: one object per line; string, number, `true`/`false`/`null`
//! values (all captured as their textual form — the pipeline's fields are
//! strings); full string escape handling including `\uXXXX` and surrogate
//! pairs; blank lines skipped. Not supported (rejected with an error
//! rather than silently mangled): nested objects/arrays, duplicate keys,
//! lines whose key set differs from the first line's.
//!
//! The first line's key *order* defines the schema; later lines may list
//! their keys in any order — values are matched by name.

use crate::record::{Record, Schema, Table};

/// JSONL parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSONL error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonlError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?}", byte as char))
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or("truncated \\u escape")?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(format!("invalid hex digit {:?} in \\u escape", b as char)),
            };
            v = (v << 4) | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                self.expect(b'\\').map_err(|_| "unpaired surrogate".to_string())?;
                                self.expect(b'u').map_err(|_| "unpaired surrogate".to_string())?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let c = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("unpaired surrogate".to_string());
                            } else {
                                out.push(
                                    char::from_u32(u32::from(hi)).ok_or("invalid \\u escape")?,
                                );
                            }
                        }
                        _ => return Err(format!("invalid escape \\{}", e as char)),
                    }
                }
                _ if b < 0x20 => return Err("raw control character in string".to_string()),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so continuation
                    // bytes are valid; copy the whole scalar.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8")?,
                    );
                }
            }
        }
    }

    /// A scalar value, captured as its textual form.
    fn value(&mut self) -> Result<String, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => self.string(),
            b'{' => Err("nested objects are not supported (flat objects only)".to_string()),
            b'[' => Err("arrays are not supported (flat objects only)".to_string()),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected character {:?}", other as char)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<String, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(lit.to_string())
        } else {
            Err(format!("invalid literal (expected {lit})"))
        }
    }

    fn number(&mut self) -> Result<String, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err("number has no digits".to_string());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err("number has no fraction digits".to_string());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err("number has no exponent digits".to_string());
            }
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number").to_string())
    }

    /// One flat object: `{"key": value, ...}`. Keys returned in source
    /// order.
    fn object(&mut self) -> Result<Vec<(String, String)>, String> {
        self.skip_ws();
        self.expect(b'{').map_err(|_| "line does not start with '{'".to_string())?;
        let mut pairs: Vec<(String, String)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string().map_err(|e| format!("bad key: {e}"))?;
                if pairs.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key {key:?}"));
                }
                self.skip_ws();
                self.expect(b':').map_err(|_| format!("missing ':' after key {key:?}"))?;
                self.skip_ws();
                let value = self.value().map_err(|e| format!("bad value for {key:?}: {e}"))?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err("expected ',' or '}' in object".to_string()),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err("trailing data after object".to_string());
        }
        Ok(pairs)
    }
}

/// Parses one JSONL line into `(key, value)` pairs in source order.
///
/// # Errors
///
/// Returns the parse failure message (no line number — the caller knows
/// the line).
pub fn parse_jsonl_line(line: &str) -> Result<Vec<(String, String)>, String> {
    Parser::new(line).object()
}

/// Loads a [`Table`] from JSONL text. The first non-blank line's key order
/// becomes the schema; every later line must carry exactly the same key
/// set (any order).
///
/// # Errors
///
/// Returns [`JsonlError`] for malformed JSON, nested values, or key-set
/// mismatches. Empty input (or only blank lines) is an error — there is
/// no schema to infer.
pub fn table_from_jsonl(text: &str) -> Result<Table, JsonlError> {
    let mut table: Option<Table> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let pairs = parse_jsonl_line(raw).map_err(|message| JsonlError { line, message })?;
        if pairs.is_empty() {
            return Err(JsonlError { line, message: "object has no fields".to_string() });
        }
        match &mut table {
            None => {
                let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
                let mut t = Table::new(Schema::new(keys));
                t.push(Record::new(pairs.into_iter().map(|(_, v)| v).collect::<Vec<_>>()));
                table = Some(t);
            }
            Some(t) => {
                let schema = t.schema().clone();
                let fields = schema.fields();
                if pairs.len() != fields.len() {
                    return Err(JsonlError {
                        line,
                        message: format!("expected {} fields, found {}", fields.len(), pairs.len()),
                    });
                }
                let mut values: Vec<Option<String>> = vec![None; fields.len()];
                for (k, v) in pairs {
                    let Some(slot) = fields.iter().position(|f| *f == k) else {
                        return Err(JsonlError {
                            line,
                            message: format!("unknown field {k:?} (schema: {fields:?})"),
                        });
                    };
                    values[slot] = Some(v);
                }
                // Counts match and keys are unique, so every slot is filled.
                t.push(Record::new(
                    values.into_iter().map(|v| v.expect("slot filled")).collect::<Vec<_>>(),
                ));
            }
        }
    }
    table.ok_or_else(|| JsonlError { line: 1, message: "no records in input".to_string() })
}

/// Escapes one value as a JSON string.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a [`Table`] as JSONL text (every value written as a JSON
/// string; LF line endings, trailing newline).
#[must_use]
pub fn table_to_jsonl(table: &Table) -> String {
    let fields = table.schema().fields();
    let mut out = String::new();
    for r in table.records() {
        out.push('{');
        for (i, (k, v)) in fields.iter().zip(r.values()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_json(k));
            out.push(':');
            out.push_str(&escape_json(v));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_lines() {
        let t = table_from_jsonl(
            "{\"name\": \"iPad 2\", \"price\": 499}\n{\"name\": \"sony tv\", \"price\": 1299.99}\n",
        )
        .unwrap();
        assert_eq!(t.schema().fields(), &["name".to_string(), "price".to_string()]);
        assert_eq!(t.record(0).field(0), "iPad 2");
        assert_eq!(t.record(1).field(1), "1299.99");
    }

    #[test]
    fn keys_match_by_name_not_position() {
        let t = table_from_jsonl("{\"a\":\"1\",\"b\":\"2\"}\n{\"b\":\"y\",\"a\":\"x\"}\n").unwrap();
        assert_eq!(t.record(1).values(), &["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn escapes_and_unicode() {
        let t = table_from_jsonl("{\"s\": \"a\\\"b\\\\c\\n\\t\\u00e9 \\ud83d\\ude00\"}\n").unwrap();
        assert_eq!(t.record(0).field(0), "a\"b\\c\n\té 😀");
    }

    #[test]
    fn scalars_capture_textual_form() {
        let t = table_from_jsonl("{\"a\": true, \"b\": null, \"c\": -1.5e3}\n").unwrap();
        assert_eq!(
            t.record(0).values(),
            &["true".to_string(), "null".to_string(), "-1.5e3".to_string()]
        );
    }

    #[test]
    fn blank_lines_skipped() {
        let t = table_from_jsonl("\n{\"a\":\"1\"}\n\n{\"a\":\"2\"}\n  \n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn nested_values_rejected() {
        let err = table_from_jsonl("{\"a\": {\"b\": 1}}\n").unwrap_err();
        assert!(err.message.contains("nested"), "{err}");
        let err = table_from_jsonl("{\"a\": [1,2]}\n").unwrap_err();
        assert!(err.message.contains("arrays"), "{err}");
    }

    #[test]
    fn key_set_mismatch_reports_line() {
        let err = table_from_jsonl("{\"a\":\"1\"}\n{\"b\":\"2\"}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown field"), "{err}");
        let err = table_from_jsonl("{\"a\":\"1\"}\n{\"a\":\"1\",\"b\":\"2\"}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 1 fields"), "{err}");
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = table_from_jsonl("{\"a\":\"1\",\"a\":\"2\"}\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "not json",
            "{\"a\": }",
            "{\"a\": \"unterminated}",
            "{\"a\": 1} trailing",
            "{\"a\": \"x\" \"b\": 1}",
            "{\"a\": \\u12}",
            "{\"a\": \"\\ud800\"}",
            "{}",
        ] {
            assert!(table_from_jsonl(&format!("{bad}\n")).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert!(table_from_jsonl("").is_err());
        assert!(table_from_jsonl("\n  \n").is_err());
    }

    proptest! {
        /// write → parse is the identity on arbitrary field content.
        #[test]
        fn round_trip(rows in proptest::collection::vec(
            proptest::collection::vec("[ -~\n\t\"\\\\]{0,12}", 2..4), 1..8)
        ) {
            let arity = rows[0].len();
            let mut table = Table::new(Schema::new(
                (0..arity).map(|i| format!("f{i}")).collect::<Vec<_>>(),
            ));
            for mut r in rows {
                r.resize(arity, String::new());
                table.push(Record::new(r));
            }
            let text = table_to_jsonl(&table);
            let parsed = table_from_jsonl(&text).unwrap();
            prop_assert_eq!(parsed.len(), table.len());
            for i in 0..table.len() {
                prop_assert_eq!(parsed.record(i).values(), table.record(i).values());
            }
        }
    }
}
