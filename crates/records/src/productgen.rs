//! Generator for the **Product** workload — a stand-in for the Abt-Buy
//! product-matching dataset (1081 records from one retailer × 1092 from
//! another; `name` and `price` attributes; almost all matches are 1:1, so
//! clusters are tiny — Figure 10(b)).
//!
//! Records are split across two tables (A = "abt", B = "buy"); the join is a
//! cross join, so only A×B pairs are candidates. Entities with one record on
//! each side produce the dominant cluster size of 2; a small tail up to 6
//! models multi-listing products; the rest are unmatched singletons.

use crate::clusters::{sample_sizes, ClusterSpec};
use crate::perturb::{PerturbConfig, Perturber};
use crate::record::{Dataset, Record, Schema, Table};
use crate::vocab::{Vocab, BRANDS, PRODUCT_NOUNS, PRODUCT_QUALIFIERS};
use crowdjoin_util::derive_seed;

/// Configuration of the Product-like generator.
#[derive(Debug, Clone)]
pub struct ProductGenConfig {
    /// Records in table A (the real Abt side has 1081).
    pub table_a: usize,
    /// Records in table B (the real Buy side has 1092).
    pub table_b: usize,
    /// Cluster-size distribution over the *union* of both tables. Sizes ≥ 2
    /// are split across the tables so cross-join matches exist.
    pub clusters: ClusterSpec,
    /// Perturbation profile between a product's listings.
    pub perturb: PerturbConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for ProductGenConfig {
    fn default() -> Self {
        Self {
            table_a: 1081,
            table_b: 1092,
            // Figure 10(b): cluster sizes 1..6, overwhelmingly 1 and 2, with
            // enough ≥3 clusters that cross-join transitivity has material
            // to work with (size-2 clusters admit no deduction in a cross
            // join — savings come entirely from the ≥3 tail).
            clusters: ClusterSpec::Explicit(vec![(2, 640), (3, 130), (4, 40), (5, 12), (6, 4)]),
            perturb: PerturbConfig::heavy(),
            seed: 0xAB7_BE1,
        }
    }
}

impl ProductGenConfig {
    /// The default Abt-Buy-shaped workload scaled to `per_side` records in
    /// each table (2·`per_side` records total), keeping the Figure 10(b)
    /// cluster-size *mix* proportional. This is how the large matcher
    /// benchmark workloads (25 000 and 50 000 per side → 50k- and
    /// 100k-record datasets) are built.
    ///
    /// # Panics
    ///
    /// Panics if `per_side` is 0.
    #[must_use]
    pub fn scaled(per_side: usize) -> Self {
        assert!(per_side > 0, "per_side must be positive");
        let default = Self::default();
        let ClusterSpec::Explicit(mix) = &default.clusters else {
            unreachable!("default cluster spec is explicit")
        };
        let factor = (2 * per_side) as f64 / (default.table_a + default.table_b) as f64;
        // Floor the scaled counts so the matched records never exceed the
        // record budget; the remainder becomes singletons, as in the
        // original mix.
        let clusters: Vec<(usize, usize)> = mix
            .iter()
            .map(|&(size, count)| (size, (count as f64 * factor) as usize))
            .filter(|&(_, count)| count > 0)
            .collect();
        Self {
            table_a: per_side,
            table_b: per_side,
            clusters: ClusterSpec::Explicit(clusters),
            ..default
        }
    }
}

/// The two-attribute product schema (name, price).
#[must_use]
pub fn product_schema() -> Schema {
    Schema::new(vec!["name", "price"])
}

/// Generates the Product dataset (a cross-join workload; `split` marks the
/// A/B boundary).
#[must_use]
pub fn generate_product(config: &ProductGenConfig) -> Dataset {
    let total = config.table_a + config.table_b;
    let sizes = sample_sizes(&config.clusters, total, derive_seed(config.seed, 1));
    let mut vocab = Vocab::new(derive_seed(config.seed, 2));
    let mut perturber = Perturber::new(config.perturb, derive_seed(config.seed, 3));

    // Plan each cluster's records, spreading multi-record clusters across the
    // two tables (alternating sides) so the cross join can see the matches.
    // side_budget tracks remaining capacity per side; singletons are flexible
    // and placed last wherever space remains.
    let mut planned: Vec<(u32, bool)> = Vec::with_capacity(total); // (entity, goes_to_a)
    let mut budget_a = config.table_a as isize;
    let mut budget_b = config.table_b as isize;
    let mut entity = 0u32;
    let mut multi: Vec<usize> = sizes.iter().copied().filter(|&k| k > 1).collect();
    // Large clusters first so they can still be balanced across sides.
    multi.sort_unstable_by(|a, b| b.cmp(a));
    for k in multi {
        let start_a = vocab.unit() < 0.5;
        for copy in 0..k {
            let to_a = if budget_a <= 0 {
                false
            } else if budget_b <= 0 {
                true
            } else {
                (copy % 2 == 0) == start_a
            };
            planned.push((entity, to_a));
            if to_a {
                budget_a -= 1;
            } else {
                budget_b -= 1;
            }
        }
        entity += 1;
    }
    let singles = sizes.iter().filter(|&&k| k == 1).count();
    for _ in 0..singles {
        let to_a = budget_a > 0;
        planned.push((entity, to_a));
        if to_a {
            budget_a -= 1;
        } else {
            budget_b -= 1;
        }
        entity += 1;
    }
    debug_assert_eq!(budget_a, 0);
    debug_assert_eq!(budget_b, 0);

    // Materialize records: canonical listing per entity, perturbed per copy;
    // table A first (ids 0..table_a), then table B.
    let num_entities = entity as usize;
    let mut canonical: Vec<Option<(String, String)>> = vec![None; num_entities];
    let mut rows_a: Vec<(u32, Record)> = Vec::with_capacity(config.table_a);
    let mut rows_b: Vec<(u32, Record)> = Vec::with_capacity(config.table_b);
    let mut seen: crowdjoin_util::FxHashSet<u32> = Default::default();
    for (e, to_a) in planned {
        let (name, price) =
            canonical[e as usize].get_or_insert_with(|| canonical_product(&mut vocab, e)).clone();
        let is_first = seen.insert(e);
        let record = if is_first {
            Record::new(vec![name, price])
        } else {
            // Other listings perturb the name and jitter the price by a few
            // percent (retailers disagree on cents).
            let jitter = 0.97 + 0.06 * vocab.unit();
            let price_val: f64 = price.parse().unwrap_or(100.0);
            Record::new(vec![perturber.perturb(&name), format!("{:.2}", price_val * jitter)])
        };
        if to_a {
            rows_a.push((e, record));
        } else {
            rows_b.push((e, record));
        }
    }

    let mut table = Table::new(product_schema());
    let mut entity_of = Vec::with_capacity(total);
    for (e, r) in rows_a.into_iter().chain(rows_b) {
        table.push(r);
        entity_of.push(e);
    }

    Dataset { table, entity_of, split: Some(config.table_a), name: "product".into() }
}

/// One canonical product listing: `brand noun model qualifiers`, price.
///
/// Model numbers draw from a *shared* pool of series bases ("kd40", "sl46",
/// ...), as in real catalogs where one product line ships many variants.
/// Most entities append a discriminating suffix, but a third do not — those
/// produce the realistic hard cases where different entities score a high
/// machine likelihood (the non-matching candidates that survive the
/// threshold in Figure 11(b)).
fn canonical_product(vocab: &mut Vocab, entity: u32) -> (String, String) {
    let brand = vocab.pick(BRANDS);
    let noun = vocab.pick(PRODUCT_NOUNS);
    let series = vocab.pick(&["kd", "dx", "sl", "wf", "hr", "vp"]);
    let size = vocab.pick(&["20", "26", "32", "40", "46", "52"]);
    let model = if vocab.unit() < 0.55 {
        format!("{series}{size}-{entity}")
    } else {
        format!("{series}{size}")
    };
    let n_quals = vocab.int_in(1, 4);
    let quals: Vec<&str> = (0..n_quals).map(|_| vocab.pick(PRODUCT_QUALIFIERS)).collect();
    let name = format!("{brand} {noun} {model} {}", quals.join(" "));
    let price = format!("{:.2}", 10.0 + vocab.unit() * 1500.0);
    (name, price)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_expected_sizes() {
        let ds = generate_product(&ProductGenConfig::default());
        assert_eq!(ds.len(), 1081 + 1092);
        assert_eq!(ds.split, Some(1081));
        assert_eq!(ds.total_join_pairs(), 1081 * 1092);
    }

    #[test]
    fn cluster_sizes_match_spec() {
        let ds = generate_product(&ProductGenConfig::default());
        let h = ds.cluster_size_histogram();
        assert_eq!(h.count(2), 640);
        assert_eq!(h.count(3), 130);
        assert_eq!(h.count(6), 4);
        assert!(h.max_bucket() <= Some(6));
        assert_eq!(h.weighted_total(), 2173);
    }

    #[test]
    fn pairs_within_clusters_cross_tables() {
        // Every size-2 cluster must have one record in each table, otherwise
        // the cross join could never find the match.
        let ds = generate_product(&ProductGenConfig::default());
        let split = ds.split.unwrap();
        let mut sides: crowdjoin_util::FxHashMap<u32, (usize, usize)> = Default::default();
        for i in 0..ds.len() {
            let entry = sides.entry(ds.entity_of[i]).or_insert((0, 0));
            if i < split {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
        let mut two_sided = 0;
        let mut clusters_ge2 = 0;
        for (_, (a, b)) in sides {
            if a + b >= 2 {
                clusters_ge2 += 1;
                if a > 0 && b > 0 {
                    two_sided += 1;
                }
            }
        }
        assert!(
            two_sided * 10 >= clusters_ge2 * 9,
            "{two_sided}/{clusters_ge2} multi-record clusters span both tables"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_product(&ProductGenConfig::default());
        let b = generate_product(&ProductGenConfig::default());
        assert_eq!(a.entity_of, b.entity_of);
        for i in 0..a.len() {
            assert_eq!(a.table.record(i), b.table.record(i));
        }
    }

    #[test]
    fn prices_are_parsable() {
        let ds = generate_product(&ProductGenConfig::default());
        let price_idx = ds.table.schema().index_of("price").unwrap();
        for i in 0..ds.len() {
            let p: f64 = ds.table.record(i).field(price_idx).parse().expect("parsable price");
            assert!(p > 0.0);
        }
    }

    #[test]
    fn scaled_config_keeps_the_cluster_mix() {
        let cfg = ProductGenConfig::scaled(5405); // 5x the default A side
        assert_eq!(cfg.table_a, 5405);
        assert_eq!(cfg.table_b, 5405);
        let ds = generate_product(&cfg);
        assert_eq!(ds.len(), 10810);
        let h = ds.cluster_size_histogram();
        // ~5x the default counts (floored by the integer scaling).
        assert!((3150..=3250).contains(&h.count(2)), "size-2 clusters: {}", h.count(2));
        assert!(h.count(3) >= 600);
        assert!(h.max_bucket() <= Some(6));
    }

    #[test]
    fn scaled_config_is_generatable_at_tiny_sizes() {
        let ds = generate_product(&ProductGenConfig::scaled(30));
        assert_eq!(ds.len(), 60);
        assert_eq!(ds.split, Some(30));
    }

    #[test]
    fn small_config() {
        let cfg = ProductGenConfig {
            table_a: 10,
            table_b: 12,
            clusters: ClusterSpec::Explicit(vec![(2, 5)]),
            perturb: PerturbConfig::light(),
            seed: 1,
        };
        let ds = generate_product(&cfg);
        assert_eq!(ds.len(), 22);
        assert_eq!(ds.cluster_size_histogram().count(2), 5);
    }
}
