//! Cluster-size distribution sampling.
//!
//! The effectiveness of transitive relations hinges on the ground-truth
//! cluster-size distribution (Figure 10): the Paper/Cora dataset has heavy
//! tails (one cluster of 102 duplicates → transitivity saves ~95% of pairs),
//! while the Product/Abt-Buy dataset is almost all 1:1 matches (→ ~10–20%
//! savings). The generators are calibrated through [`ClusterSpec`]s that
//! reproduce those shapes.

use crowdjoin_util::SplitMix64;

/// Specification of a ground-truth cluster-size distribution.
#[derive(Debug, Clone)]
pub enum ClusterSpec {
    /// Truncated power law: `P(size = k) ∝ k^(-alpha)` for `k ∈ 1..=max_size`.
    /// When `force_max` is set, one cluster of exactly `max_size` is placed
    /// first (the Cora dataset's hallmark 102-record cluster).
    PowerLaw {
        /// Decay exponent (larger → more singletons).
        alpha: f64,
        /// Largest allowed cluster.
        max_size: usize,
        /// Guarantee one cluster of `max_size`.
        force_max: bool,
    },
    /// Explicit `(size, count)` pairs; any remaining objects become
    /// singletons.
    Explicit(Vec<(usize, usize)>),
}

/// Samples cluster sizes summing exactly to `n_objects`.
///
/// # Panics
///
/// Panics if the spec is infeasible (explicit sizes exceed `n_objects`,
/// power-law parameters degenerate).
#[must_use]
pub fn sample_sizes(spec: &ClusterSpec, n_objects: usize, seed: u64) -> Vec<usize> {
    match spec {
        ClusterSpec::PowerLaw { alpha, max_size, force_max } => {
            assert!(*max_size >= 1, "max_size must be positive");
            assert!(alpha.is_finite(), "alpha must be finite");
            let mut rng = SplitMix64::new(seed);
            let mut sizes = Vec::new();
            let mut remaining = n_objects;
            if *force_max && *max_size <= remaining {
                sizes.push(*max_size);
                remaining -= *max_size;
            }
            // Precompute cumulative weights for k = 1..=max_size.
            let weights: Vec<f64> = (1..=*max_size).map(|k| (k as f64).powf(-alpha)).collect();
            while remaining > 0 {
                let cap = remaining.min(*max_size);
                let total: f64 = weights[..cap].iter().sum();
                let mut draw = rng.next_f64() * total;
                let mut k = 1;
                for (i, w) in weights[..cap].iter().enumerate() {
                    draw -= w;
                    if draw <= 0.0 {
                        k = i + 1;
                        break;
                    }
                }
                sizes.push(k);
                remaining -= k;
            }
            sizes
        }
        ClusterSpec::Explicit(entries) => {
            let mut sizes = Vec::new();
            let mut used = 0usize;
            for &(size, count) in entries {
                assert!(size >= 1, "cluster size must be positive");
                for _ in 0..count {
                    sizes.push(size);
                    used += size;
                }
            }
            assert!(
                used <= n_objects,
                "explicit clusters need {used} objects but only {n_objects} available"
            );
            sizes.extend(std::iter::repeat_n(1, n_objects - used));
            sizes
        }
    }
}

/// Expands cluster sizes into a per-object entity assignment
/// (`entity_of[i]` = cluster index), objects numbered cluster by cluster.
#[must_use]
pub fn assign_entities(sizes: &[usize]) -> Vec<u32> {
    let total: usize = sizes.iter().sum();
    let mut entity_of = Vec::with_capacity(total);
    for (cluster, &k) in sizes.iter().enumerate() {
        entity_of.extend(std::iter::repeat_n(cluster as u32, k));
    }
    entity_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn power_law_sums_exactly() {
        let spec = ClusterSpec::PowerLaw { alpha: 1.1, max_size: 50, force_max: true };
        let sizes = sample_sizes(&spec, 997, 42);
        assert_eq!(sizes.iter().sum::<usize>(), 997);
        assert_eq!(sizes[0], 50, "forced max cluster");
        assert!(sizes.iter().all(|&k| (1..=50).contains(&k)));
    }

    #[test]
    fn power_law_without_force() {
        let spec = ClusterSpec::PowerLaw { alpha: 2.0, max_size: 10, force_max: false };
        let sizes = sample_sizes(&spec, 100, 7);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        // High alpha → dominated by singletons.
        let singletons = sizes.iter().filter(|&&k| k == 1).count();
        assert!(singletons * 2 > sizes.len(), "expected mostly singletons, got {sizes:?}");
    }

    #[test]
    fn explicit_fills_singletons() {
        let spec = ClusterSpec::Explicit(vec![(3, 2), (2, 4)]);
        let sizes = sample_sizes(&spec, 20, 0);
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert_eq!(sizes.iter().filter(|&&k| k == 3).count(), 2);
        assert_eq!(sizes.iter().filter(|&&k| k == 2).count(), 4);
        assert_eq!(sizes.iter().filter(|&&k| k == 1).count(), 20 - 6 - 8);
    }

    #[test]
    #[should_panic(expected = "explicit clusters need")]
    fn explicit_overflow_rejected() {
        let spec = ClusterSpec::Explicit(vec![(10, 3)]);
        let _ = sample_sizes(&spec, 20, 0);
    }

    #[test]
    fn assign_entities_round_trip() {
        let entity_of = assign_entities(&[3, 1, 2]);
        assert_eq!(entity_of, vec![0, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ClusterSpec::PowerLaw { alpha: 1.0, max_size: 20, force_max: false };
        assert_eq!(sample_sizes(&spec, 500, 9), sample_sizes(&spec, 500, 9));
        assert_ne!(sample_sizes(&spec, 500, 9), sample_sizes(&spec, 500, 10));
    }

    proptest! {
        /// Sampled sizes always partition the universe exactly.
        #[test]
        fn sizes_partition(n in 1usize..2000, seed in any::<u64>(), alpha in 0.2f64..3.0, max in 2usize..64) {
            let spec = ClusterSpec::PowerLaw { alpha, max_size: max, force_max: false };
            let sizes = sample_sizes(&spec, n, seed);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
            prop_assert!(sizes.iter().all(|&k| k >= 1 && k <= max));
            let entity_of = assign_entities(&sizes);
            prop_assert_eq!(entity_of.len(), n);
        }
    }
}
