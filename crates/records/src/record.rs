//! Record and table model.
//!
//! Records are flat tuples of string fields described by a [`Schema`]. This
//! is all the structure the matcher needs: tokenization and similarity work
//! per-field with per-field weights.

use std::sync::Arc;

/// Field names of a table, shared by all its records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<String>,
}

impl Schema {
    /// Creates a schema from field names.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or contains duplicates.
    #[must_use]
    pub fn new<S: Into<String>>(fields: Vec<S>) -> Self {
        let fields: Vec<String> = fields.into_iter().map(Into::into).collect();
        assert!(!fields.is_empty(), "schema needs at least one field");
        let mut set = crowdjoin_util::FxHashSet::default();
        for f in &fields {
            assert!(set.insert(f.as_str()), "duplicate field name {f:?}");
        }
        Self { fields }
    }

    /// Number of fields.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field names in order.
    #[must_use]
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Index of a field by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }
}

/// One record: a value per schema field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    values: Vec<String>,
}

impl Record {
    /// Creates a record. The caller (usually [`Table::push`]) is responsible
    /// for arity-checking against the schema.
    #[must_use]
    pub fn new<S: Into<String>>(values: Vec<S>) -> Self {
        Self { values: values.into_iter().map(Into::into).collect() }
    }

    /// Field values in schema order.
    #[must_use]
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Value of field `i`.
    #[must_use]
    pub fn field(&self, i: usize) -> &str {
        &self.values[i]
    }
}

/// A table: a shared schema plus records.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    records: Vec<Record>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Self { schema: Arc::new(schema), records: Vec::new() }
    }

    /// The table's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a record, checking arity. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the record's arity does not match the schema.
    pub fn push(&mut self, record: Record) -> usize {
        assert_eq!(
            record.values().len(),
            self.schema.arity(),
            "record arity {} does not match schema arity {}",
            record.values().len(),
            self.schema.arity()
        );
        self.records.push(record);
        self.records.len() - 1
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the table has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record at index `i`.
    #[must_use]
    pub fn record(&self, i: usize) -> &Record {
        &self.records[i]
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }
}

/// A generated benchmark dataset: one logical record universe (possibly the
/// concatenation of two source tables), the ground-truth entity of every
/// record, and the join mode.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All records; for a cross join, table A occupies `0..split` and table
    /// B occupies `split..len`.
    pub table: Table,
    /// Ground-truth entity id per record (same index space as `table`).
    pub entity_of: Vec<u32>,
    /// `None` for a self join (dedup within one table); `Some(split)` for a
    /// cross join between `0..split` and `split..len`.
    pub split: Option<usize>,
    /// Human-readable dataset name for reports.
    pub name: String,
}

impl Dataset {
    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when the dataset has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of pairs the join considers: `C(n,2)` for a self join,
    /// `|A|·|B|` for a cross join.
    #[must_use]
    pub fn total_join_pairs(&self) -> u64 {
        let n = self.len() as u64;
        match self.split {
            None => n * (n - 1) / 2,
            Some(split) => {
                let a = split as u64;
                a * (n - a)
            }
        }
    }

    /// `true` when `(i, j)` is a pair the join considers (cross-table for a
    /// cross join, any distinct pair for a self join).
    #[must_use]
    pub fn is_joinable(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        match self.split {
            None => true,
            Some(split) => (i < split) != (j < split),
        }
    }

    /// `true` when records `i` and `j` refer to the same entity.
    #[must_use]
    pub fn is_true_match(&self, i: usize, j: usize) -> bool {
        self.entity_of[i] == self.entity_of[j]
    }

    /// Cluster sizes of the ground-truth entities **restricted to matched
    /// groups the join can see**. For Figure 10 the paper clusters the true
    /// matching objects; singleton records (no duplicate anywhere) are still
    /// reported as clusters of size 1.
    #[must_use]
    pub fn cluster_size_histogram(&self) -> crowdjoin_util::Histogram {
        let mut counts: crowdjoin_util::FxHashMap<u32, usize> =
            crowdjoin_util::FxHashMap::default();
        for &e in &self.entity_of {
            *counts.entry(e).or_insert(0) += 1;
        }
        counts.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = Schema::new(vec!["name", "price"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec!["a", "a"]);
    }

    #[test]
    fn table_push_and_access() {
        let mut t = Table::new(Schema::new(vec!["name"]));
        let i = t.push(Record::new(vec!["iPad 2"]));
        assert_eq!(i, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.record(0).field(0), "iPad 2");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(Schema::new(vec!["name", "price"]));
        t.push(Record::new(vec!["only one"]));
    }

    fn tiny_dataset(split: Option<usize>) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for i in 0..4 {
            table.push(Record::new(vec![format!("r{i}")]));
        }
        Dataset { table, entity_of: vec![0, 0, 1, 2], split, name: "tiny".into() }
    }

    #[test]
    fn self_join_pair_accounting() {
        let d = tiny_dataset(None);
        assert_eq!(d.total_join_pairs(), 6);
        assert!(d.is_joinable(0, 1));
        assert!(!d.is_joinable(2, 2));
        assert!(d.is_true_match(0, 1));
        assert!(!d.is_true_match(0, 2));
    }

    #[test]
    fn cross_join_pair_accounting() {
        let d = tiny_dataset(Some(2));
        assert_eq!(d.total_join_pairs(), 4);
        assert!(d.is_joinable(0, 2));
        assert!(d.is_joinable(3, 1));
        assert!(!d.is_joinable(0, 1), "same-side pair");
        assert!(!d.is_joinable(2, 3), "same-side pair");
    }

    #[test]
    fn cluster_histogram() {
        let d = tiny_dataset(None);
        let h = d.cluster_size_histogram();
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.weighted_total(), 4);
    }
}
