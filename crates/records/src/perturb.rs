//! Textual perturbation engine.
//!
//! Duplicate records in real dirty data differ by typos, abbreviations,
//! dropped tokens, and reorderings ("iPad 2nd Gen" vs "iPad Two"). The
//! [`Perturber`] applies a configurable mix of such edits to a canonical
//! string, producing variants whose string similarity to the original (and to
//! each other) is high but not perfect — exactly the signal the machine
//! matcher grades.

use crowdjoin_util::SplitMix64;

/// Rates of each perturbation family, each in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Per-token probability of a character-level typo.
    pub typo_rate: f64,
    /// Per-token probability of being dropped (only if >1 token remains).
    pub drop_rate: f64,
    /// Per-token probability of abbreviation to `first letter + '.'`.
    pub abbrev_rate: f64,
    /// Probability of swapping one adjacent token pair.
    pub swap_rate: f64,
}

impl PerturbConfig {
    /// A light perturbation profile (near-duplicates, high similarity).
    #[must_use]
    pub fn light() -> Self {
        Self { typo_rate: 0.05, drop_rate: 0.03, abbrev_rate: 0.05, swap_rate: 0.1 }
    }

    /// A heavier profile (messier duplicates, lower similarity).
    #[must_use]
    pub fn heavy() -> Self {
        Self { typo_rate: 0.15, drop_rate: 0.12, abbrev_rate: 0.15, swap_rate: 0.25 }
    }

    fn validate(&self) {
        for (name, v) in [
            ("typo_rate", self.typo_rate),
            ("drop_rate", self.drop_rate),
            ("abbrev_rate", self.abbrev_rate),
            ("swap_rate", self.swap_rate),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
    }
}

/// Deterministic string perturber.
#[derive(Debug, Clone)]
pub struct Perturber {
    config: PerturbConfig,
    rng: SplitMix64,
}

impl Perturber {
    /// Creates a perturber.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `config` is outside `[0, 1]`.
    #[must_use]
    pub fn new(config: PerturbConfig, seed: u64) -> Self {
        config.validate();
        Self { config, rng: SplitMix64::new(seed) }
    }

    /// Produces a perturbed variant of `text` (whitespace-tokenized).
    ///
    /// The output is never empty if the input has at least one token: drops
    /// are suppressed when only one token remains.
    pub fn perturb(&mut self, text: &str) -> String {
        let mut tokens: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        if tokens.is_empty() {
            return String::new();
        }

        // Token drops (keep at least one token).
        let mut kept: Vec<String> = Vec::with_capacity(tokens.len());
        for t in tokens.drain(..) {
            // The first token is always kept (no RNG draw), so the output is
            // never empty.
            if kept.is_empty() || self.rng.next_f64() >= self.config.drop_rate {
                kept.push(t);
            }
        }
        let mut tokens = kept;

        // Abbreviations and typos per token.
        for t in &mut tokens {
            if t.len() > 2 && self.rng.next_f64() < self.config.abbrev_rate {
                let first = t.chars().next().expect("non-empty token");
                *t = format!("{first}.");
            } else if self.rng.next_f64() < self.config.typo_rate {
                *t = self.typo(t);
            }
        }

        // One adjacent swap.
        if tokens.len() >= 2 && self.rng.next_f64() < self.config.swap_rate {
            let i = (self.rng.next_u64() % (tokens.len() as u64 - 1)) as usize;
            tokens.swap(i, i + 1);
        }

        tokens.join(" ")
    }

    /// Character-level typo: delete, duplicate, replace, or transpose.
    fn typo(&mut self, token: &str) -> String {
        let chars: Vec<char> = token.chars().collect();
        if chars.is_empty() {
            return String::new();
        }
        let pos = (self.rng.next_u64() % chars.len() as u64) as usize;
        let mut out: Vec<char> = chars.clone();
        match self.rng.next_u64() % 4 {
            0 if out.len() > 1 => {
                out.remove(pos);
            }
            1 => out.insert(pos, chars[pos]),
            2 => {
                let alphabet = "abcdefghijklmnopqrstuvwxyz";
                let c = alphabet
                    .chars()
                    .nth((self.rng.next_u64() % 26) as usize)
                    .expect("alphabet has 26 letters");
                out[pos] = c;
            }
            _ if pos + 1 < out.len() => out.swap(pos, pos + 1),
            _ => out.push(chars[0]),
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_output() {
        let mut a = Perturber::new(PerturbConfig::light(), 42);
        let mut b = Perturber::new(PerturbConfig::light(), 42);
        for _ in 0..20 {
            assert_eq!(
                a.perturb("efficient parallel labeling for entity resolution"),
                b.perturb("efficient parallel labeling for entity resolution")
            );
        }
    }

    #[test]
    fn empty_input_is_empty() {
        let mut p = Perturber::new(PerturbConfig::heavy(), 1);
        assert_eq!(p.perturb(""), "");
        assert_eq!(p.perturb("   "), "");
    }

    #[test]
    fn zero_rates_are_identity() {
        let cfg =
            PerturbConfig { typo_rate: 0.0, drop_rate: 0.0, abbrev_rate: 0.0, swap_rate: 0.0 };
        let mut p = Perturber::new(cfg, 7);
        let s = "sony digital camera silver";
        assert_eq!(p.perturb(s), s);
    }

    #[test]
    fn heavy_rates_usually_change_text() {
        let mut p = Perturber::new(PerturbConfig::heavy(), 3);
        let s = "scalable distributed query processing systems";
        let changed = (0..50).filter(|_| p.perturb(s) != s).count();
        assert!(changed > 30, "only {changed}/50 perturbations changed the text");
    }

    #[test]
    #[should_panic(expected = "typo_rate")]
    fn invalid_rate_rejected() {
        let cfg =
            PerturbConfig { typo_rate: 1.2, drop_rate: 0.0, abbrev_rate: 0.0, swap_rate: 0.0 };
        let _ = Perturber::new(cfg, 0);
    }

    proptest! {
        /// Perturbation never empties a non-empty input and never introduces
        /// leading/trailing whitespace.
        #[test]
        fn output_well_formed(
            words in proptest::collection::vec("[a-z]{1,10}", 1..8),
            seed in any::<u64>()
        ) {
            let input = words.join(" ");
            let mut p = Perturber::new(PerturbConfig::heavy(), seed);
            let out = p.perturb(&input);
            prop_assert!(!out.is_empty());
            prop_assert_eq!(out.trim(), out.as_str());
            prop_assert!(!out.contains("  "), "double space in {:?}", out);
        }

        /// At least one token of the original always survives in some form
        /// (drops preserve ≥1 token).
        #[test]
        fn token_count_bounded(
            words in proptest::collection::vec("[a-z]{2,8}", 1..8),
            seed in any::<u64>()
        ) {
            let input = words.join(" ");
            let mut p = Perturber::new(PerturbConfig::heavy(), seed);
            let out = p.perturb(&input);
            let n_out = out.split_whitespace().count();
            prop_assert!(n_out >= 1);
            prop_assert!(n_out <= words.len());
        }
    }
}
