//! The journal's recovery contract, property-tested: any byte-level
//! truncation of a valid journal recovers a **strict prefix** of its
//! records, and any single-bit flip either recovers a prefix or fails
//! loudly — never a silently different record stream (and therefore never
//! silently wrong labels on resume).

use crowdjoin_wal::{
    decode_stream, AnswerRecord, BarrierRecord, CompleteRecord, GenerationRecord, JobHeader,
    Record, StatsSnapshot, WalError, FORMAT_VERSION,
};
use proptest::prelude::*;

fn header(seed: u64) -> JobHeader {
    JobHeader {
        version: FORMAT_VERSION,
        num_objects: 500,
        order_len: 1000,
        order_hash: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        truth_hash: seed ^ 0xabcd,
        platform_hash: seed.rotate_left(17),
        engine_seed: seed,
        num_shards: 8,
        instant_decision: seed.is_multiple_of(2),
        reshard: seed.is_multiple_of(3),
        ordering: (seed % 3) as u8,
    }
}

/// A varied but deterministic record stream: answers punctuated by round
/// barriers, a generation barrier, and a completion marker.
fn build_records(seed: u64, n: usize) -> Vec<Record> {
    let mut records = Vec::new();
    let mut x = seed | 1;
    let mut step = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x
    };
    for i in 0..n {
        let shard = (step() % 4) as u32;
        let a = (step() % 400) as u32;
        records.push(Record::Answer(AnswerRecord {
            shard,
            a,
            b: a + 1 + (step() % 90) as u32,
            matching: step() % 2 == 0,
            yes_votes: (step() % 4) as u32,
            no_votes: (step() % 4) as u32,
            time: step() % 1_000_000,
            cost_cents: step() % 10_000,
        }));
        if i % 7 == 6 {
            records.push(Record::Barrier(BarrierRecord {
                shard,
                rounds: (i / 7) as u32,
                time: step() % 1_000_000,
                stats: StatsSnapshot {
                    hits_published: step() % 100,
                    pairs_published: step() % 2000,
                    pair_slots: step() % 2000,
                    assignments_completed: step() % 6000,
                    total_cost_cents: step() % 12_000,
                    last_resolution: step() % 1_000_000,
                    qualified_workers: step() % 40,
                    assignments_abandoned: step() % 10,
                },
            }));
        }
    }
    records.push(Record::Generation(GenerationRecord {
        generation: 1,
        shards: 2,
        time: step() % 1_000_000,
        rounds: 3,
        open_pairs: step() % 500,
    }));
    records.push(Record::Complete(CompleteRecord {
        answers: n as u64,
        cost_cents: step() % 50_000,
        completion: step() % 1_000_000,
    }));
    records
}

fn encode_journal(seed: u64, records: &[Record]) -> Vec<u8> {
    let mut bytes = Vec::new();
    Record::Header(header(seed)).encode(&mut bytes);
    for r in records {
        r.encode(&mut bytes);
    }
    bytes
}

/// Decoding `bytes` must yield a (possibly empty, possibly full) prefix of
/// `original`, or fail with an explicit error — anything else is silent
/// corruption.
fn assert_prefix_or_loud(bytes: &[u8], original: &[Record]) -> Result<(), TestCaseError> {
    match decode_stream(bytes) {
        Ok((_, recovered, _, _)) => {
            prop_assert!(
                recovered.len() <= original.len(),
                "recovered {} records from a journal of {}",
                recovered.len(),
                original.len()
            );
            prop_assert_eq!(
                &recovered[..],
                &original[..recovered.len()],
                "recovered records are not a prefix of the originals"
            );
        }
        Err(
            WalError::Corrupt { .. } | WalError::NotAJournal(_) | WalError::VersionMismatch { .. },
        ) => {}
        Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncation_recovers_a_strict_prefix(
        seed in proptest::any::<u64>(),
        n in 1usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let records = build_records(seed, n);
        let bytes = encode_journal(seed, &records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let truncated = &bytes[..cut];
        match decode_stream(truncated) {
            // Cutting inside the header frame is "not a journal" — loud.
            Err(WalError::NotAJournal(_)) => {}
            Ok((h, recovered, _, valid)) => {
                prop_assert_eq!(h, header(seed));
                prop_assert!(valid as usize <= cut);
                prop_assert_eq!(&recovered[..], &records[..recovered.len()]);
            }
            Err(other) => prop_assert!(false, "truncation must never report corruption: {other}"),
        }
    }

    #[test]
    fn single_bit_flip_is_prefix_or_loud(
        seed in proptest::any::<u64>(),
        n in 1usize..40,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records = build_records(seed, n);
        let mut bytes = encode_journal(seed, &records);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        assert_prefix_or_loud(&bytes, &records)?;
    }

    #[test]
    fn flip_then_truncate_is_prefix_or_loud(
        seed in proptest::any::<u64>(),
        n in 1usize..25,
        pos_frac in 0.0f64..1.0,
        cut_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // Crashes and corruption compose: a torn tail on top of a flipped
        // bit must still never fabricate records.
        let records = build_records(seed, n);
        let mut bytes = encode_journal(seed, &records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        bytes.truncate(cut.max(1));
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        assert_prefix_or_loud(&bytes, &records)?;
    }
}
