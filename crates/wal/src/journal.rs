//! The journal file: thread-safe appender and prefix-or-loud reader.

use crate::record::{
    decode_stream, CompleteRecord, GenerationRecord, JobHeader, Record, ShardEvent,
};
use crate::WalError;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// A journal open for appending. Clone-free and thread-safe: the engine's
/// event-loop workers share one handle behind an `Arc` and appends are
/// serialized by an internal mutex (per-shard record order is preserved
/// because a shard's records are only ever appended by the worker currently
/// holding its task).
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Creates a fresh journal at `path`, takes an exclusive advisory
    /// lock (held for the journal's lifetime), and writes its header frame
    /// durably.
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] if `path` holds a non-empty file — an
    /// existing journal may hold paid-for answers, so starting over
    /// requires an explicit resume or delete (checked under the lock, so
    /// two racing creates cannot both win). [`WalError::Locked`] if
    /// another process holds the journal. [`WalError::Io`] on I/O failure.
    pub fn create(path: &Path, header: &JobHeader) -> Result<Self, WalError> {
        // Deliberately no truncation here: an existing file's contents are
        // inspected (and refused) under the lock below.
        let file = OpenOptions::new().create(true).write(true).truncate(false).open(path)?;
        lock_exclusive(&file, path)?;
        if file.metadata()?.len() > 0 {
            return Err(WalError::AlreadyExists(path.to_path_buf()));
        }
        let journal = Journal { inner: Mutex::new(BufWriter::new(file)) };
        journal.append_durable(&Record::Header(*header))?;
        Ok(journal)
    }

    fn append_inner(&self, record: &Record, sync: bool) -> Result<(), WalError> {
        let mut frame = Vec::with_capacity(112);
        record.encode(&mut frame);
        let mut w = self.inner.lock().expect("journal mutex poisoned");
        w.write_all(&frame)?;
        // Always hand the frame to the OS so it survives a process crash;
        // `sync` additionally makes it survive a power failure.
        w.flush()?;
        if sync {
            w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Appends one record and flushes it to the OS (survives a process
    /// crash).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write failure — callers must treat this as
    /// fatal for the job (continuing without durability would betray a
    /// later resume).
    pub fn append(&self, record: &Record) -> Result<(), WalError> {
        self.append_inner(record, false)
    }

    /// Appends one record and `fsync`s it (survives a power failure). Used
    /// for round barriers, generation barriers, and completion markers.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write or sync failure.
    pub fn append_durable(&self, record: &Record) -> Result<(), WalError> {
        self.append_inner(record, true)
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on sync failure.
    pub fn sync(&self) -> Result<(), WalError> {
        let mut w = self.inner.lock().expect("journal mutex poisoned");
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }
}

/// A decoded journal: header, records (header frame excluded), and how the
/// byte stream ended.
#[derive(Debug, Clone)]
pub struct JournalContents {
    /// The job-identity header.
    pub header: JobHeader,
    /// Every valid record after the header, in append order.
    pub records: Vec<Record>,
    /// Byte offset at which each record's frame starts (parallel to
    /// `records`) — lets tooling and tests cut a journal at exact record
    /// boundaries.
    pub offsets: Vec<u64>,
    /// Byte length of the valid frame prefix.
    pub valid_len: u64,
    /// Bytes after `valid_len` dropped as a torn tail (0 for a clean file).
    pub torn_bytes: u64,
}

fn read_file(path: &Path) -> Result<Vec<u8>, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

fn contents_of(bytes: &[u8]) -> Result<JournalContents, WalError> {
    let (header, records, offsets, valid_len) = decode_stream(bytes)?;
    Ok(JournalContents {
        header,
        records,
        offsets,
        valid_len,
        torn_bytes: bytes.len() as u64 - valid_len,
    })
}

/// Reads a journal without modifying it, recovering the valid prefix under
/// the crate-level truncation rule.
///
/// # Errors
///
/// Everything [`decode_stream`] raises, plus [`WalError::Io`].
pub fn read_journal(path: &Path) -> Result<JournalContents, WalError> {
    contents_of(&read_file(path)?)
}

/// Takes the journal's exclusive advisory lock, distinguishing "someone
/// else holds it" from real I/O failure. Advisory locks are per open file
/// description and released when the file closes, i.e. when the
/// [`Journal`] drops.
pub(crate) fn lock_exclusive(file: &File, path: &Path) -> Result<(), WalError> {
    match file.try_lock() {
        Ok(()) => Ok(()),
        Err(std::fs::TryLockError::WouldBlock) => Err(WalError::Locked(path.to_path_buf())),
        Err(std::fs::TryLockError::Error(e)) => Err(WalError::Io(e)),
    }
}

/// Opens a journal for resuming: takes its exclusive lock, reads and
/// validates it, truncates any torn tail **on disk**, and returns the
/// contents together with a [`Journal`] positioned to append immediately
/// after the last valid record. The whole read–repair–append sequence
/// happens under the lock, so two racing resumes cannot interleave writes
/// and corrupt the paid-for history — the loser fails with
/// [`WalError::Locked`].
///
/// # Errors
///
/// Everything [`read_journal`] raises, plus [`WalError::Locked`] if
/// another process holds the journal and [`WalError::Io`] on the
/// truncate/seek.
pub fn open_resume(path: &Path) -> Result<(JournalContents, Journal), WalError> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    lock_exclusive(&file, path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let contents = contents_of(&bytes)?;
    file.set_len(contents.valid_len)?;
    file.sync_data()?;
    file.seek(SeekFrom::Start(contents.valid_len))?;
    let journal = Journal { inner: Mutex::new(BufWriter::new(file)) };
    Ok((contents, journal))
}

/// A journal split into the queues the engine replays: per-shard event
/// streams, the global generation-barrier stream, and the completion
/// marker if the job finished.
#[derive(Debug, Clone, Default)]
pub struct ReplayPlan {
    /// Per shard incarnation (report index), its answers and round
    /// barriers in append order.
    pub shards: BTreeMap<u32, VecDeque<ShardEvent>>,
    /// Re-sharding barriers in order.
    pub generations: VecDeque<GenerationRecord>,
    /// Present iff the journal records a finished job.
    pub complete: Option<CompleteRecord>,
}

impl ReplayPlan {
    /// Total journaled answers across all shards — the questions already
    /// paid for.
    #[must_use]
    pub fn num_answers(&self) -> usize {
        self.shards
            .values()
            .map(|q| q.iter().filter(|e| matches!(e, ShardEvent::Answer(_))).count())
            .sum()
    }
}

/// Splits decoded records into the engine's replay queues.
#[must_use]
pub fn partition_replay(records: &[Record]) -> ReplayPlan {
    let mut plan = ReplayPlan::default();
    for r in records {
        match *r {
            Record::Header(_) => unreachable!("decode_stream strips the header frame"),
            Record::Answer(a) => {
                plan.shards.entry(a.shard).or_default().push_back(ShardEvent::Answer(a));
            }
            Record::Barrier(b) => {
                plan.shards.entry(b.shard).or_default().push_back(ShardEvent::Barrier(b));
            }
            Record::Generation(g) => plan.generations.push_back(g),
            Record::Complete(c) => plan.complete = Some(c),
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AnswerRecord, BarrierRecord, StatsSnapshot, FORMAT_VERSION};

    fn header() -> JobHeader {
        JobHeader {
            version: FORMAT_VERSION,
            num_objects: 10,
            order_len: 12,
            order_hash: 1,
            truth_hash: 2,
            platform_hash: 3,
            engine_seed: 4,
            num_shards: 2,
            instant_decision: true,
            reshard: false,
            ordering: 0,
        }
    }

    fn answer(shard: u32, a: u32, b: u32) -> Record {
        Record::Answer(AnswerRecord {
            shard,
            a,
            b,
            matching: a + 1 == b,
            yes_votes: 3,
            no_votes: 0,
            time: u64::from(a) * 1000,
            cost_cents: 6,
        })
    }

    fn barrier(shard: u32) -> Record {
        Record::Barrier(BarrierRecord {
            shard,
            rounds: 1,
            time: 9_000,
            stats: StatsSnapshot { pairs_published: 2, ..StatsSnapshot::default() },
        })
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crowdjoin-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn create_append_read_roundtrip() {
        let path = temp_path("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header()).expect("create");
        journal.append(&answer(0, 1, 2)).expect("append");
        journal.append_durable(&barrier(0)).expect("append durable");
        journal.sync().expect("sync");
        drop(journal);

        let contents = read_journal(&path).expect("read");
        assert_eq!(contents.header, header());
        assert_eq!(contents.records, vec![answer(0, 1, 2), barrier(0)]);
        assert_eq!(contents.offsets.len(), 2);
        assert_eq!(contents.torn_bytes, 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn create_refuses_existing_journal() {
        let path = temp_path("exists.wal");
        let _ = std::fs::remove_file(&path);
        drop(Journal::create(&path, &header()).expect("create"));
        assert!(matches!(Journal::create(&path, &header()), Err(WalError::AlreadyExists(_))));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn open_resume_truncates_torn_tail_and_appends() {
        let path = temp_path("resume.wal");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header()).expect("create");
        journal.append(&answer(0, 1, 2)).expect("append");
        journal.append(&answer(1, 3, 4)).expect("append");
        drop(journal);

        // Tear the last record.
        let full = std::fs::read(&path).expect("read bytes");
        std::fs::write(&path, &full[..full.len() - 3]).expect("tear");

        let (contents, journal) = open_resume(&path).expect("open_resume");
        assert_eq!(contents.records, vec![answer(0, 1, 2)]);
        assert!(contents.torn_bytes > 0);
        journal.append(&answer(1, 5, 6)).expect("append after resume");
        drop(journal);

        let contents = read_journal(&path).expect("read after resume");
        assert_eq!(contents.records, vec![answer(0, 1, 2), answer(1, 5, 6)]);
        assert_eq!(contents.torn_bytes, 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn exclusive_lock_refuses_second_writer() {
        let path = temp_path("lock.wal");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::create(&path, &header()).expect("create");
        // While a writer is alive, both re-creating and resuming refuse.
        assert!(matches!(open_resume(&path), Err(WalError::Locked(_))));
        assert!(matches!(Journal::create(&path, &header()), Err(WalError::Locked(_))));
        // Read-only inspection stays possible.
        assert!(read_journal(&path).is_ok());
        drop(journal);
        let (_, resumed) = open_resume(&path).expect("lock released on drop");
        drop(resumed);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn partition_replay_groups_by_shard() {
        let records = vec![
            answer(0, 1, 2),
            answer(1, 3, 4),
            barrier(0),
            answer(0, 5, 6),
            Record::Generation(GenerationRecord {
                generation: 1,
                shards: 1,
                time: 9_000,
                rounds: 1,
                open_pairs: 3,
            }),
            Record::Complete(CompleteRecord { answers: 3, cost_cents: 18, completion: 9_000 }),
        ];
        let plan = partition_replay(&records);
        assert_eq!(plan.num_answers(), 3);
        assert_eq!(plan.shards.len(), 2);
        assert_eq!(plan.shards[&0].len(), 3, "two answers and a barrier for shard 0");
        assert_eq!(plan.generations.len(), 1);
        assert_eq!(plan.complete.expect("complete").answers, 3);
    }
}
