//! # crowdjoin-wal — the crash-safe answer journal
//!
//! The paper's whole economy is *never pay the crowd twice*: transitive
//! deduction exists so a question already answered is never re-asked. That
//! economy is worthless if a killed job throws the answers away — crowd
//! jobs run for hours of real wall-clock time, so durability is the
//! difference between a demo and a production system. This crate is the
//! durability layer: an append-only **write-ahead journal** of crowd
//! answers that survives a crash at any byte and lets
//! `crowdjoin_engine::Engine::resume` continue a killed job while paying
//! only for the questions the crashed run never bought.
//!
//! The crate is deliberately dependency-free (plain `std`): it defines the
//! on-disk format, a thread-safe appender, and a prefix-or-loud reader.
//! What the records *mean* — how a journal is replayed back into labelers
//! and platforms — lives one layer up in `crowdjoin-engine`.
//!
//! ## On-disk format
//!
//! A journal is a flat sequence of **frames**, nothing else — no footer, no
//! index, no in-place mutation. Each frame is:
//!
//! ```text
//! ┌───────────────┬────────────────────┬──────────────────┐
//! │ len: u32 (LE) │ crc32(payload): u32│ payload: len bytes│
//! └───────────────┴────────────────────┴──────────────────┘
//! ```
//!
//! * `len` is the payload length in bytes (`1 ..= MAX_RECORD_LEN`).
//! * `crc32` is the IEEE CRC-32 of the payload bytes (and only the
//!   payload; a corrupted `len` is caught because the payload it frames
//!   cannot pass the CRC).
//! * `payload[0]` is a record tag; the remaining bytes are the record's
//!   fixed-width little-endian fields. Decoding must consume the payload
//!   exactly — trailing bytes are corruption, not padding.
//!
//! The first frame of every journal is a [`JobHeader`] carrying the format
//! version and a fingerprint of the job's inputs (object universe, labeling
//! order, ground-truth source, platform and engine configuration). A resume
//! attempt with different inputs fails loudly at the header check instead
//! of silently diverging mid-replay.
//!
//! ## Truncation rule (torn-tail recovery)
//!
//! Appends can be torn by a crash, so the reader classifies every decode
//! failure as either a **torn tail** (recover the valid prefix) or
//! **corruption** (refuse loudly). The rule, applied at each frame start:
//!
//! * fewer than 8 bytes remain, or `len` points past end-of-file → the
//!   frame was torn mid-append: **stop, keep the prefix**;
//! * the CRC of the *final* frame mismatches (frame ends exactly at
//!   end-of-file) → torn payload write: **stop, keep the prefix**;
//! * the CRC of a non-final frame mismatches, or a CRC-valid payload does
//!   not decode → not a crash artifact: **fail with
//!   [`WalError::Corrupt`]**.
//!
//! Consequently any byte-level truncation of a valid journal recovers a
//! strict prefix of its records, and any single-bit flip either recovers a
//! strict prefix or fails loudly — never a silently different record
//! stream (property-tested in `tests/corruption.rs`).
//!
//! ## Durability levels
//!
//! [`Journal::append`] writes the frame and flushes it to the OS: the
//! record survives a **process** crash. [`Journal::append_durable`]
//! additionally `fsync`s: the record survives a **power** failure. The
//! engine appends answers with the former and round-barrier / generation /
//! completion records with the latter, so the expensive sync is paid once
//! per publish round, not once per answer.
//!
//! ## Record stream semantics
//!
//! Per shard (keyed by the engine's report index) the stream is strictly
//! `Answer* Barrier Answer* Barrier …`; [`GenerationRecord`]s mark global
//! re-sharding barriers between shard generations and a final
//! [`CompleteRecord`] marks a finished job. [`partition_replay`] splits a
//! decoded record list back into those per-shard queues for the engine's
//! replay. See `docs/ARCHITECTURE.md` for the crash & resume walkthrough.
//!
//! ## The stream journal
//!
//! Streaming jobs additionally journal record *arrivals* to a sibling
//! `FILE.stream` file (see [`StreamJournal`]) with the same frame format
//! and truncation rule but a disjoint tag range, so the two journal kinds
//! reject each other loudly. The answer journal stays byte-identical to a
//! batch run's; the stream journal is what lets a killed stream rebuild
//! its corpus before `Engine::resume` replays the answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod journal;
mod record;
mod stream;

pub use journal::{
    open_resume, partition_replay, read_journal, Journal, JournalContents, ReplayPlan,
};
pub use record::{
    crc32, decode_stream, fnv1a64, AnswerRecord, BarrierRecord, CompleteRecord, GenerationRecord,
    JobHeader, Record, ShardEvent, StatsSnapshot, FORMAT_VERSION, MAX_RECORD_LEN,
};
pub use stream::{
    decode_stream_journal, open_resume_stream, read_stream_journal, IngestFrame, SealRecord,
    StreamContents, StreamEntry, StreamHeader, StreamJournal, StreamRecord, INGEST_FRAME_RECORDS,
    MAX_STREAM_RECORD_LEN, STREAM_FORMAT_VERSION,
};

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong opening, reading, or appending a journal.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is not a journal (empty, wrong magic, or no header frame).
    NotAJournal(String),
    /// The journal was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the journal header.
        found: u32,
    },
    /// A frame in the middle of the file is damaged — this is data
    /// corruption, not a torn append, so recovery refuses to guess.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The journal's job fingerprint does not match the job being resumed
    /// (different inputs, seed, or configuration).
    HeaderMismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
        /// Value recorded in the journal.
        journal: u64,
        /// Value computed from the resuming job.
        job: u64,
    },
    /// Refusing to start a *new* journal over an existing non-empty file —
    /// it may hold paid-for answers; resume it or delete it explicitly.
    AlreadyExists(PathBuf),
    /// Another process holds the journal's exclusive lock — two writers
    /// interleaving appends would destroy the paid-for history, so the
    /// second opener is refused.
    Locked(PathBuf),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "journal I/O error: {e}"),
            WalError::NotAJournal(why) => write!(f, "not an answer journal: {why}"),
            WalError::VersionMismatch { found } => write!(
                f,
                "journal format version {found} is not supported (this build reads v{FORMAT_VERSION})"
            ),
            WalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            WalError::HeaderMismatch { field, journal, job } => write!(
                f,
                "journal belongs to a different job: {field} is {journal:#x} in the journal \
                 but {job:#x} for this run (same input, seeds, and flags are required to resume)"
            ),
            WalError::AlreadyExists(path) => write!(
                f,
                "journal {} already exists and is non-empty; resume it or delete it before \
                 starting a new job",
                path.display()
            ),
            WalError::Locked(path) => write!(
                f,
                "journal {} is locked by another process (a run is already journaling to it)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}
