//! The streaming ingestion journal — the `Ingest` half of a streaming
//! job's WAL.
//!
//! A streaming job journals to **two** files: `FILE.stream` (this module)
//! records *which records arrived*, and `FILE` (the ordinary answer
//! journal, created once the stream is closed and the labeling order is
//! final) records *which questions were paid for*. Splitting keeps the
//! batch journal format byte-identical — the answer journal's
//! [`JobHeader`](crate::JobHeader) fingerprints a finalized labeling
//! order, which a stream does not have until close — while still letting a
//! killed stream resume bit-identically: replay the `Ingest` frames to
//! rebuild the arrived corpus, continue ingesting, then let
//! `Engine::resume` replay the answers.
//!
//! The on-disk discipline is exactly the crate-level one (`[len][crc]
//! [payload]` frames, torn-tail truncation, exclusive advisory lock);
//! only the record vocabulary differs. Stream tags live in a disjoint
//! range (16+) so feeding either journal to the other reader fails with
//! [`WalError::NotAJournal`] instead of mis-decoding.
//!
//! Frame stream: one [`StreamHeader`] (always first), then [`IngestFrame`]s
//! carrying batches of arrived records (each with its caller-assigned
//! external id and raw field values — enough to re-tokenize on resume),
//! optionally ending with a [`SealRecord`] fingerprinting the final
//! candidate order once the stream closed. Ingest frames carry a running
//! `seq` (records arrived before the frame), so replay detects missing or
//! reordered frames as corruption.

use crate::journal::lock_exclusive;
use crate::record::{crc32, Reader, Writer};
use crate::WalError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// Stream-journal format version this build writes and reads.
pub const STREAM_FORMAT_VERSION: u32 = 1;

/// Upper bound on a stream frame payload. Larger than the answer
/// journal's (ingest frames carry raw record text), still small enough
/// that an absurd length is recognized as corruption.
pub const MAX_STREAM_RECORD_LEN: u32 = 1 << 24;

/// Records per ingest frame cap: [`StreamJournal::append_ingest`] splits
/// larger batches so no frame approaches [`MAX_STREAM_RECORD_LEN`].
pub const INGEST_FRAME_RECORDS: usize = 1024;

/// Frame tag values — disjoint from the answer journal's (1..=5) so the
/// two formats reject each other loudly.
mod tag {
    pub const STREAM_HEADER: u8 = 16;
    pub const INGEST: u8 = 17;
    pub const SEAL: u8 = 18;
}

/// The first frame of every stream journal: format version plus the
/// stream's identity (schema arity, a fingerprint of the matcher/engine
/// configuration, and the job seed). Resume checks these before replaying
/// a single record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Format version ([`STREAM_FORMAT_VERSION`] when written by this
    /// build).
    pub version: u32,
    /// Schema arity of the streamed records.
    pub arity: u32,
    /// [`fnv1a64`](crate::fnv1a64) fingerprint of the job configuration
    /// (matcher floor and weights, engine threshold, …) — resuming with a
    /// different configuration would silently change the candidate set.
    pub config_hash: u64,
    /// The job's master seed.
    pub seed: u64,
}

/// One arrived record inside an [`IngestFrame`]: its caller-assigned
/// external id plus the raw field values (everything needed to
/// re-tokenize it on resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEntry {
    /// Caller-assigned external id (the record's identity across arrival
    /// orders — the close path sorts by it).
    pub external: u32,
    /// Raw field values, schema order.
    pub fields: Vec<String>,
}

/// A durable batch of arrived records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestFrame {
    /// Number of records ingested before this frame (replay validates the
    /// running count, so a missing frame is corruption, not silence).
    pub seq: u64,
    /// The records, arrival order.
    pub entries: Vec<StreamEntry>,
}

/// The stream was closed: records the final corpus size and a fingerprint
/// of the canonical candidate order handed to the engine. A resume after
/// close verifies it reproduces the same order bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealRecord {
    /// Records ingested in total.
    pub num_records: u64,
    /// Candidate pairs in the canonical labeling order.
    pub order_len: u64,
    /// [`fnv1a64`](crate::fnv1a64) over the ordered pairs and likelihood
    /// bits (same recipe as the answer journal's `order_hash`).
    pub order_hash: u64,
}

/// Any stream-journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRecord {
    /// Stream identity; always the first frame.
    Header(StreamHeader),
    /// A batch of arrived records.
    Ingest(IngestFrame),
    /// Close marker with the canonical-order fingerprint.
    Seal(SealRecord),
}

impl StreamRecord {
    /// Appends this record's complete frame (`len` + `crc` + payload) to
    /// `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(128);
        let mut w = Writer(&mut payload);
        match self {
            StreamRecord::Header(h) => {
                w.u8(tag::STREAM_HEADER);
                w.u32(h.version);
                w.u32(h.arity);
                w.u64(h.config_hash);
                w.u64(h.seed);
            }
            StreamRecord::Ingest(i) => {
                w.u8(tag::INGEST);
                w.u64(i.seq);
                w.u32(u32::try_from(i.entries.len()).expect("ingest frame too large"));
                for e in &i.entries {
                    w.u32(e.external);
                    w.u32(u32::try_from(e.fields.len()).expect("record arity overflow"));
                    for f in &e.fields {
                        w.u32(u32::try_from(f.len()).expect("field too large"));
                        w.0.extend_from_slice(f.as_bytes());
                    }
                }
            }
            StreamRecord::Seal(s) => {
                w.u8(tag::SEAL);
                w.u64(s.num_records);
                w.u64(s.order_len);
                w.u64(s.order_hash);
            }
        }
        assert!(
            payload.len() <= MAX_STREAM_RECORD_LEN as usize,
            "stream frame payload exceeds MAX_STREAM_RECORD_LEN"
        );
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

fn decode_payload(payload: &[u8]) -> Result<StreamRecord, String> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let record = match r.u8()? {
        tag::STREAM_HEADER => StreamRecord::Header(StreamHeader {
            version: r.u32()?,
            arity: r.u32()?,
            config_hash: r.u64()?,
            seed: r.u64()?,
        }),
        tag::INGEST => {
            let seq = r.u64()?;
            let count = r.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(INGEST_FRAME_RECORDS));
            for _ in 0..count {
                let external = r.u32()?;
                let arity = r.u32()? as usize;
                let mut fields = Vec::with_capacity(arity.min(64));
                for _ in 0..arity {
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?;
                    fields.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|_| "field value is not UTF-8".to_string())?,
                    );
                }
                entries.push(StreamEntry { external, fields });
            }
            StreamRecord::Ingest(IngestFrame { seq, entries })
        }
        tag::SEAL => StreamRecord::Seal(SealRecord {
            num_records: r.u64()?,
            order_len: r.u64()?,
            order_hash: r.u64()?,
        }),
        t => return Err(format!("unknown stream record tag {t}")),
    };
    r.done()?;
    Ok(record)
}

/// Decodes a stream-journal byte image, applying the crate-level
/// truncation rule (same classification as
/// [`decode_stream`](crate::decode_stream), documented there).
///
/// Returns `(header, records, valid_len)`; records exclude the header
/// frame.
///
/// # Errors
///
/// [`WalError::NotAJournal`] if the file does not start with a valid
/// stream header frame (in particular for an *answer* journal — the tag
/// ranges are disjoint), [`WalError::VersionMismatch`] for an unknown
/// version, [`WalError::Corrupt`] for mid-file damage.
pub fn decode_stream_journal(
    bytes: &[u8],
) -> Result<(StreamHeader, Vec<StreamRecord>, u64), WalError> {
    let mut records = Vec::new();
    let mut header: Option<StreamHeader> = None;
    let mut pos: usize = 0;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            break; // torn: frame prelude incomplete
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_STREAM_RECORD_LEN as usize {
            if header.is_none() {
                return Err(WalError::NotAJournal(format!(
                    "first frame has implausible length {len}"
                )));
            }
            break;
        }
        if pos + 8 + len > bytes.len() {
            break; // torn: payload extends past end-of-file
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let is_final = pos + 8 + len == bytes.len();
        if crc32(payload) != crc {
            if header.is_none() {
                return Err(WalError::NotAJournal("header frame fails its CRC".to_string()));
            }
            if is_final {
                break;
            }
            return Err(WalError::Corrupt {
                offset: pos as u64,
                reason: "frame payload fails its CRC".to_string(),
            });
        }
        let record = match decode_payload(payload) {
            Ok(r) => r,
            Err(reason) => {
                if header.is_none() {
                    return Err(WalError::NotAJournal(format!("header frame invalid: {reason}")));
                }
                return Err(WalError::Corrupt { offset: pos as u64, reason });
            }
        };
        match (&header, record) {
            (None, StreamRecord::Header(h)) => {
                if h.version != STREAM_FORMAT_VERSION {
                    return Err(WalError::VersionMismatch { found: h.version });
                }
                header = Some(h);
            }
            (None, _) => {
                return Err(WalError::NotAJournal("first frame is not a stream header".to_string()))
            }
            (Some(_), StreamRecord::Header(_)) => {
                return Err(WalError::Corrupt {
                    offset: pos as u64,
                    reason: "second stream header frame".to_string(),
                });
            }
            (Some(_), r) => records.push(r),
        }
        pos += 8 + len;
    }
    let Some(header) = header else {
        return Err(WalError::NotAJournal("no complete stream header frame".to_string()));
    };
    Ok((header, records, pos as u64))
}

/// A decoded stream journal.
#[derive(Debug, Clone)]
pub struct StreamContents {
    /// The stream-identity header.
    pub header: StreamHeader,
    /// Every valid record after the header, in append order.
    pub records: Vec<StreamRecord>,
    /// Byte length of the valid frame prefix.
    pub valid_len: u64,
    /// Bytes dropped as a torn tail (0 for a clean file).
    pub torn_bytes: u64,
}

impl StreamContents {
    /// Flattens the ingest frames into one arrival-ordered entry list,
    /// validating frame sequencing, and returns the seal if the stream
    /// was closed.
    ///
    /// # Errors
    ///
    /// [`WalError::Corrupt`] if frame `seq`s do not form a running record
    /// count, if an ingest follows the seal, or if the seal's record count
    /// disagrees with the replayed entries.
    pub fn replay(&self) -> Result<(Vec<StreamEntry>, Option<SealRecord>), WalError> {
        let mut entries: Vec<StreamEntry> = Vec::new();
        let mut seal: Option<SealRecord> = None;
        for r in &self.records {
            match r {
                StreamRecord::Header(_) => unreachable!("decoder strips the header frame"),
                StreamRecord::Ingest(i) => {
                    if seal.is_some() {
                        return Err(WalError::Corrupt {
                            offset: self.valid_len,
                            reason: "ingest frame after the seal".to_string(),
                        });
                    }
                    if i.seq != entries.len() as u64 {
                        return Err(WalError::Corrupt {
                            offset: self.valid_len,
                            reason: format!(
                                "ingest frame seq {} but {} records replayed",
                                i.seq,
                                entries.len()
                            ),
                        });
                    }
                    entries.extend(i.entries.iter().cloned());
                }
                StreamRecord::Seal(s) => {
                    if s.num_records != entries.len() as u64 {
                        return Err(WalError::Corrupt {
                            offset: self.valid_len,
                            reason: format!(
                                "seal records {} but {} records replayed",
                                s.num_records,
                                entries.len()
                            ),
                        });
                    }
                    seal = Some(*s);
                }
            }
        }
        Ok((entries, seal))
    }
}

/// A stream journal open for appending — same locking and durability
/// discipline as [`Journal`](crate::Journal).
#[derive(Debug)]
pub struct StreamJournal {
    inner: Mutex<BufWriter<File>>,
}

impl StreamJournal {
    /// Creates a fresh stream journal at `path` (exclusive lock, durable
    /// header frame).
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] for a non-empty file,
    /// [`WalError::Locked`] if another process holds it, [`WalError::Io`]
    /// on I/O failure.
    pub fn create(path: &Path, header: &StreamHeader) -> Result<Self, WalError> {
        let file = OpenOptions::new().create(true).write(true).truncate(false).open(path)?;
        lock_exclusive(&file, path)?;
        if file.metadata()?.len() > 0 {
            return Err(WalError::AlreadyExists(path.to_path_buf()));
        }
        let journal = StreamJournal { inner: Mutex::new(BufWriter::new(file)) };
        journal.append(&StreamRecord::Header(*header))?;
        Ok(journal)
    }

    /// Appends one record and `fsync`s it — every stream frame is durable
    /// (ingests are chunky and infrequent, so the sync cost is per batch,
    /// not per record).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write or sync failure (fatal for the job).
    pub fn append(&self, record: &StreamRecord) -> Result<(), WalError> {
        let mut frame = Vec::with_capacity(256);
        record.encode(&mut frame);
        let mut w = self.inner.lock().expect("stream journal mutex poisoned");
        w.write_all(&frame)?;
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }

    /// Journals a batch of arrived records, splitting into frames of at
    /// most [`INGEST_FRAME_RECORDS`] entries. `seq` is the number of
    /// records ingested before this batch.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write or sync failure.
    pub fn append_ingest(&self, mut seq: u64, entries: &[StreamEntry]) -> Result<(), WalError> {
        for chunk in entries.chunks(INGEST_FRAME_RECORDS) {
            self.append(&StreamRecord::Ingest(IngestFrame { seq, entries: chunk.to_vec() }))?;
            seq += chunk.len() as u64;
        }
        Ok(())
    }

    /// Journals the close marker.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on write or sync failure.
    pub fn append_seal(&self, seal: &SealRecord) -> Result<(), WalError> {
        self.append(&StreamRecord::Seal(*seal))
    }
}

/// Reads a stream journal without modifying it.
///
/// # Errors
///
/// Everything [`decode_stream_journal`] raises, plus [`WalError::Io`].
pub fn read_stream_journal(path: &Path) -> Result<StreamContents, WalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let (header, records, valid_len) = decode_stream_journal(&bytes)?;
    Ok(StreamContents { header, records, valid_len, torn_bytes: bytes.len() as u64 - valid_len })
}

/// Opens a stream journal for resuming: exclusive lock, read, truncate
/// any torn tail on disk, return the contents plus a journal positioned
/// to append after the last valid frame.
///
/// # Errors
///
/// Everything [`read_stream_journal`] raises, plus [`WalError::Locked`]
/// and [`WalError::Io`] on the truncate/seek.
pub fn open_resume_stream(path: &Path) -> Result<(StreamContents, StreamJournal), WalError> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    lock_exclusive(&file, path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let (header, records, valid_len) = decode_stream_journal(&bytes)?;
    let contents =
        StreamContents { header, records, valid_len, torn_bytes: bytes.len() as u64 - valid_len };
    file.set_len(contents.valid_len)?;
    file.sync_data()?;
    file.seek(SeekFrom::Start(contents.valid_len))?;
    let journal = StreamJournal { inner: Mutex::new(BufWriter::new(file)) };
    Ok((contents, journal))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> StreamHeader {
        StreamHeader { version: STREAM_FORMAT_VERSION, arity: 2, config_hash: 77, seed: 42 }
    }

    fn entry(external: u32, name: &str) -> StreamEntry {
        StreamEntry { external, fields: vec![name.to_string(), "9.99".to_string()] }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crowdjoin-walstream-{}-{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_ingest_and_seal() {
        let path = temp_path("roundtrip.stream");
        let _ = std::fs::remove_file(&path);
        let journal = StreamJournal::create(&path, &header()).expect("create");
        journal.append_ingest(0, &[entry(3, "sony tv"), entry(1, "canon cam")]).expect("ingest");
        journal.append_ingest(2, &[entry(0, "sony tv 40")]).expect("ingest");
        journal
            .append_seal(&SealRecord { num_records: 3, order_len: 2, order_hash: 0xbeef })
            .expect("seal");
        drop(journal);

        let contents = read_stream_journal(&path).expect("read");
        assert_eq!(contents.header, header());
        assert_eq!(contents.torn_bytes, 0);
        let (entries, seal) = contents.replay().expect("replay");
        assert_eq!(
            entries,
            vec![entry(3, "sony tv"), entry(1, "canon cam"), entry(0, "sony tv 40")]
        );
        assert_eq!(seal, Some(SealRecord { num_records: 3, order_len: 2, order_hash: 0xbeef }));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn large_batches_split_into_frames_with_running_seq() {
        let path = temp_path("split.stream");
        let _ = std::fs::remove_file(&path);
        let journal = StreamJournal::create(&path, &header()).expect("create");
        let batch: Vec<StreamEntry> =
            (0..INGEST_FRAME_RECORDS as u32 + 10).map(|i| entry(i, "x")).collect();
        journal.append_ingest(0, &batch).expect("ingest");
        drop(journal);
        let contents = read_stream_journal(&path).expect("read");
        assert_eq!(contents.records.len(), 2, "split into two frames");
        let (entries, seal) = contents.replay().expect("replay");
        assert_eq!(entries.len(), batch.len());
        assert!(seal.is_none());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_recovers_prefix_and_resume_appends() {
        let path = temp_path("torn.stream");
        let _ = std::fs::remove_file(&path);
        let journal = StreamJournal::create(&path, &header()).expect("create");
        journal.append_ingest(0, &[entry(0, "a")]).expect("ingest");
        journal.append_ingest(1, &[entry(1, "b")]).expect("ingest");
        drop(journal);
        let full = std::fs::read(&path).expect("read bytes");
        std::fs::write(&path, &full[..full.len() - 5]).expect("tear");

        let (contents, journal) = open_resume_stream(&path).expect("resume");
        assert!(contents.torn_bytes > 0);
        let (entries, _) = contents.replay().expect("replay");
        assert_eq!(entries, vec![entry(0, "a")]);
        // Continue the stream from the replayed count.
        journal.append_ingest(entries.len() as u64, &[entry(1, "b")]).expect("re-ingest");
        drop(journal);
        let (entries, _) = read_stream_journal(&path).expect("read").replay().expect("replay");
        assert_eq!(entries, vec![entry(0, "a"), entry(1, "b")]);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn seq_gap_is_corruption() {
        let contents = StreamContents {
            header: header(),
            records: vec![StreamRecord::Ingest(IngestFrame {
                seq: 5,
                entries: vec![entry(0, "a")],
            })],
            valid_len: 0,
            torn_bytes: 0,
        };
        assert!(matches!(contents.replay(), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn answer_journal_and_stream_journal_reject_each_other() {
        use crate::record::{JobHeader, Record, FORMAT_VERSION};
        // An answer journal fed to the stream reader.
        let mut answer_bytes = Vec::new();
        Record::Header(JobHeader {
            version: FORMAT_VERSION,
            num_objects: 3,
            order_len: 1,
            order_hash: 1,
            truth_hash: 2,
            platform_hash: 3,
            engine_seed: 4,
            num_shards: 1,
            instant_decision: true,
            reshard: false,
            ordering: 0,
        })
        .encode(&mut answer_bytes);
        assert!(matches!(decode_stream_journal(&answer_bytes), Err(WalError::NotAJournal(_))));
        // A stream journal fed to the answer-journal reader.
        let mut stream_bytes = Vec::new();
        StreamRecord::Header(header()).encode(&mut stream_bytes);
        assert!(matches!(
            crate::record::decode_stream(&stream_bytes),
            Err(WalError::NotAJournal(_))
        ));
    }

    #[test]
    fn future_stream_version_rejected() {
        let mut h = header();
        h.version = STREAM_FORMAT_VERSION + 1;
        let mut bytes = Vec::new();
        StreamRecord::Header(h).encode(&mut bytes);
        assert!(matches!(
            decode_stream_journal(&bytes),
            Err(WalError::VersionMismatch { found }) if found == STREAM_FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn exclusive_lock_refuses_second_writer() {
        let path = temp_path("lock.stream");
        let _ = std::fs::remove_file(&path);
        let journal = StreamJournal::create(&path, &header()).expect("create");
        assert!(matches!(open_resume_stream(&path), Err(WalError::Locked(_))));
        assert!(matches!(StreamJournal::create(&path, &header()), Err(WalError::Locked(_))));
        drop(journal);
        let (_, resumed) = open_resume_stream(&path).expect("lock released");
        drop(resumed);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
