//! Record types and their binary encoding.
//!
//! Every record encodes to one frame (`[len][crc][payload]`, see the crate
//! docs); payloads are a one-byte tag followed by fixed-width little-endian
//! fields. Encoding and decoding are exact inverses, and decoding validates
//! that the payload is consumed to the last byte.

use crate::WalError;

/// Journal format version this build writes and reads.
///
/// History: v1 had no `ordering` header field (and re-sharding barriers
/// sized generations by raw open-pair count); v2 journals the question-
/// ordering policy and predicts publishable counts at barriers, so v1
/// journals are refused rather than replayed under different semantics.
pub const FORMAT_VERSION: u32 = 2;

/// Upper bound on a frame payload; anything larger is corruption (real
/// records are under 100 bytes).
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Frame tag values (payload byte 0).
mod tag {
    pub const HEADER: u8 = 1;
    pub const ANSWER: u8 = 2;
    pub const BARRIER: u8 = 3;
    pub const GENERATION: u8 = 4;
    pub const COMPLETE: u8 = 5;
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// IEEE CRC-32 (the zlib/gzip polynomial), bitwise implementation — the
/// journal's per-frame payload checksum.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over a byte stream — the stable 64-bit fingerprint hash used for
/// the job-identity fields of [`JobHeader`].
#[must_use]
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------------

/// The first frame of every journal: format version plus a fingerprint of
/// the job's inputs. Resuming checks every field before replaying a single
/// answer, so a journal can never be replayed into the wrong job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHeader {
    /// Format version ([`FORMAT_VERSION`] when written by this build).
    pub version: u32,
    /// Size of the object universe.
    pub num_objects: u64,
    /// Number of pairs in the global labeling order.
    pub order_len: u64,
    /// [`fnv1a64`] over every ordered pair and its likelihood bits — the
    /// labeling order decides what gets asked, so it is part of the job's
    /// identity.
    pub order_hash: u64,
    /// [`fnv1a64`] over the ground-truth entity assignment driving the
    /// simulated workers.
    pub truth_hash: u64,
    /// [`fnv1a64`] over the platform configuration (crowd size, batching,
    /// prices, latency model, platform seed).
    pub platform_hash: u64,
    /// The engine's master seed (per-shard platform seeds derive from it).
    pub engine_seed: u64,
    /// Effective target shard count the job partitioned for.
    pub num_shards: u32,
    /// Whether the instant-decision optimization was on.
    pub instant_decision: bool,
    /// Whether dynamic re-sharding was on.
    pub reshard: bool,
    /// Question-ordering policy wire byte (`OrderingMode::wire_byte` in the
    /// engine: 0 = likelihood, 1 = exact, 2 = online). The policy decides
    /// which pairs are crowdsourced, so replaying under a different one
    /// would diverge immediately; resume refuses a mismatch.
    pub ordering: u8,
}

/// One paid crowd answer: the journal's bread-and-butter record, appended
/// *before* the engine applies the answer to its labeler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerRecord {
    /// Report index of the shard incarnation that asked (unique across
    /// re-sharding generations).
    pub shard: u32,
    /// Smaller object id of the pair (global ids).
    pub a: u32,
    /// Larger object id of the pair (global ids).
    pub b: u32,
    /// Majority-vote label: `true` = matching.
    pub matching: bool,
    /// Worker votes for "matching".
    pub yes_votes: u32,
    /// Worker votes for "non-matching".
    pub no_votes: u32,
    /// Virtual time (ms) the platform resolved the answer.
    pub time: u64,
    /// The shard platform's cumulative spend (cents) at that moment —
    /// the money ledger entry backing "never pay twice".
    pub cost_cents: u64,
}

/// A shard platform's aggregate counters, embedded in barrier records so a
/// replay can verify money and work accounting bit-for-bit at every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// HITs published so far.
    pub hits_published: u64,
    /// Pairs published so far.
    pub pairs_published: u64,
    /// Pair capacity of the published HITs.
    pub pair_slots: u64,
    /// Assignments completed so far.
    pub assignments_completed: u64,
    /// Total cost in cents.
    pub total_cost_cents: u64,
    /// Virtual time (ms) of the last resolution.
    pub last_resolution: u64,
    /// Workers that passed qualification.
    pub qualified_workers: u64,
    /// Assignments abandoned and re-opened.
    pub assignments_abandoned: u64,
}

/// A shard's fully-resolved publish-round boundary: its platform drained
/// with nothing in flight. Fsynced, so every barrier is a durable point a
/// resume can rebuild exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierRecord {
    /// Report index of the shard incarnation.
    pub shard: u32,
    /// Publish rounds on the shard's critical path so far.
    pub rounds: u32,
    /// Virtual time (ms) at the boundary.
    pub time: u64,
    /// The shard platform's counters at the boundary.
    pub stats: StatsSnapshot,
}

/// A global re-sharding barrier: every shard of the generation parked, the
/// survivors were merged, and the next generation's platforms start at the
/// barrier time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationRecord {
    /// Re-sharding generation number (1 for the first barrier).
    pub generation: u32,
    /// Shards the merged generation runs on.
    pub shards: u32,
    /// Barrier virtual time (ms) — the maximum over parked platforms.
    pub time: u64,
    /// Critical-path publish rounds behind the barrier.
    pub rounds: u32,
    /// Candidate pairs still open across all parked shards.
    pub open_pairs: u64,
}

/// The job finished; resuming a journal that ends with this record replays
/// everything and asks nothing new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteRecord {
    /// Total crowd answers paid for across the whole job.
    pub answers: u64,
    /// Total money spent, in cents.
    pub cost_cents: u64,
    /// Virtual completion time (ms) — the critical path over shards.
    pub completion: u64,
}

/// Any journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// Job identity; always the first frame.
    Header(JobHeader),
    /// One paid crowd answer.
    Answer(AnswerRecord),
    /// A shard's round boundary.
    Barrier(BarrierRecord),
    /// A global re-sharding barrier.
    Generation(GenerationRecord),
    /// Job completion marker.
    Complete(CompleteRecord),
}

/// A per-shard replay event: the subsequence of the journal belonging to
/// one shard incarnation, in append order (see
/// [`partition_replay`](crate::partition_replay)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEvent {
    /// A paid answer to verify (and not re-pay) during replay.
    Answer(AnswerRecord),
    /// A round boundary whose platform counters must match exactly.
    Barrier(BarrierRecord),
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) struct Writer<'a>(pub(crate) &'a mut Vec<u8>);

impl Writer<'_> {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

impl Record {
    /// Appends this record's complete frame (`len` + `crc` + payload) to
    /// `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(96);
        let mut w = Writer(&mut payload);
        match self {
            Record::Header(h) => {
                w.u8(tag::HEADER);
                w.u32(h.version);
                w.u64(h.num_objects);
                w.u64(h.order_len);
                w.u64(h.order_hash);
                w.u64(h.truth_hash);
                w.u64(h.platform_hash);
                w.u64(h.engine_seed);
                w.u32(h.num_shards);
                w.bool(h.instant_decision);
                w.bool(h.reshard);
                w.u8(h.ordering);
            }
            Record::Answer(a) => {
                w.u8(tag::ANSWER);
                w.u32(a.shard);
                w.u32(a.a);
                w.u32(a.b);
                w.bool(a.matching);
                w.u32(a.yes_votes);
                w.u32(a.no_votes);
                w.u64(a.time);
                w.u64(a.cost_cents);
            }
            Record::Barrier(b) => {
                w.u8(tag::BARRIER);
                w.u32(b.shard);
                w.u32(b.rounds);
                w.u64(b.time);
                for v in b.stats.as_array() {
                    w.u64(v);
                }
            }
            Record::Generation(g) => {
                w.u8(tag::GENERATION);
                w.u32(g.generation);
                w.u32(g.shards);
                w.u64(g.time);
                w.u32(g.rounds);
                w.u64(g.open_pairs);
            }
            Record::Complete(c) => {
                w.u8(tag::COMPLETE);
                w.u64(c.answers);
                w.u64(c.cost_cents);
                w.u64(c.completion);
            }
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

impl StatsSnapshot {
    fn as_array(self) -> [u64; 8] {
        [
            self.hits_published,
            self.pairs_published,
            self.pair_slots,
            self.assignments_completed,
            self.total_cost_cents,
            self.last_resolution,
            self.qualified_workers,
            self.assignments_abandoned,
        ]
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over one frame's payload; every read is bounds-checked and the
/// caller asserts exhaustion at the end.
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!(
                "payload too short: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid bool byte {v}")),
        }
    }
    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    pub(crate) fn done(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.bytes.len() - self.pos))
        }
    }
}

fn decode_payload(payload: &[u8]) -> Result<Record, String> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let record = match r.u8()? {
        tag::HEADER => Record::Header(JobHeader {
            version: r.u32()?,
            num_objects: r.u64()?,
            order_len: r.u64()?,
            order_hash: r.u64()?,
            truth_hash: r.u64()?,
            platform_hash: r.u64()?,
            engine_seed: r.u64()?,
            num_shards: r.u32()?,
            instant_decision: r.bool()?,
            reshard: r.bool()?,
            ordering: r.u8()?,
        }),
        tag::ANSWER => Record::Answer(AnswerRecord {
            shard: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
            matching: r.bool()?,
            yes_votes: r.u32()?,
            no_votes: r.u32()?,
            time: r.u64()?,
            cost_cents: r.u64()?,
        }),
        tag::BARRIER => Record::Barrier(BarrierRecord {
            shard: r.u32()?,
            rounds: r.u32()?,
            time: r.u64()?,
            stats: StatsSnapshot {
                hits_published: r.u64()?,
                pairs_published: r.u64()?,
                pair_slots: r.u64()?,
                assignments_completed: r.u64()?,
                total_cost_cents: r.u64()?,
                last_resolution: r.u64()?,
                qualified_workers: r.u64()?,
                assignments_abandoned: r.u64()?,
            },
        }),
        tag::GENERATION => Record::Generation(GenerationRecord {
            generation: r.u32()?,
            shards: r.u32()?,
            time: r.u64()?,
            rounds: r.u32()?,
            open_pairs: r.u64()?,
        }),
        tag::COMPLETE => Record::Complete(CompleteRecord {
            answers: r.u64()?,
            cost_cents: r.u64()?,
            completion: r.u64()?,
        }),
        t => return Err(format!("unknown record tag {t}")),
    };
    r.done()?;
    Ok(record)
}

/// Decodes a journal byte image into its header and records, applying the
/// crate-level truncation rule.
///
/// Returns `(header, records, offsets, valid_len)`: `offsets[i]` is the
/// byte offset at which `records[i]`'s frame starts, and `valid_len` is
/// the byte length of the valid frame prefix — `valid_len < bytes.len()`
/// means a torn tail was dropped. Records exclude the header frame.
///
/// # Errors
///
/// [`WalError::NotAJournal`] if the file does not start with a valid header
/// frame, [`WalError::VersionMismatch`] for an unknown format version, and
/// [`WalError::Corrupt`] for damage that is not a torn tail (see the crate
/// docs for the exact classification).
#[allow(clippy::type_complexity)]
pub fn decode_stream(bytes: &[u8]) -> Result<(JobHeader, Vec<Record>, Vec<u64>, u64), WalError> {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut header: Option<JobHeader> = None;
    let mut pos: usize = 0;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < 8 {
            break; // torn: frame prelude itself incomplete
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_LEN as usize {
            if header.is_none() {
                return Err(WalError::NotAJournal(format!(
                    "first frame has implausible length {len}"
                )));
            }
            // An absurd length cannot frame anything after it; everything
            // from here is unreadable either way. Only accept it as a torn
            // tail; an absurd length mid-file with plausible data after it
            // is indistinguishable from one that eats the rest, so the
            // prefix rule still holds.
            break;
        }
        if pos + 8 + len > bytes.len() {
            break; // torn: payload extends past end-of-file
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let is_final = pos + 8 + len == bytes.len();
        if crc32(payload) != crc {
            if header.is_none() {
                return Err(WalError::NotAJournal("header frame fails its CRC".to_string()));
            }
            if is_final {
                break; // torn: final payload partially persisted
            }
            return Err(WalError::Corrupt {
                offset: pos as u64,
                reason: "frame payload fails its CRC".to_string(),
            });
        }
        let record = match decode_payload(payload) {
            Ok(r) => r,
            Err(reason) => {
                if header.is_none() {
                    return Err(WalError::NotAJournal(format!("header frame invalid: {reason}")));
                }
                return Err(WalError::Corrupt { offset: pos as u64, reason });
            }
        };
        match (&header, record) {
            (None, Record::Header(h)) => {
                if h.version != FORMAT_VERSION {
                    return Err(WalError::VersionMismatch { found: h.version });
                }
                header = Some(h);
            }
            (None, _) => {
                return Err(WalError::NotAJournal("first frame is not a job header".to_string()))
            }
            (Some(_), Record::Header(_)) => {
                return Err(WalError::Corrupt {
                    offset: pos as u64,
                    reason: "second header frame".to_string(),
                });
            }
            (Some(_), r) => {
                offsets.push(pos as u64);
                records.push(r);
            }
        }
        pos += 8 + len;
    }
    let Some(header) = header else {
        return Err(WalError::NotAJournal("no complete header frame".to_string()));
    };
    Ok((header, records, offsets, pos as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Answer(AnswerRecord {
                shard: 3,
                a: 1,
                b: 9,
                matching: true,
                yes_votes: 2,
                no_votes: 1,
                time: 123_456,
                cost_cents: 42,
            }),
            Record::Barrier(BarrierRecord {
                shard: 3,
                rounds: 1,
                time: 222_222,
                stats: StatsSnapshot {
                    hits_published: 2,
                    pairs_published: 21,
                    pair_slots: 40,
                    assignments_completed: 6,
                    total_cost_cents: 12,
                    last_resolution: 222_222,
                    qualified_workers: 5,
                    assignments_abandoned: 1,
                },
            }),
            Record::Generation(GenerationRecord {
                generation: 1,
                shards: 2,
                time: 222_222,
                rounds: 1,
                open_pairs: 17,
            }),
            Record::Complete(CompleteRecord { answers: 21, cost_cents: 12, completion: 222_222 }),
        ]
    }

    fn sample_header() -> JobHeader {
        JobHeader {
            version: FORMAT_VERSION,
            num_objects: 100,
            order_len: 250,
            order_hash: 0xdead_beef,
            truth_hash: 0xfeed_f00d,
            platform_hash: 7,
            engine_seed: 42,
            num_shards: 8,
            instant_decision: true,
            reshard: false,
            ordering: 2,
        }
    }

    fn encode_all(header: JobHeader, records: &[Record]) -> Vec<u8> {
        let mut bytes = Vec::new();
        Record::Header(header).encode(&mut bytes);
        for r in records {
            r.encode(&mut bytes);
        }
        bytes
    }

    #[test]
    fn roundtrip_every_record_type() {
        let bytes = encode_all(sample_header(), &sample_records());
        let (header, records, offsets, valid) = decode_stream(&bytes).expect("valid stream");
        assert_eq!(header, sample_header());
        assert_eq!(records, sample_records());
        assert_eq!(valid, bytes.len() as u64);
        assert_eq!(offsets.len(), records.len());
        // Each offset points at a frame whose payload re-encodes to the
        // bytes in place.
        for (&off, r) in offsets.iter().zip(&records) {
            let mut frame = Vec::new();
            r.encode(&mut frame);
            assert_eq!(&bytes[off as usize..off as usize + frame.len()], &frame[..]);
        }
    }

    #[test]
    fn truncation_recovers_prefix() {
        let bytes = encode_all(sample_header(), &sample_records());
        // Dropping the last byte tears the final record.
        let (_, records, _, valid) =
            decode_stream(&bytes[..bytes.len() - 1]).expect("torn tail ok");
        assert_eq!(records, sample_records()[..3]);
        assert!(valid < bytes.len() as u64);
    }

    #[test]
    fn midfile_corruption_is_loud() {
        let mut bytes = encode_all(sample_header(), &sample_records());
        // Flip a payload byte of the first answer record (well past the
        // header frame, well before the final record).
        let header_len = {
            let mut h = Vec::new();
            Record::Header(sample_header()).encode(&mut h);
            h.len()
        };
        bytes[header_len + 10] ^= 0x40;
        match decode_stream(&bytes) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn missing_or_damaged_header_rejected() {
        assert!(matches!(decode_stream(&[]), Err(WalError::NotAJournal(_))));
        let mut no_header = Vec::new();
        sample_records()[0].encode(&mut no_header);
        assert!(matches!(decode_stream(&no_header), Err(WalError::NotAJournal(_))));

        let mut bytes = encode_all(sample_header(), &[]);
        bytes[9] ^= 0xff; // damage the header payload
        assert!(matches!(decode_stream(&bytes), Err(WalError::NotAJournal(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut h = sample_header();
        h.version = FORMAT_VERSION + 1;
        let bytes = encode_all(h, &[]);
        assert!(
            matches!(decode_stream(&bytes), Err(WalError::VersionMismatch { found }) if found == FORMAT_VERSION + 1)
        );
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn fnv_distinguishes_streams() {
        assert_ne!(fnv1a64(*b"abc"), fnv1a64(*b"abd"));
        assert_ne!(fnv1a64(*b"ab"), fnv1a64(*b"abc"));
        assert_eq!(fnv1a64([]), 0xcbf2_9ce4_8422_2325);
    }
}
