//! Sharded-engine scaling: wall-clock of the full labeling job at 1, 2, 4,
//! and 8 shards on a generated 5k-record Product dataset (the Abt-Buy
//! stand-in), plus the engine-vs-core-labeler framework comparison.
//!
//! Candidate generation runs once outside the timing loops; the benchmark
//! measures the execution engine itself (partitioning, scheduling, labeling,
//! deduction, merging).

use criterion::{criterion_group, BenchmarkId, Criterion};
use crowdjoin::engine::SharedGroundTruth;
use crowdjoin::matcher::MatcherConfig;
use crowdjoin::sim::PlatformConfig;
use crowdjoin::{
    build_task, run_parallel_rounds, run_sharded_on_platform, run_sharded_on_platform_threaded,
    sort_pairs, CandidateSet, EngineConfig, GroundTruth, GroundTruthOracle, OrderingMode,
    ScoredPair, SortStrategy,
};
use crowdjoin_bench::measure;
use std::hint::black_box;

/// 5k-record product workload: the default Figure 10(b) cluster mix scaled
/// ×2.6 to fill 2×2500 records (shared with `BENCH_matcher.json` via
/// `crowdjoin_bench::product_5k_dataset`).
fn product_5k() -> (CandidateSet, GroundTruth, Vec<ScoredPair>) {
    let dataset = crowdjoin_bench::product_5k_dataset();
    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    let (task, truth) = build_task(&dataset, &matcher, 0.3);
    let candidates = task.candidates().clone();
    let order = sort_pairs(&candidates, SortStrategy::ExpectedLikelihood);
    (candidates, truth, order)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let (candidates, truth, order) = product_5k();
    println!(
        "engine bench workload: {} records, {} candidate pairs",
        candidates.num_objects(),
        candidates.len()
    );

    let mut group = c.benchmark_group("engine/product_5k_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            let cfg = EngineConfig { num_shards: shards, ..EngineConfig::default() };
            b.iter(|| {
                let oracle = SharedGroundTruth::new(&truth);
                let report = crowdjoin::run_sharded_with_oracle(
                    candidates.num_objects(),
                    &order,
                    &oracle,
                    &cfg,
                );
                black_box(report.result.num_crowdsourced())
            });
        });
    }
    group.finish();

    // Platform-driven drivers head to head: the non-blocking event loop
    // (poll-based ShardTask state machines, earliest-event scheduling) vs
    // the blocking thread-per-shard pool, on identical per-shard platform
    // simulations — plus the event loop with dynamic re-sharding merging
    // shards between rounds.
    let mut group = c.benchmark_group("engine/product_5k_platform_drivers");
    group.sample_size(10);
    let platform = PlatformConfig::perfect_workers(7);
    let platform_cfg =
        |reshard: bool| EngineConfig { num_shards: 8, seed: 3, reshard, ..EngineConfig::default() };
    group.bench_function("event_loop", |b| {
        let cfg = platform_cfg(false);
        b.iter(|| {
            let report =
                run_sharded_on_platform(candidates.num_objects(), &order, &truth, &platform, &cfg);
            black_box(report.total_cost_cents)
        });
    });
    group.bench_function("event_loop_reshard", |b| {
        let cfg = platform_cfg(true);
        b.iter(|| {
            let report =
                run_sharded_on_platform(candidates.num_objects(), &order, &truth, &platform, &cfg);
            black_box(report.total_cost_cents)
        });
    });
    group.bench_function("thread_per_shard", |b| {
        let cfg = platform_cfg(false);
        b.iter(|| {
            let report = run_sharded_on_platform_threaded(
                candidates.num_objects(),
                &order,
                &truth,
                &platform,
                &cfg,
            );
            black_box(report.total_cost_cents)
        });
    });
    group.finish();

    // Reference arm: the single-threaded core labeler (rescan-based
    // deduction sweeps) on the same workload.
    let mut group = c.benchmark_group("engine/product_5k_core_labeler");
    group.sample_size(10);
    group.bench_function("run_parallel_rounds", |b| {
        b.iter(|| {
            let mut oracle = GroundTruthOracle::new(&truth);
            let (result, _) =
                run_parallel_rounds(candidates.num_objects(), order.clone(), &mut oracle);
            black_box(result.num_crowdsourced())
        });
    });
    group.finish();

    // Headline summary: median-of-5 wall-clock for the single-threaded core
    // labeler vs the engine at 1 and 8 shards, with explicit speedups (the
    // numbers recorded in CHANGES.md).
    let median = |f: &mut dyn FnMut() -> usize| {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let t_core = median(&mut || {
        let mut oracle = GroundTruthOracle::new(&truth);
        run_parallel_rounds(candidates.num_objects(), order.clone(), &mut oracle)
            .0
            .num_crowdsourced()
    });
    let engine_time = |shards: usize| {
        let cfg = EngineConfig { num_shards: shards, ..EngineConfig::default() };
        median(&mut || {
            let oracle = SharedGroundTruth::new(&truth);
            crowdjoin::run_sharded_with_oracle(candidates.num_objects(), &order, &oracle, &cfg)
                .result
                .num_crowdsourced()
        })
    };
    let t1 = engine_time(1);
    let t8 = engine_time(8);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("\nengine summary ({cores} core(s) available):");
    println!("  core labeler (single-threaded rescan): {:>9.2} ms", t_core * 1e3);
    println!("  engine, 1 shard:                        {:>9.2} ms", t1 * 1e3);
    println!("  engine, 8 shards:                       {:>9.2} ms", t8 * 1e3);
    println!("  speedup engine@8 vs core labeler:       {:>9.2}x", t_core / t8);
    println!("  speedup engine@8 vs engine@1:           {:>9.2}x", t1 / t8);
}

/// One measured arm of the machine-readable benchmark output.
struct BenchArm {
    name: &'static str,
    shards: usize,
    /// Question-ordering policy (`--order`) the arm ran under.
    order: &'static str,
    wall_ms: f64,
    crowdsourced: usize,
    deduced: usize,
    /// Partial-HIT waste (platform arms only).
    waste: Option<f64>,
}

/// Writes `BENCH_engine.json`: the perf numbers (workload, shards, wall
/// ms, crowdsourced/deduced counts, partial-HIT waste) in a stable schema
/// so the trajectory is trackable across PRs. Runs as part of
/// `cargo bench -p crowdjoin-bench --bench engine`; override the output
/// path with `CROWDJOIN_BENCH_JSON`.
fn emit_machine_readable() {
    use crowdjoin_bench::json::{js_f64, js_opt_f64, js_str, BenchJson};
    let (candidates, truth, order) = product_5k();
    let mut arms: Vec<BenchArm> = Vec::new();

    let (wall_ms, result) = measure(5, || {
        let mut oracle = GroundTruthOracle::new(&truth);
        run_parallel_rounds(candidates.num_objects(), order.clone(), &mut oracle).0
    });
    arms.push(BenchArm {
        name: "core_labeler",
        shards: 1,
        order: "likelihood",
        wall_ms,
        crowdsourced: result.num_crowdsourced(),
        deduced: result.num_deduced(),
        waste: None,
    });

    for shards in [1usize, 8] {
        let cfg = EngineConfig { num_shards: shards, ..EngineConfig::default() };
        let (wall_ms, report) = measure(5, || {
            let oracle = SharedGroundTruth::new(&truth);
            crowdjoin::run_sharded_with_oracle(candidates.num_objects(), &order, &oracle, &cfg)
        });
        arms.push(BenchArm {
            name: "engine_oracle",
            shards,
            order: "likelihood",
            wall_ms,
            crowdsourced: report.num_crowdsourced(),
            deduced: report.num_deduced(),
            waste: None,
        });
    }

    let platform = PlatformConfig::perfect_workers(7);
    for (name, reshard) in
        [("engine_platform_event_loop", false), ("engine_platform_reshard", true)]
    {
        let cfg = EngineConfig { num_shards: 8, seed: 3, reshard, ..EngineConfig::default() };
        let (wall_ms, report) = measure(3, || {
            run_sharded_on_platform(candidates.num_objects(), &order, &truth, &platform, &cfg)
        });
        arms.push(BenchArm {
            name,
            shards: 8,
            order: "likelihood",
            wall_ms,
            crowdsourced: report.num_crowdsourced(),
            deduced: report.num_deduced(),
            waste: Some(report.partial_hit_waste()),
        });
    }

    // Ordering-policy arms: crowdsourced-question savings of `--order
    // exact|online` vs likelihood-descending on the same workload. The
    // oracle arms isolate the labeler (1 shard, perfect answers); the
    // platform arms measure the deployed event loop under a perfect and a
    // noisy (Table-2 AMT-like) crowd, at 1 shard so the savings reflect
    // the ordering policy rather than cross-shard HIT-packing jitter.
    for mode in OrderingMode::ALL {
        let cfg = EngineConfig { num_shards: 1, order: mode, ..EngineConfig::default() };
        let (wall_ms, report) = measure(3, || {
            let oracle = SharedGroundTruth::new(&truth);
            crowdjoin::run_sharded_with_oracle(candidates.num_objects(), &order, &oracle, &cfg)
        });
        arms.push(BenchArm {
            name: "engine_order_oracle",
            shards: 1,
            order: mode.as_str(),
            wall_ms,
            crowdsourced: report.num_crowdsourced(),
            deduced: report.num_deduced(),
            waste: None,
        });
    }
    let amt = PlatformConfig { num_workers: 120, ..PlatformConfig::amt_like(29) };
    for (name, platform) in
        [("engine_order_perfect", PlatformConfig::perfect_workers(7)), ("engine_order_amt", amt)]
    {
        for mode in OrderingMode::ALL {
            let cfg =
                EngineConfig { num_shards: 1, seed: 3, order: mode, ..EngineConfig::default() };
            let (wall_ms, report) = measure(3, || {
                run_sharded_on_platform(candidates.num_objects(), &order, &truth, &platform, &cfg)
            });
            arms.push(BenchArm {
                name,
                shards: 1,
                order: mode.as_str(),
                wall_ms,
                crowdsourced: report.num_crowdsourced(),
                deduced: report.num_deduced(),
                waste: Some(report.partial_hit_waste()),
            });
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = BenchJson::new("crowdjoin-bench-engine/2");
    json.field("cores", cores.to_string());
    json.field(
        "workload",
        format!(
            "{{\"name\": \"product_5k\", \"records\": {}, \"candidate_pairs\": {}}}",
            candidates.num_objects(),
            candidates.len()
        ),
    );
    for arm in &arms {
        json.arm(vec![
            ("name", js_str(arm.name)),
            ("shards", arm.shards.to_string()),
            ("order", js_str(arm.order)),
            ("wall_ms", js_f64(arm.wall_ms, 3)),
            ("crowdsourced", arm.crowdsourced.to_string()),
            ("deduced", arm.deduced.to_string()),
            ("waste", js_opt_f64(arm.waste, 4)),
            ("cores", cores.to_string()),
        ]);
    }

    // Default to the workspace root (the bench runs with the package as
    // CWD), so the artifact is always at <repo>/BENCH_engine.json.
    let path = json.write(
        "CROWDJOIN_BENCH_JSON",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json"),
    );
    println!("\nmachine-readable results written to {path}");
}

criterion_group!(benches, bench_shard_scaling);

fn main() {
    benches();
    emit_machine_readable();
}
