//! Ablation of the ClusterGraph's cluster-merge strategy.
//!
//! When a matching insert merges two clusters, their non-matching adjacency
//! sets must combine. The production `ClusterGraph` migrates the **smaller**
//! set through a root→slot indirection, independent of which component wins
//! the union-by-size. The obvious alternative — always migrating the
//! absorbed root's set — degenerates when a high-degree cluster keeps
//! getting absorbed into successively larger components: Θ(t·K) moved edges
//! over t merges instead of O(t).
//!
//! `NaiveClusterGraph` below implements that alternative so the bench can
//! demonstrate the gap on exactly that adversarial shape, plus parity on a
//! benign random workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_graph::{ClusterGraph, EdgeLabel, UnionFind};
use crowdjoin_util::{FxHashSet, SplitMix64};
use std::hint::black_box;

/// Merge strategy that always migrates the absorbed root's adjacency set.
struct NaiveClusterGraph {
    uf: UnionFind,
    adj: Vec<FxHashSet<u32>>,
}

impl NaiveClusterGraph {
    fn new(n: usize) -> Self {
        Self { uf: UnionFind::new(n), adj: vec![FxHashSet::default(); n] }
    }

    fn deduce(&mut self, a: u32, b: u32) -> Option<EdgeLabel> {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return Some(EdgeLabel::Matching);
        }
        if self.adj[ra as usize].contains(&rb) {
            Some(EdgeLabel::NonMatching)
        } else {
            None
        }
    }

    fn insert(&mut self, a: u32, b: u32, label: EdgeLabel) {
        match label {
            EdgeLabel::Matching => {
                if let Some((winner, absorbed)) = self.uf.union(a, b) {
                    // Always migrate the absorbed root's set — the strategy
                    // under test.
                    let moved = std::mem::take(&mut self.adj[absorbed as usize]);
                    for t in moved {
                        self.adj[t as usize].remove(&absorbed);
                        self.adj[t as usize].insert(winner);
                        self.adj[winner as usize].insert(t);
                    }
                }
            }
            EdgeLabel::NonMatching => {
                let ra = self.uf.find(a);
                let rb = self.uf.find(b);
                self.adj[ra as usize].insert(rb);
                self.adj[rb as usize].insert(ra);
            }
        }
    }
}

/// Adversarial sequence: a hub with `k` non-matching edges is swallowed by
/// geometrically growing clusters `rounds` times. The naive strategy moves
/// the hub's k edges at every merge; the slot strategy moves them once.
fn adversarial(k: u32, rounds: u32) -> (usize, Vec<(u32, u32, EdgeLabel)>) {
    let mut seq = Vec::new();
    let hub = 0u32;
    // k non-matching neighbors: ids 1..=k.
    for n in 1..=k {
        seq.push((hub, n, EdgeLabel::NonMatching));
    }
    // Growing clusters out of fresh ids; each round builds a cluster one
    // bigger than the hub's current component, then merges the hub in.
    let mut next = k + 1;
    let mut hub_size = 1u32;
    for _ in 0..rounds {
        let target = hub_size + 1;
        let base = next;
        for i in 0..target - 1 {
            seq.push((base, base + i + 1, EdgeLabel::Matching));
        }
        next += target;
        seq.push((hub, base, EdgeLabel::Matching));
        hub_size += target;
    }
    (next as usize, seq)
}

/// Benign random consistent workload for the parity check.
fn random_workload(n: u32, seed: u64) -> (usize, Vec<(u32, u32, EdgeLabel)>) {
    let mut rng = SplitMix64::new(seed);
    let entity: Vec<u32> =
        (0..n).map(|_| (rng.next_u64() % (n as u64 / 2).max(1)) as u32).collect();
    let mut seq = Vec::new();
    for _ in 0..n * 4 {
        let a = (rng.next_u64() % n as u64) as u32;
        let b = (rng.next_u64() % n as u64) as u32;
        if a != b {
            let label = if entity[a as usize] == entity[b as usize] {
                EdgeLabel::Matching
            } else {
                EdgeLabel::NonMatching
            };
            seq.push((a, b, label));
        }
    }
    (n as usize, seq)
}

fn run_slot(n: usize, seq: &[(u32, u32, EdgeLabel)]) -> usize {
    let mut g = ClusterGraph::new(n);
    let mut inserted = 0;
    for &(a, b, label) in seq {
        if g.deduce(a, b).is_none() {
            g.insert(a, b, label).expect("consistent");
            inserted += 1;
        }
    }
    inserted
}

fn run_naive(n: usize, seq: &[(u32, u32, EdgeLabel)]) -> usize {
    let mut g = NaiveClusterGraph::new(n);
    let mut inserted = 0;
    for &(a, b, label) in seq {
        if g.deduce(a, b).is_none() {
            g.insert(a, b, label);
            inserted += 1;
        }
    }
    inserted
}

fn bench_merge_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_strategy/adversarial_hub");
    for &k in &[1_000u32, 4_000] {
        let (n, seq) = adversarial(k, 12);
        // Sanity: both strategies agree on what gets inserted.
        assert_eq!(run_slot(n, &seq), run_naive(n, &seq));
        group.bench_with_input(BenchmarkId::new("slot_smaller_set", k), &seq, |b, seq| {
            b.iter(|| black_box(run_slot(n, seq)));
        });
        group.bench_with_input(BenchmarkId::new("naive_absorbed_set", k), &seq, |b, seq| {
            b.iter(|| black_box(run_naive(n, seq)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("merge_strategy/random_parity");
    let (n, seq) = random_workload(5_000, 7);
    assert_eq!(run_slot(n, &seq), run_naive(n, &seq));
    group.bench_function("slot_smaller_set", |b| b.iter(|| black_box(run_slot(n, &seq))));
    group.bench_function("naive_absorbed_set", |b| b.iter(|| black_box(run_naive(n, &seq))));
    group.finish();
}

criterion_group!(benches, bench_merge_strategies);
criterion_main!(benches);
