//! Microbenchmarks of the deduction substrate: incremental `ClusterGraph`
//! insert/deduce versus the literal Lemma-1 `PathOracleGraph`.
//!
//! This is the ablation for the paper's Section 3.2 design choice — the
//! graph-clustering structure exists precisely because path enumeration
//! cannot keep up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_graph::{ClusterGraph, EdgeLabel, PathOracleGraph};
use crowdjoin_util::SplitMix64;
use std::hint::black_box;

/// A consistent random label sequence over `n` objects (half-size entity
/// universe, ~4n candidate edges).
fn sequence(n: u32, seed: u64) -> Vec<(u32, u32, EdgeLabel)> {
    let mut rng = SplitMix64::new(seed);
    let entity: Vec<u32> =
        (0..n).map(|_| (rng.next_u64() % (n as u64 / 2).max(1)) as u32).collect();
    let mut out = Vec::new();
    for _ in 0..n * 4 {
        let a = (rng.next_u64() % n as u64) as u32;
        let b = (rng.next_u64() % n as u64) as u32;
        if a != b {
            let label = if entity[a as usize] == entity[b as usize] {
                EdgeLabel::Matching
            } else {
                EdgeLabel::NonMatching
            };
            out.push((a, b, label));
        }
    }
    out
}

fn bench_insert_deduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_graph/insert_deduce");
    for &n in &[100u32, 1_000, 10_000] {
        let seq = sequence(n, 42);
        group.bench_with_input(BenchmarkId::new("cluster_graph", n), &seq, |b, seq| {
            b.iter(|| {
                let mut g = ClusterGraph::new(n as usize);
                let mut deduced = 0u32;
                for &(a, b_, label) in seq {
                    match g.deduce(a, b_) {
                        Some(_) => deduced += 1,
                        None => {
                            g.insert(a, b_, label).expect("consistent");
                        }
                    }
                }
                black_box(deduced)
            });
        });
    }
    // The oracle is O(V+E) per query; only feasible at the small size.
    let seq = sequence(100, 42);
    group.bench_with_input(BenchmarkId::new("path_oracle", 100u32), &seq, |b, seq| {
        b.iter(|| {
            let mut g = PathOracleGraph::new(100);
            let mut deduced = 0u32;
            for &(a, b_, label) in seq {
                match g.deduce(a, b_) {
                    Some(_) => deduced += 1,
                    None => g.insert(a, b_, label),
                }
            }
            black_box(deduced)
        });
    });
    group.finish();
}

fn bench_deduce_only(c: &mut Criterion) {
    // Query throughput on a fully built graph.
    let n = 10_000u32;
    let seq = sequence(n, 7);
    let mut g = ClusterGraph::new(n as usize);
    for &(a, b, label) in &seq {
        if g.deduce(a, b).is_none() {
            g.insert(a, b, label).expect("consistent");
        }
    }
    let mut rng = SplitMix64::new(11);
    let queries: Vec<(u32, u32)> = (0..10_000)
        .map(|_| ((rng.next_u64() % n as u64) as u32, (rng.next_u64() % n as u64) as u32))
        .filter(|&(a, b)| a != b)
        .collect();
    c.bench_function("cluster_graph/deduce_10k_queries", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &queries {
                if g.deduce_readonly(x, y).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
}

criterion_group!(benches, bench_insert_deduce, bench_deduce_only);
criterion_main!(benches);
