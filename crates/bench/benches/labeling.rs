//! End-to-end labeling throughput on the full Paper workload: sequential vs
//! parallel labelers under each labeling order. Wall-clock here measures the
//! *framework's* cost per labeled pair (graph maintenance + deduction), not
//! crowd latency — that's what the simulator benches cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_bench::paper_workload;
use crowdjoin_core::{
    label_sequential, run_parallel_rounds, sort_pairs, GroundTruthOracle, SortStrategy,
};
use std::hint::black_box;

fn bench_orders(c: &mut Criterion) {
    let wl = paper_workload();
    let task = wl.task_at(0.3);
    let n = task.candidates().num_objects();

    let mut group = c.benchmark_group("labeling/sequential_997_records_t03");
    group.sample_size(10);
    for name in ["optimal", "expected", "random", "worst"] {
        let strategy = match name {
            "optimal" => SortStrategy::Optimal(&wl.truth),
            "expected" => SortStrategy::ExpectedLikelihood,
            "random" => SortStrategy::Random { seed: 3 },
            _ => SortStrategy::Worst(&wl.truth),
        };
        let order = sort_pairs(task.candidates(), strategy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, order| {
            b.iter(|| {
                let mut oracle = GroundTruthOracle::new(&wl.truth);
                black_box(label_sequential(n, order, &mut oracle).num_crowdsourced())
            });
        });
    }
    group.finish();

    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let mut group = c.benchmark_group("labeling/parallel_997_records_t03");
    group.sample_size(10);
    group.bench_function("parallel_rounds", |b| {
        b.iter(|| {
            let mut oracle = GroundTruthOracle::new(&wl.truth);
            let (result, stats) = run_parallel_rounds(n, order.clone(), &mut oracle);
            black_box((result.num_crowdsourced(), stats.num_iterations()))
        });
    });
    group.finish();

    // Sorting cost itself.
    let mut group = c.benchmark_group("labeling/sort");
    for name in ["expected", "random"] {
        group.bench_function(name, |b| {
            let strategy = match name {
                "expected" => SortStrategy::ExpectedLikelihood,
                _ => SortStrategy::Random { seed: 1 },
            };
            b.iter(|| black_box(sort_pairs(task.candidates(), strategy).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
