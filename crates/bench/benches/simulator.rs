//! Discrete-event simulator throughput: events processed per second for
//! full publish-to-resolution runs, across platform sizes and policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_sim::{AssignmentPolicy, Platform, PlatformConfig, TaskSpec};
use std::hint::black_box;

fn tasks(n: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|id| TaskSpec { id, truth: id % 3 != 0, priority: (id % 100) as f64 / 100.0 })
        .collect()
}

fn bench_run_to_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/run_to_completion");
    group.sample_size(10);
    for &n in &[200u64, 2_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("perfect_workers", n), &n, |b, &n| {
            b.iter(|| {
                let mut p = Platform::new(PlatformConfig::perfect_workers(1));
                p.publish(tasks(n));
                let batches = p.run_to_completion();
                black_box(batches.len())
            });
        });
    }
    group.bench_function("noisy_workers_2000", |b| {
        b.iter(|| {
            let mut p = Platform::new(PlatformConfig::amt_like(1));
            p.publish(tasks(2_000));
            black_box(p.run_to_completion().len())
        });
    });
    group.bench_function("nonmatching_first_2000", |b| {
        b.iter(|| {
            let cfg = PlatformConfig {
                assignment_policy: AssignmentPolicy::NonMatchingFirst,
                ..PlatformConfig::perfect_workers(1)
            };
            let mut p = Platform::new(cfg);
            p.publish(tasks(2_000));
            black_box(p.run_to_completion().len())
        });
    });
    group.finish();
}

fn bench_incremental_publish(c: &mut Criterion) {
    // The instant-decision pattern: many small publishes interleaved with
    // stepping.
    c.bench_function("simulator/incremental_publish_100x20", |b| {
        b.iter(|| {
            let mut p = Platform::new(PlatformConfig::perfect_workers(2));
            let mut resolved = 0usize;
            for round in 0..100u64 {
                p.publish(
                    tasks(20)
                        .into_iter()
                        .map(|mut t| {
                            t.id += round * 1_000;
                            t
                        })
                        .collect(),
                );
                let mut remaining = 20usize;
                while remaining > 0 {
                    let (_, batch) = p.step().expect("resolves");
                    remaining -= batch.len();
                    resolved += batch.len();
                }
            }
            black_box(resolved)
        });
    });
}

criterion_group!(benches, bench_run_to_completion, bench_incremental_publish);
criterion_main!(benches);
