//! Microbenchmarks of the string-similarity kernels the machine matcher is
//! built from.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdjoin_matcher::{
    dice, jaccard, jaro_winkler, levenshtein, levenshtein_similarity, overlap, token_set,
};
use std::hint::black_box;

const A: &str = "sony bravia kdl-40 lcd television 40 inch black flat panel hdtv";
const B: &str = "sony bravia kdl40 lcd tv 40in black flatpanel hd television";

fn bench_set_measures(c: &mut Criterion) {
    let (sa, sb) = (token_set(A), token_set(B));
    c.bench_function("similarity/jaccard", |bench| {
        bench.iter(|| black_box(jaccard(black_box(&sa), black_box(&sb))));
    });
    c.bench_function("similarity/dice", |bench| {
        bench.iter(|| black_box(dice(black_box(&sa), black_box(&sb))));
    });
    c.bench_function("similarity/overlap", |bench| {
        bench.iter(|| black_box(overlap(black_box(&sa), black_box(&sb))));
    });
    c.bench_function("similarity/tokenize+jaccard", |bench| {
        bench.iter(|| {
            let sa = token_set(black_box(A));
            let sb = token_set(black_box(B));
            black_box(jaccard(&sa, &sb))
        });
    });
}

fn bench_string_measures(c: &mut Criterion) {
    c.bench_function("similarity/levenshtein", |bench| {
        bench.iter(|| black_box(levenshtein(black_box(A), black_box(B))));
    });
    c.bench_function("similarity/levenshtein_similarity", |bench| {
        bench.iter(|| black_box(levenshtein_similarity(black_box(A), black_box(B))));
    });
    c.bench_function("similarity/jaro_winkler", |bench| {
        bench.iter(|| black_box(jaro_winkler(black_box(A), black_box(B))));
    });
}

criterion_group!(benches, bench_set_measures, bench_string_measures);
criterion_main!(benches);
