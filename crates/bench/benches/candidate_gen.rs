//! Candidate-generation throughput: the prefix-filtered, token-interned
//! similarity join versus the legacy inverted-index path (per-record
//! `String` token sets + hash-map cosine accumulation — the pre-refactor
//! implementation, kept here as the committed baseline) and the brute-force
//! pairwise scan.
//!
//! Alongside the criterion arms, running this bench writes
//! `BENCH_matcher.json` (schema `crowdjoin-bench-matcher/2`) with the
//! measured product workloads at 5k through 1M records — plus a MinHash/LSH
//! arm with its measured recall and an `incremental_ingest` arm pinning the
//! streaming matcher's amortized per-record insert cost against a full
//! batch re-join — so the matcher's perf trajectory is tracked across PRs,
//! the same contract as `BENCH_engine.json`.
//!
//! Thread honesty: every arm records the worker-thread count it actually
//! ran with (default 1 so wall times compare across hosts; override with
//! `CROWDJOIN_BENCH_THREADS`). Dedicated 2- and 4-thread scaling arms rerun
//! the 100k workload; on a host without that many cores they are *recorded
//! as skipped* instead of silently measuring oversubscription.
//!
//! `positional_filter_speedup` pins the 100k @ 0.3 arm against that arm's
//! committed pre-positional-filter wall time, and `positional_mode` records
//! whether the adaptive cascade actually enabled the positional filter on
//! this workload — the bench asserts the speedup cannot sit below 1.0 while
//! the filter is on.

use criterion::{criterion_group, BenchmarkId, Criterion};
use crowdjoin_bench::json::{js_f64, js_str, BenchJson};
use crowdjoin_bench::measure;
use crowdjoin_matcher::{
    generate_candidates, generate_candidates_bruteforce, jaccard, recall_of, tokenize_words,
    MatcherConfig, MatcherStrategy, StreamMatcher, TfIdfIndex,
};
use crowdjoin_records::{
    generate_paper, generate_product, ClusterSpec, Dataset, PaperGenConfig, PerturbConfig,
    ProductGenConfig,
};
use std::hint::black_box;

fn paper_dataset(n: usize) -> Dataset {
    generate_paper(&PaperGenConfig {
        num_records: n,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: n / 10, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 9,
    })
}

fn product_matcher(min_likelihood: f64, threads: usize) -> MatcherConfig {
    MatcherConfig {
        min_likelihood,
        field_weights: vec![1.0, 0.25],
        threads,
        ..MatcherConfig::for_arity(2)
    }
}

/// The pre-refactor candidate generator, replicated verbatim from the old
/// `crowdjoin_matcher::generate_candidates`: re-tokenizes every record into
/// `String` token sets, accumulates cosines through a per-record hash map,
/// and scans full posting lists. The speedup recorded in
/// `BENCH_matcher.json` is measured against this.
fn legacy_generate_candidates(dataset: &Dataset, config: &MatcherConfig) -> Vec<(u32, u32, f64)> {
    let arity = dataset.table.schema().arity();
    let index = TfIdfIndex::build(dataset, &config.field_weights);
    let token_sets: Vec<Vec<String>> = (0..dataset.len())
        .map(|i| {
            let mut tokens = Vec::new();
            for f in 0..arity {
                tokens.extend(tokenize_words(dataset.table.record(i).field(f)));
            }
            tokens.sort_unstable();
            tokens.dedup();
            tokens
        })
        .collect();
    let total_weight = config.cosine_weight + config.jaccard_weight;
    let mut out = Vec::new();
    for a in 0..dataset.len() as u32 {
        for (b, cosine) in index.accumulate_cosines(a) {
            if b <= a || !dataset.is_joinable(a as usize, b as usize) {
                continue;
            }
            let jac = jaccard(&token_sets[a as usize], &token_sets[b as usize]);
            let likelihood =
                (config.cosine_weight * cosine + config.jaccard_weight * jac) / total_weight;
            if likelihood >= config.min_likelihood {
                out.push((a, b, likelihood));
            }
        }
    }
    out.sort_unstable_by_key(|&(a, b, _)| (a, b));
    out
}

fn bench_candidate_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_gen");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let ds = paper_dataset(n);
        let cfg = MatcherConfig::for_arity(5);
        group.bench_with_input(BenchmarkId::new("filtered", n), &ds, |b, ds| {
            b.iter(|| black_box(generate_candidates(ds, &cfg).len()));
        });
        group.bench_with_input(BenchmarkId::new("legacy_inverted_index", n), &ds, |b, ds| {
            b.iter(|| black_box(legacy_generate_candidates(ds, &cfg).len()));
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &ds, |b, ds| {
            b.iter(|| black_box(generate_candidates_bruteforce(ds, &cfg).len()));
        });
    }
    // Full-scale paper run (brute force omitted: quadratic).
    let ds = paper_dataset(997);
    let cfg = MatcherConfig::for_arity(5);
    group.bench_with_input(BenchmarkId::new("filtered", 997usize), &ds, |b, ds| {
        b.iter(|| black_box(generate_candidates(ds, &cfg).len()));
    });
    group.bench_with_input(BenchmarkId::new("legacy_inverted_index", 997usize), &ds, |b, ds| {
        b.iter(|| black_box(legacy_generate_candidates(ds, &cfg).len()));
    });
    group.finish();
}

/// The 5k-record product workload `BENCH_engine.json` also uses, plus the
/// scaled workloads (50k up through 1M records).
fn product_dataset(per_side: usize) -> Dataset {
    if per_side == 2500 {
        // The exact workload BENCH_engine.json measures, shared via the lib.
        crowdjoin_bench::product_5k_dataset()
    } else {
        generate_product(&ProductGenConfig::scaled(per_side))
    }
}

/// The 100k @ 0.3 arm's committed wall time from the PR that introduced
/// the large arms (token-interned prefix filter, before the positional and
/// length filters landed). `positional_filter_speedup` in the emitted JSON
/// is the same arm's current wall time measured against this constant.
const PRE_POSITIONAL_100K_MS: f64 = 32_218.085;

/// Writes `BENCH_matcher.json`. Override the output path with
/// `CROWDJOIN_BENCH_MATCHER_JSON`, the worker-thread count with
/// `CROWDJOIN_BENCH_THREADS` (default 1, so wall times stay comparable to
/// the committed single-worker baselines).
fn emit_machine_readable() {
    struct Arm {
        name: &'static str,
        records: usize,
        floor: f64,
        threads: usize,
        wall_ms: Option<f64>,
        candidates: Option<usize>,
        recall: Option<f64>,
        skipped: Option<String>,
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let bench_threads: usize = std::env::var("CROWDJOIN_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1);
    if cores == 1 {
        // Wall times below are not comparable to multi-core baselines;
        // leave an explicit marker in the run log next to the JSON note.
        println!("note: single-core run — arm wall times reflect 1 worker");
    }
    let pos_on_counter = crowdjoin_obs::counter("matcher.blocks.pos_on", crowdjoin_obs::NO_SHARD);
    let mut arms: Vec<Arm> = Vec::new();

    // 5k: the acceptance workload — legacy baseline vs the filtered path at
    // the default 0.05 floor (bit-identical outputs), plus the filtered
    // path at the 0.3 threshold the labeling pipeline actually uses. The
    // legacy path has no thread knob; it always runs serial.
    let ds5k = product_dataset(2500);
    let cfg = product_matcher(0.05, bench_threads);
    let (legacy_ms, legacy) = measure(5, || legacy_generate_candidates(&ds5k, &cfg));
    arms.push(Arm {
        name: "legacy_inverted_index",
        records: ds5k.len(),
        floor: 0.05,
        threads: 1,
        wall_ms: Some(legacy_ms),
        candidates: Some(legacy.len()),
        recall: None,
        skipped: None,
    });
    let (filtered_ms, filtered) = measure(5, || generate_candidates(&ds5k, &cfg));
    assert_eq!(
        legacy.len(),
        filtered.len(),
        "filtered path must emit the same candidate set as the legacy path"
    );
    for ((la, lb, _), f) in legacy.iter().zip(filtered.iter()) {
        assert_eq!((*la, *lb), (f.a, f.b), "candidate sets diverged");
    }
    arms.push(Arm {
        name: "filtered",
        records: ds5k.len(),
        floor: 0.05,
        threads: bench_threads,
        wall_ms: Some(filtered_ms),
        candidates: Some(filtered.len()),
        recall: None,
        skipped: None,
    });
    let speedup = legacy_ms / filtered_ms;
    let cfg03 = product_matcher(0.3, bench_threads);
    let (ms, out) = measure(5, || generate_candidates(&ds5k, &cfg03));
    arms.push(Arm {
        name: "filtered",
        records: ds5k.len(),
        floor: 0.3,
        threads: bench_threads,
        wall_ms: Some(ms),
        candidates: Some(out.len()),
        recall: None,
        skipped: None,
    });

    // Scale arms: 50k and 100k records at the pipeline threshold. (The
    // unfiltered 0.05 floor enumerates every token-sharing pair — ~10⁹
    // scorings at 100k — which is exactly the regime the prefix filter
    // exists to avoid, so the large arms run at 0.3.) The 100k arm doubles
    // as the positional-filter yardstick: its wall time is pinned against
    // the committed pre-positional baseline, and the pos_on counter delta
    // around the run records whether the adaptive cascade actually enabled
    // the positional filter on this workload.
    let mut ms_100k = f64::NAN;
    let mut pos_blocks_100k = 0;
    for (per_side, samples) in [(25_000usize, 3), (50_000, 1)] {
        let ds = product_dataset(per_side);
        let pos_before = pos_on_counter.get();
        let (ms, out) = measure(samples, || generate_candidates(&ds, &cfg03));
        if per_side == 50_000 {
            ms_100k = ms;
            pos_blocks_100k = pos_on_counter.get() - pos_before;
        }
        arms.push(Arm {
            name: "filtered",
            records: ds.len(),
            floor: 0.3,
            threads: bench_threads,
            wall_ms: Some(ms),
            candidates: Some(out.len()),
            recall: None,
            skipped: None,
        });
    }
    let positional_speedup = PRE_POSITIONAL_100K_MS / ms_100k;
    let positional_mode = if pos_blocks_100k > 0 { "adaptive_on" } else { "adaptive_off" };
    // Satellite contract: the positional filter may not *cost* wall time
    // silently. Either the cascade turned it off (and says so in the JSON),
    // or the measured run must beat the committed pre-positional baseline.
    assert!(
        positional_speedup >= 1.0 || positional_mode == "adaptive_off",
        "positional filter is adaptively ON yet the 100k arm regressed to \
         {positional_speedup:.2}x vs the pre-positional baseline"
    );

    // Thread-scaling arms: the 100k workload again at 2 and 4 workers. A
    // host without that many physical cores would only measure
    // oversubscription noise, so those arms are recorded as skipped rather
    // than silently emitting bogus scaling numbers.
    for t in [2usize, 4] {
        let skip = (cores < t).then(|| format!("host has {cores} core(s)"));
        if let Some(reason) = skip {
            arms.push(Arm {
                name: "filtered_scaling",
                records: 100_000,
                floor: 0.3,
                threads: t,
                wall_ms: None,
                candidates: None,
                recall: None,
                skipped: Some(reason),
            });
            continue;
        }
        let ds = product_dataset(50_000);
        let cfg_t = product_matcher(0.3, t);
        let (ms, out) = measure(1, || generate_candidates(&ds, &cfg_t));
        arms.push(Arm {
            name: "filtered_scaling",
            records: ds.len(),
            floor: 0.3,
            threads: t,
            wall_ms: Some(ms),
            candidates: Some(out.len()),
            recall: None,
            skipped: None,
        });
    }

    // Very large arms: 500k and 1M records. Candidate volume at 0.3 grows
    // roughly with n^1.9 on this workload (~1.2M pairs at 100k), so the
    // big arms raise the floor — 0.4 at 500k, 0.5 at 1M — which is also
    // the regime a 1M-record crowdsourced join would actually run at (the
    // crowd budget, not the matcher, is the binding constraint).
    for (per_side, floor) in [(250_000usize, 0.4), (500_000, 0.5)] {
        let ds = product_dataset(per_side);
        let cfg_big = product_matcher(floor, bench_threads);
        let (ms, out) = measure(1, || generate_candidates(&ds, &cfg_big));
        arms.push(Arm {
            name: "filtered",
            records: ds.len(),
            floor,
            threads: bench_threads,
            wall_ms: Some(ms),
            candidates: Some(out.len()),
            recall: None,
            skipped: None,
        });
    }

    // Low-floor LSH arm: same 100k @ 0.3 workload as the exact yardstick
    // arm, so wall times compare directly; recall is measured against the
    // exact run (deterministic — fixed seeds and hash family). The wide
    // 64×2 banding profile matches the 0.3 floor: its collision knee sits
    // near Jaccard (1/64)^(1/2) ≈ 0.125, below the floor's similarity
    // range, where the near-duplicate 16×4 profile (knee ≈ 0.5) misses
    // nearly everything the floor keeps.
    {
        let ds = product_dataset(50_000);
        let exact = generate_candidates(&ds, &cfg03);
        let cfg_lsh = MatcherConfig {
            strategy: MatcherStrategy::Lsh { bands: 64, rows: 2 },
            ..cfg03.clone()
        };
        let (ms, out) = measure(1, || generate_candidates(&ds, &cfg_lsh));
        arms.push(Arm {
            name: "lsh_64x2",
            records: ds.len(),
            floor: 0.3,
            threads: bench_threads,
            wall_ms: Some(ms),
            candidates: Some(out.len()),
            recall: Some(recall_of(&out, &exact)),
            skipped: None,
        });
    }

    // Streaming arm: the same 50k-record product workload inserted one
    // record at a time through the incremental matcher, plus one exact
    // snapshot at the end. The stream matcher is the self-join shape, so
    // the re-join yardstick is the batch matcher over the identical
    // records as a self join, and the snapshot must be bit-identical to
    // it. The emitted `incremental_*` fields record the amortized
    // per-record insert cost and how many arrivals one full batch re-join
    // buys — the price a naive re-join-per-arrival service would pay.
    let (incremental_per_record_us, incremental_arrivals_per_rejoin);
    {
        let ds = product_dataset(25_000);
        let self_ds = Dataset {
            table: ds.table.clone(),
            entity_of: ds.entity_of.clone(),
            split: None,
            name: "product-selfjoin".into(),
        };
        let (rejoin_ms, batch) = measure(1, || generate_candidates(&self_ds, &cfg03));
        let schema = self_ds.table.schema().clone();
        let (ms, out) = measure(1, || {
            let mut matcher = StreamMatcher::new(schema.clone(), cfg03.clone());
            for i in 0..self_ds.len() {
                matcher.insert(self_ds.table.record(i));
            }
            matcher.candidates()
        });
        assert_eq!(out.len(), batch.len(), "incremental snapshot diverged from the batch join");
        for (s, b) in out.iter().zip(&batch) {
            assert_eq!((s.a, s.b), (b.a, b.b), "incremental snapshot diverged");
            assert_eq!(s.likelihood.to_bits(), b.likelihood.to_bits(), "likelihood bits diverged");
        }
        let n = self_ds.len() as f64;
        incremental_per_record_us = ms * 1000.0 / n;
        incremental_arrivals_per_rejoin = rejoin_ms / (ms / n);
        arms.push(Arm {
            name: "incremental_ingest",
            records: self_ds.len(),
            floor: 0.3,
            threads: bench_threads,
            wall_ms: Some(ms),
            candidates: Some(out.len()),
            recall: None,
            skipped: None,
        });
    }

    let mut json = BenchJson::new("crowdjoin-bench-matcher/2");
    json.field("cores", cores.to_string());
    json.field("workload", js_str("product (Abt-Buy-shaped cross join, name+price)"));
    json.field("speedup_filtered_vs_legacy_5k", js_f64(speedup, 2));
    json.field("positional_filter_speedup", js_f64(positional_speedup, 2));
    json.field("positional_mode", js_str(positional_mode));
    json.field("positional_baseline_100k_ms", js_f64(PRE_POSITIONAL_100K_MS, 3));
    json.field("incremental_per_record_us", js_f64(incremental_per_record_us, 2));
    json.field("incremental_arrivals_per_rejoin", js_f64(incremental_arrivals_per_rejoin, 1));
    for arm in &arms {
        let mut fields = vec![
            ("name", js_str(arm.name)),
            ("records", arm.records.to_string()),
            ("min_likelihood", js_f64(arm.floor, 2)),
            ("threads", arm.threads.to_string()),
            ("cores", cores.to_string()),
        ];
        if let Some(wall_ms) = arm.wall_ms {
            fields.push(("wall_ms", js_f64(wall_ms, 3)));
        }
        if let Some(candidates) = arm.candidates {
            fields.push(("candidates", candidates.to_string()));
        }
        if let Some(recall) = arm.recall {
            fields.push(("recall", js_f64(recall, 4)));
        }
        if let Some(skipped) = &arm.skipped {
            fields.push(("skipped", js_str(skipped)));
        }
        json.arm(fields);
    }
    let path = json.write(
        "CROWDJOIN_BENCH_MATCHER_JSON",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matcher.json"),
    );
    println!("\nmachine-readable results written to {path}");
    println!("filtered vs legacy on the 5k workload: {speedup:.2}x");
    println!(
        "100k @ 0.3 arm: {positional_speedup:.2}x vs the committed \
         {PRE_POSITIONAL_100K_MS:.0} ms pre-positional baseline (positional filter \
         {positional_mode}, {pos_blocks_100k} blocks enabled it)"
    );
    println!(
        "incremental ingest at 50k: {incremental_per_record_us:.1} us/record amortized — one \
         full re-join buys {incremental_arrivals_per_rejoin:.0} streamed arrivals"
    );
}

criterion_group!(benches, bench_candidate_gen);

fn main() {
    benches();
    emit_machine_readable();
}
