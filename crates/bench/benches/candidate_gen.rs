//! Candidate-generation throughput: inverted-index similarity join versus
//! the brute-force pairwise scan (the machine stage of the hybrid
//! pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_matcher::{generate_candidates, generate_candidates_bruteforce, MatcherConfig};
use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
use std::hint::black_box;

fn dataset(n: usize) -> crowdjoin_records::Dataset {
    generate_paper(&PaperGenConfig {
        num_records: n,
        clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size: n / 10, force_max: true },
        perturb: PerturbConfig::heavy(),
        sibling_probability: 0.3,
        seed: 9,
    })
}

fn bench_candidate_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_gen");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let ds = dataset(n);
        let cfg = MatcherConfig::for_arity(5);
        group.bench_with_input(BenchmarkId::new("inverted_index", n), &ds, |b, ds| {
            b.iter(|| black_box(generate_candidates(ds, &cfg).len()));
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &ds, |b, ds| {
            b.iter(|| black_box(generate_candidates_bruteforce(ds, &cfg).len()));
        });
    }
    // Full-scale indexed run (brute force omitted: quadratic).
    let ds = dataset(997);
    let cfg = MatcherConfig::for_arity(5);
    group.bench_with_input(BenchmarkId::new("inverted_index", 997usize), &ds, |b, ds| {
        b.iter(|| black_box(generate_candidates(ds, &cfg).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_candidate_gen);
criterion_main!(benches);
