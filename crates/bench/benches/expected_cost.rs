//! Scaling of the exact expected-cost machinery (Section 4.2 analysis):
//! consistent-world enumeration is exponential in the number of pairs, and
//! brute-force order search is factorial — the benches document exactly how
//! far the exact tooling reaches (and why the paper needs the heuristic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdjoin_core::{Pair, ScoredPair, WorldEnumeration};
use crowdjoin_util::SplitMix64;
use std::hint::black_box;

fn instance(n_pairs: usize, seed: u64) -> (usize, Vec<ScoredPair>) {
    let n_objects = (n_pairs / 2 + 2) as u32;
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    while pairs.len() < n_pairs {
        let a = (rng.next_u64() % n_objects as u64) as u32;
        let b = (rng.next_u64() % n_objects as u64) as u32;
        if a != b {
            let p = Pair::new(a, b);
            if seen.insert(p) {
                pairs.push(ScoredPair::new(p, rng.next_f64()));
            }
        }
    }
    (n_objects as usize, pairs)
}

fn bench_world_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_cost/enumerate_worlds");
    for &m in &[8usize, 12, 16] {
        let (n, pairs) = instance(m, 5);
        group.bench_with_input(BenchmarkId::from_parameter(m), &pairs, |b, pairs| {
            b.iter(|| black_box(WorldEnumeration::new(n, pairs).unwrap().num_worlds()));
        });
    }
    group.finish();
}

fn bench_expected_cost_eval(c: &mut Criterion) {
    let (n, pairs) = instance(12, 5);
    let we = WorldEnumeration::new(n, &pairs).unwrap();
    let order: Vec<usize> = (0..pairs.len()).collect();
    c.bench_function("expected_cost/eval_one_order_12_pairs", |b| {
        b.iter(|| black_box(we.expected_cost(black_box(&order))));
    });
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_cost/brute_force_optimal");
    group.sample_size(10);
    for &m in &[5usize, 6, 7] {
        let (n, pairs) = instance(m, 9);
        let we = WorldEnumeration::new(n, &pairs).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &we, |b, we| {
            b.iter(|| black_box(we.brute_force_optimal().1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_world_enumeration, bench_expected_cost_eval, bench_brute_force);
criterion_main!(benches);
