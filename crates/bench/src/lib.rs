//! Experiment harness shared code: standard dataset builds and table
//! rendering used by every figure/table binary.
//!
//! Run `cargo run -p crowdjoin-bench --release --bin <experiment>`; each
//! binary prints the paper-style rows and the corresponding paper values for
//! side-by-side comparison (EXPERIMENTS.md records a snapshot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use crowdjoin_core::{CandidateSet, GroundTruth, LabelingTask};
use crowdjoin_matcher::{generate_candidates, MatcherConfig};
use crowdjoin_records::{
    generate_paper, generate_product, Dataset, PaperGenConfig, ProductGenConfig,
};

/// Master seed for all experiments (override with `CROWDJOIN_SEED`).
#[must_use]
pub fn experiment_seed() -> u64 {
    std::env::var("CROWDJOIN_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(20130622)
}

/// A fully prepared workload: dataset, scored candidates, ground truth.
pub struct Workload {
    /// Human-readable name ("Paper" / "Product").
    pub name: &'static str,
    /// The generated dataset.
    pub dataset: Dataset,
    /// All machine candidates (unthresholded, floor 0.05).
    pub candidates: CandidateSet,
    /// Ground truth for oracles and quality scoring.
    pub truth: GroundTruth,
}

impl Workload {
    /// Candidates at a likelihood threshold, as a labeling task.
    #[must_use]
    pub fn task_at(&self, threshold: f64) -> LabelingTask {
        LabelingTask::new(self.candidates.above_threshold(threshold))
    }
}

/// Builds the Paper workload (Cora stand-in: 997 records, heavy-tail
/// clusters, self join).
#[must_use]
pub fn paper_workload() -> Workload {
    let cfg = PaperGenConfig { seed: experiment_seed(), ..PaperGenConfig::default() };
    let dataset = generate_paper(&cfg);
    build_workload("Paper", dataset, MatcherConfig::for_arity(5))
}

/// Builds the Product workload (Abt-Buy stand-in: 1081 × 1092 records,
/// mostly 1:1 matches, cross join).
#[must_use]
pub fn product_workload() -> Workload {
    let cfg =
        ProductGenConfig { seed: experiment_seed().wrapping_add(1), ..ProductGenConfig::default() };
    let dataset = generate_product(&cfg);
    // Names dominate product matching; prices are noisy secondary evidence.
    let matcher = MatcherConfig { field_weights: vec![1.0, 0.25], ..MatcherConfig::for_arity(2) };
    build_workload("Product", dataset, matcher)
}

/// The 5k-record product dataset (2×2500 records, the Figure 10(b) cluster
/// mix scaled ×2.6) that **both** perf snapshots measure —
/// `BENCH_engine.json` and `BENCH_matcher.json` stay comparable because
/// they share this one definition.
#[must_use]
pub fn product_5k_dataset() -> Dataset {
    generate_product(&ProductGenConfig {
        table_a: 2500,
        table_b: 2500,
        clusters: crowdjoin_records::ClusterSpec::Explicit(vec![
            (2, 1664),
            (3, 338),
            (4, 104),
            (5, 31),
            (6, 10),
        ]),
        ..ProductGenConfig::default()
    })
}

/// Median-of-N wall clock (milliseconds) of `f`, plus its last result. Use
/// an odd `samples` for a true median — even counts return the upper
/// middle, which for N = 2 is just the slower run.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(samples >= 1, "measure needs at least one sample");
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t = std::time::Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("samples >= 1"))
}

fn build_workload(name: &'static str, dataset: Dataset, matcher: MatcherConfig) -> Workload {
    let raw = generate_candidates(&dataset, &matcher);
    let candidates = crowdjoin::to_candidate_set(&dataset, &raw);
    let truth = crowdjoin::ground_truth_of(&dataset);
    Workload { name, dataset, candidates, truth }
}

/// Prints a Markdown-ish experiment table: header row + aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        fmt_row(row);
    }
}

/// The likelihood thresholds swept by Figures 11/12.
pub const THRESHOLDS: [f64; 5] = [0.5, 0.4, 0.3, 0.2, 0.1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_and_have_signal() {
        let paper = paper_workload();
        assert_eq!(paper.dataset.len(), 997);
        assert!(paper.candidates.len() > 1000, "Paper candidates: {}", paper.candidates.len());
        let product = product_workload();
        assert_eq!(product.dataset.len(), 2173);
        assert!(product.candidates.len() > 500, "Product candidates: {}", product.candidates.len());
    }
}
