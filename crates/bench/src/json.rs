//! Machine-readable benchmark output.
//!
//! Every perf-tracking bench (`benches/engine.rs` → `BENCH_engine.json`,
//! `benches/candidate_gen.rs` → `BENCH_matcher.json`) writes a small JSON
//! snapshot so the performance trajectory is trackable across PRs. This
//! module is the shared writer: a top-level object with a `schema` tag, a
//! few scalar fields, and an `arms` array of measured rows — rendered with
//! stable formatting so committed snapshots diff cleanly. The primitive
//! `js_*` renderers live in `crowdjoin-obs`'s `json` module (the same
//! helpers the trace sinks and the CLI's JSON report use) and are
//! re-exported here so existing bench code keeps compiling unchanged.

pub use crowdjoin_obs::json::{js_f64, js_opt_f64, js_str};

/// A benchmark snapshot under construction: scalar fields plus an `arms`
/// array. Values are pre-rendered JSON (use the `js_*` helpers).
#[derive(Debug, Clone)]
pub struct BenchJson {
    schema: String,
    fields: Vec<(String, String)>,
    arms: Vec<Vec<(String, String)>>,
}

impl BenchJson {
    /// Starts a snapshot with the given schema tag (e.g.
    /// `"crowdjoin-bench-engine/1"`).
    #[must_use]
    pub fn new(schema: &str) -> Self {
        Self { schema: schema.to_string(), fields: Vec::new(), arms: Vec::new() }
    }

    /// Adds a top-level field with a pre-rendered JSON value.
    pub fn field(&mut self, key: &str, rendered_value: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), rendered_value.into()));
        self
    }

    /// Adds one measured arm: `(key, pre-rendered value)` pairs.
    pub fn arm(&mut self, fields: Vec<(&str, String)>) -> &mut Self {
        self.arms.push(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
        self
    }

    /// Renders the whole snapshot.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", js_str(&self.schema)));
        for (key, value) in &self.fields {
            out.push_str(&format!("  {}: {value},\n", js_str(key)));
        }
        out.push_str("  \"arms\": [\n");
        for (i, arm) in self.arms.iter().enumerate() {
            let row: Vec<String> = arm.iter().map(|(k, v)| format!("{}: {v}", js_str(k))).collect();
            out.push_str(&format!(
                "    {{{}}}{}\n",
                row.join(", "),
                if i + 1 == self.arms.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the snapshot to `$env_override` if set, else `default_path`,
    /// and returns the path written.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (benches want a loud failure).
    pub fn write(&self, env_override: &str, default_path: &str) -> String {
        let path = std::env::var(env_override).unwrap_or_else(|_| default_path.to_string());
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_shape() {
        let mut json = BenchJson::new("test/1");
        json.field("cores", "4");
        json.field("workload", format!("{{\"name\": {}, \"records\": 10}}", js_str("tiny")));
        json.arm(vec![("name", js_str("fast")), ("wall_ms", js_f64(1.23456, 3))]);
        json.arm(vec![("name", js_str("slow")), ("waste", js_opt_f64(None, 4))]);
        let rendered = json.render();
        assert_eq!(
            rendered,
            "{\n  \"schema\": \"test/1\",\n  \"cores\": 4,\n  \"workload\": {\"name\": \
             \"tiny\", \"records\": 10},\n  \"arms\": [\n    {\"name\": \"fast\", \
             \"wall_ms\": 1.235},\n    {\"name\": \"slow\", \"waste\": null}\n  ]\n}\n"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(js_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(js_str("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(js_str("tab\tchar"), "\"tab\\u0009char\"");
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(js_f64(1.0 / 3.0, 4), "0.3333");
        assert_eq!(js_opt_f64(Some(2.5), 1), "2.5");
        assert_eq!(js_opt_f64(None, 1), "null");
    }
}
