//! **Ablation (ours)** — the causal link between Figure 10 and Figure 11:
//! sweep the generator's maximum cluster size (holding records constant) and
//! measure the transitive savings.
//!
//! The paper argues Paper/Cora benefits more than Product/Abt-Buy *because*
//! its clusters are bigger (a k-cluster costs k−1 instead of k(k−1)/2). This
//! sweep demonstrates the relationship directly on one dataset family.

use crowdjoin_bench::print_table;
use crowdjoin_core::{optimal_cost, GroundTruthOracle, LabelingTask, SortStrategy};
use crowdjoin_matcher::MatcherConfig;
use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};

fn main() {
    let seed = crowdjoin_bench::experiment_seed();
    let mut rows = Vec::new();
    for &max_size in &[2usize, 5, 10, 25, 50, 100] {
        let dataset = generate_paper(&PaperGenConfig {
            num_records: 600,
            clusters: ClusterSpec::PowerLaw { alpha: 1.9, max_size, force_max: max_size > 1 },
            perturb: PerturbConfig::heavy(),
            sibling_probability: 0.3,
            seed,
        });
        let (task, truth): (LabelingTask, _) =
            crowdjoin::build_task(&dataset, &MatcherConfig::for_arity(5), 0.3);
        let candidates = task.candidates().len();
        if candidates == 0 {
            continue;
        }
        let optimal = optimal_cost(task.candidates(), &truth).total();
        let mut oracle = GroundTruthOracle::new(&truth);
        let expected =
            task.run_sequential(SortStrategy::ExpectedLikelihood, &mut oracle).num_crowdsourced();
        rows.push(vec![
            max_size.to_string(),
            candidates.to_string(),
            optimal.to_string(),
            expected.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - optimal as f64 / candidates as f64)),
        ]);
    }
    print_table(
        "Ablation — savings vs maximum cluster size (600 records, threshold 0.3)",
        &["max cluster", "candidates", "optimal", "expected", "saving"],
        &rows,
    );
    println!("\nexpected shape: savings grow monotonically with cluster size, from near");
    println!("zero (1:1-style data, Product regime) to >90% (Cora regime).");
}
