//! **Figure 12** — number of crowdsourced pairs required by different
//! labeling orders (Optimal / Expected / Random / Worst) across thresholds.
//!
//! Paper reference: on Paper at threshold 0.1 the worst order crowdsources
//! 139,181 pairs — about 26× the optimal order; the expected (likelihood-
//! descending) order tracks the optimal closely; random sits in between.

use crowdjoin_bench::{paper_workload, print_table, product_workload, THRESHOLDS};
use crowdjoin_core::{GroundTruthOracle, SortStrategy};

fn main() {
    let seed = crowdjoin_bench::experiment_seed();
    for wl in [paper_workload(), product_workload()] {
        let mut rows = Vec::new();
        for t in THRESHOLDS {
            let task = wl.task_at(t);
            let mut row = vec![format!("{t:.1}"), task.candidates().len().to_string()];
            for strategy in [
                SortStrategy::Optimal(&wl.truth),
                SortStrategy::ExpectedLikelihood,
                SortStrategy::Random { seed },
                SortStrategy::Worst(&wl.truth),
            ] {
                let mut oracle = GroundTruthOracle::new(&wl.truth);
                let cost = task.run_sequential(strategy, &mut oracle).num_crowdsourced();
                row.push(cost.to_string());
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 12 — {} : crowdsourced pairs by labeling order", wl.name),
            &["threshold", "candidates", "Optimal", "Expected", "Random", "Worst"],
            &rows,
        );
    }
    println!("\npaper reference: Paper @0.1 worst = 139,181 ≈ 26× optimal; expected ≈ optimal");
}
