//! **Table 2** — Transitive vs Non-Transitive on the (simulated) crowd
//! platform with imperfect workers: #HITs, completion time, and result
//! quality (precision / recall / F-measure), threshold 0.3.
//!
//! Paper reference:
//! * Paper dataset — Non-Transitive 1,465 HITs / 755 h / F 79.83%;
//!   Transitive 52 HITs / 32 h / F 74.25% (96.5% fewer HITs, ~5 points of F
//!   lost to labels falsely deduced from wrongly answered pairs).
//! * Product — Non-Transitive 158 HITs / 22 h / F 80.14%; Transitive 144
//!   HITs / 30 h / F 79.71% (≈10% fewer HITs, quality preserved, slightly
//!   longer because publishing is iterative).

use crowdjoin::runner::{run_non_transitive_on_platform, run_parallel_on_platform};
use crowdjoin_bench::{paper_workload, print_table, product_workload};
use crowdjoin_core::{sort_pairs, QualityMetrics, SortStrategy};
use crowdjoin_sim::{Platform, PlatformConfig};

fn main() {
    let threshold = 0.3;
    let seed = crowdjoin_bench::experiment_seed();
    for wl in [paper_workload(), product_workload()] {
        let task = wl.task_at(threshold);
        let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);

        let mut p1 = Platform::new(PlatformConfig::amt_like(seed));
        let non_transitive =
            run_non_transitive_on_platform(task.candidates().pairs(), &wl.truth, &mut p1);
        let q_nt = QualityMetrics::of_result(&non_transitive.result, &wl.truth);

        let mut p2 = Platform::new(PlatformConfig::amt_like(seed));
        let transitive = run_parallel_on_platform(
            task.candidates().num_objects(),
            order,
            &wl.truth,
            &mut p2,
            true,
        );
        let q_tr = QualityMetrics::of_result(&transitive.result, &wl.truth);

        let rows = vec![
            vec![
                "Non-Transitive".to_string(),
                non_transitive.stats.hits_published.to_string(),
                format!("{:.1} h", non_transitive.completion.as_hours()),
                format!("{:.2}%", q_nt.precision() * 100.0),
                format!("{:.2}%", q_nt.recall() * 100.0),
                format!("{:.2}%", q_nt.f_measure() * 100.0),
            ],
            vec![
                "Transitive".to_string(),
                transitive.stats.hits_published.to_string(),
                format!("{:.1} h", transitive.completion.as_hours()),
                format!("{:.2}%", q_tr.precision() * 100.0),
                format!("{:.2}%", q_tr.recall() * 100.0),
                format!("{:.2}%", q_tr.f_measure() * 100.0),
            ],
        ];
        print_table(
            &format!("Table 2 — {} (threshold 0.3, noisy workers, majority vote)", wl.name),
            &["method", "# of HITs", "time", "precision", "recall", "F-measure"],
            &rows,
        );
        println!(
            "transitive: {} crowdsourced + {} deduced, {} vote conflicts",
            transitive.result.num_crowdsourced(),
            transitive.result.num_deduced(),
            transitive.result.num_conflicts(),
        );
    }
    println!("\npaper reference @0.3: Paper 1465->52 HITs, F 79.8->74.3; Product 158->144 HITs, F 80.1->79.7");
}
