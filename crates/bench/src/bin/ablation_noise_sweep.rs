//! **Ablation (ours)** — error propagation through deduction: sweep the
//! per-answer error rate and compare the F-measure of Transitive vs
//! Non-Transitive labeling.
//!
//! This isolates the mechanism behind Table 2's quality loss: a wrong
//! crowdsourced label poisons every label deduced from it, and the damage
//! grows with cluster size (one wrong matching edge can merge two whole
//! clusters). Non-transitive labeling pays for every pair but contains each
//! error to a single pair.

use crowdjoin_bench::{paper_workload, print_table};
use crowdjoin_core::{
    label_non_transitive, label_sequential, sort_pairs, NoisyOracle, QualityMetrics, SortStrategy,
};

fn main() {
    let wl = paper_workload();
    let task = wl.task_at(0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let n = task.candidates().num_objects();
    let seed = crowdjoin_bench::experiment_seed();

    let mut rows = Vec::new();
    for &rate in &[0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3] {
        let mut o1 = NoisyOracle::new(&wl.truth, rate, seed);
        let transitive = label_sequential(n, &order, &mut o1);
        let q_t = QualityMetrics::of_result(&transitive, &wl.truth);

        let mut o2 = NoisyOracle::new(&wl.truth, rate, seed);
        let baseline = label_non_transitive(&order, &mut o2);
        let q_b = QualityMetrics::of_result(&baseline, &wl.truth);

        rows.push(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.2}%", q_b.f_measure() * 100.0),
            format!("{:.2}%", q_t.f_measure() * 100.0),
            format!("{:+.2}", (q_t.f_measure() - q_b.f_measure()) * 100.0),
            transitive.num_crowdsourced().to_string(),
            baseline.num_crowdsourced().to_string(),
        ]);
    }
    print_table(
        "Ablation — error propagation (Paper @0.3, per-answer error rate sweep)",
        &["error rate", "F non-transitive", "F transitive", "ΔF (points)", "T asked", "NT asked"],
        &rows,
    );
    println!("\nexpected shape: ΔF grows increasingly negative with the error rate, while");
    println!("the transitive arm keeps asking ~10x fewer questions (Table 2's trade-off).");
}
