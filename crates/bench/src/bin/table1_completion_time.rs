//! **Table 1** — Parallel(ID) vs Non-Parallel completion time on the (simulated)
//! crowd platform, threshold 0.3, perfect workers (the paper simulated
//! always-correct answers for this experiment so both arms cost the same
//! money and differ only in time).
//!
//! Paper reference: Paper dataset, 68 HITs — 78 hours sequential vs 8 hours
//! parallel; Product, 144 HITs — 97 hours vs 14 hours.

use crowdjoin::runner::{replay_pairs_sequentially, run_parallel_on_platform};
use crowdjoin_bench::{paper_workload, print_table, product_workload};
use crowdjoin_core::{sort_pairs, Provenance, ScoredPair, SortStrategy};
use crowdjoin_sim::{Platform, PlatformConfig};

fn main() {
    let threshold = 0.3;
    let seed = crowdjoin_bench::experiment_seed();
    let mut rows = Vec::new();
    for wl in [paper_workload(), product_workload()] {
        let task = wl.task_at(threshold);
        let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);

        // Parallel(ID).
        let mut p1 = Platform::new(PlatformConfig::perfect_workers(seed));
        let par = run_parallel_on_platform(
            task.candidates().num_objects(),
            order.clone(),
            &wl.truth,
            &mut p1,
            true,
        );

        // Non-Parallel: the same crowdsourced pairs, one HIT at a time.
        let crowdsourced: Vec<ScoredPair> = order
            .iter()
            .copied()
            .filter(|sp| par.result.provenance_of(sp.pair) == Some(Provenance::Crowdsourced))
            .collect();
        let mut p2 = Platform::new(PlatformConfig::perfect_workers(seed));
        let seq = replay_pairs_sequentially(&crowdsourced, &wl.truth, &mut p2, 20);

        rows.push(vec![
            wl.name.to_string(),
            par.stats.hits_published.to_string(),
            format!("{:.1} hours", seq.completion.as_hours()),
            format!("{:.1} hours", par.completion.as_hours()),
            format!("{:.1}x", seq.completion.as_hours() / par.completion.as_hours().max(1e-9)),
        ]);
    }
    print_table(
        "Table 1 — Parallel(ID) vs Non-Parallel completion time (threshold 0.3)",
        &["dataset", "# of HITs", "Non-Parallel", "Parallel(ID)", "speedup"],
        &rows,
    );
    println!(
        "\npaper reference: Paper 68 HITs, 78h vs 8h (9.8x); Product 144 HITs, 97h vs 14h (6.9x)"
    );
}
