//! **Figure 11** — effectiveness of transitive relations: number of
//! crowdsourced pairs, Transitive (optimal labeling order, as in the paper)
//! vs Non-Transitive, across likelihood thresholds 0.5 → 0.1.
//!
//! Paper reference: on Paper/Cora Transitive cuts crowdsourced pairs by
//! ~95% (e.g. 1,065 vs 29,281 at threshold 0.3); on Product/Abt-Buy the
//! saving is ~20% at low thresholds (e.g. 6,134 vs 8,315 at 0.2).

use crowdjoin_bench::{paper_workload, print_table, product_workload, THRESHOLDS};
use crowdjoin_core::{GroundTruthOracle, SortStrategy};

fn main() {
    for wl in [paper_workload(), product_workload()] {
        let mut rows = Vec::new();
        for t in THRESHOLDS {
            let task = wl.task_at(t);
            let non_transitive = task.candidates().len();
            let mut oracle = GroundTruthOracle::new(&wl.truth);
            let transitive = task
                .run_sequential(SortStrategy::Optimal(&wl.truth), &mut oracle)
                .num_crowdsourced();
            let saving = if non_transitive == 0 {
                0.0
            } else {
                100.0 * (1.0 - transitive as f64 / non_transitive as f64)
            };
            rows.push(vec![
                format!("{t:.1}"),
                non_transitive.to_string(),
                transitive.to_string(),
                format!("{saving:.1}%"),
            ]);
        }
        print_table(
            &format!("Figure 11 — {} : crowdsourced pairs vs likelihood threshold", wl.name),
            &["threshold", "Non-Transitive", "Transitive", "saving"],
            &rows,
        );
    }
    println!(
        "\npaper reference @0.3: Paper 29,281 -> 1,065 (96%); Product @0.2: 8,315 -> 6,134 (26%)"
    );
}
