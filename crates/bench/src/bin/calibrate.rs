//! Calibration scratch: candidate counts and savings across thresholds.
use crowdjoin_bench::{paper_workload, product_workload, THRESHOLDS};
use crowdjoin_core::{optimal_cost, GroundTruthOracle, SortStrategy};

fn main() {
    for wl in [paper_workload(), product_workload()] {
        println!("=== {} ===", wl.name);
        println!("records={} candidates(floor 0.05)={}", wl.dataset.len(), wl.candidates.len());
        let h = wl.dataset.cluster_size_histogram();
        println!("clusters: n={} max={}", h.num_buckets(), h.max_bucket().unwrap_or(0));
        for t in THRESHOLDS {
            let task = wl.task_at(t);
            let n = task.candidates().len();
            let n_match =
                task.candidates().pairs().iter().filter(|sp| wl.truth.is_matching(sp.pair)).count();
            let opt = optimal_cost(task.candidates(), &wl.truth);
            let mut o = GroundTruthOracle::new(&wl.truth);
            let exp = task.run_sequential(SortStrategy::ExpectedLikelihood, &mut o);
            println!(
                "t={t:.1}: candidates={n} (match={n_match}) optimal={} expected={} savings={:.1}%",
                opt.total(),
                exp.num_crowdsourced(),
                100.0 * (1.0 - opt.total() as f64 / n.max(1) as f64)
            );
        }
        // recall of the candidate set at floor: fraction of true pairs captured
        let total_true = wl.truth.num_matching_pairs();
        let captured =
            wl.candidates.pairs().iter().filter(|sp| wl.truth.is_matching(sp.pair)).count();
        println!("true matching pairs={total_true} captured at floor={captured}");
    }
}
