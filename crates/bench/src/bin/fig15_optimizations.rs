//! **Figure 15** — optimization techniques for the parallel labeling
//! algorithm: number of pairs available on the crowdsourcing platform as
//! labeling progresses, for plain `Parallel`, `Parallel(ID)` (instant
//! decision), and `Parallel(ID+NF)` (instant decision + non-matching first).
//!
//! Paper reference (Product dataset): after 1,420 pairs were crowdsourced,
//! plain Parallel had 1 available pair on the platform while Parallel(ID)
//! had 219 and Parallel(ID+NF) 281 — the optimizations keep workers fed.

use crowdjoin::runner::{run_parallel_on_platform, AvailabilitySample};
use crowdjoin_bench::{paper_workload, print_table, product_workload, Workload};
use crowdjoin_core::{sort_pairs, SortStrategy};
use crowdjoin_sim::{AssignmentPolicy, Platform, PlatformConfig};

struct Arm {
    label: &'static str,
    instant_decision: bool,
    policy: AssignmentPolicy,
}

const ARMS: [Arm; 3] = [
    Arm { label: "Parallel", instant_decision: false, policy: AssignmentPolicy::Random },
    Arm { label: "Parallel(ID)", instant_decision: true, policy: AssignmentPolicy::Random },
    Arm {
        label: "Parallel(ID+NF)",
        instant_decision: true,
        policy: AssignmentPolicy::NonMatchingFirst,
    },
];

fn run_arm(wl: &Workload, arm: &Arm, threshold: f64, seed: u64) -> Vec<AvailabilitySample> {
    let task = wl.task_at(threshold);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let cfg =
        PlatformConfig { assignment_policy: arm.policy, ..PlatformConfig::perfect_workers(seed) };
    let mut platform = Platform::new(cfg);
    let report = run_parallel_on_platform(
        task.candidates().num_objects(),
        order,
        &wl.truth,
        &mut platform,
        arm.instant_decision,
    );
    report.series
}

/// Open-pair level at selected progress points (fractions of total
/// crowdsourced pairs), interpolated from the series.
fn level_at(series: &[AvailabilitySample], crowdsourced: usize) -> usize {
    series.iter().rfind(|s| s.crowdsourced <= crowdsourced).map_or(0, |s| s.open_pairs)
}

fn main() {
    let threshold = 0.3;
    let seed = crowdjoin_bench::experiment_seed();
    for wl in [paper_workload(), product_workload()] {
        let series: Vec<(&str, Vec<AvailabilitySample>)> =
            ARMS.iter().map(|arm| (arm.label, run_arm(&wl, arm, threshold, seed))).collect();
        let total =
            series.iter().map(|(_, s)| s.last().map_or(0, |x| x.crowdsourced)).max().unwrap_or(0);

        let mut rows = Vec::new();
        for pct in [10, 25, 50, 75, 90] {
            let point = total * pct / 100;
            let mut row = vec![format!("{point} ({pct}%)")];
            for (_, s) in &series {
                row.push(level_at(s, point).to_string());
            }
            rows.push(row);
        }
        // Mean availability over the whole run (the "keep workers fed"
        // summary statistic).
        let mut mean_row = vec!["mean".to_string()];
        for (_, s) in &series {
            let mean = if s.is_empty() {
                0.0
            } else {
                s.iter().map(|x| x.open_pairs as f64).sum::<f64>() / s.len() as f64
            };
            mean_row.push(format!("{mean:.0}"));
        }
        rows.push(mean_row);

        print_table(
            &format!(
                "Figure 15 — {} @ threshold {threshold}: available pairs on the platform",
                wl.name
            ),
            &["crowdsourced so far", "Parallel", "Parallel(ID)", "Parallel(ID+NF)"],
            &rows,
        );
    }
    println!("\npaper reference (Product @1420 crowdsourced): Parallel 1, ID 219, ID+NF 281");
}
