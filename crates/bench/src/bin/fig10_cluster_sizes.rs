//! **Figure 10** — cluster-size distribution of the two datasets.
//!
//! Paper reference: Paper/Cora has far larger clusters (up to 102 records;
//! one such cluster alone turns 5151 pairwise questions into 101), while
//! Product/Abt-Buy clusters are 1–6 records. This is why transitivity saves
//! ~95% on Paper but only ~10–25% on Product.

use crowdjoin_bench::{paper_workload, print_table, product_workload};

fn main() {
    for wl in [paper_workload(), product_workload()] {
        let h = wl.dataset.cluster_size_histogram();
        let rows: Vec<Vec<String>> = h
            .sorted_entries()
            .into_iter()
            .map(|(size, count)| vec![size.to_string(), count.to_string()])
            .collect();
        print_table(
            &format!(
                "Figure 10({}) — {} cluster-size distribution",
                if wl.name == "Paper" { "a" } else { "b" },
                wl.name
            ),
            &["cluster size", "# clusters"],
            &rows,
        );
        println!(
            "records = {}, clusters = {}, largest cluster = {}",
            wl.dataset.len(),
            h.total(),
            h.max_bucket().unwrap_or(0)
        );
        let big = h.max_bucket().unwrap_or(0);
        if big > 1 {
            println!(
                "largest cluster alone: {} pairwise questions vs {} with transitivity",
                big * (big - 1) / 2,
                big - 1
            );
        }
    }
    println!("\npaper reference: Cora max cluster = 102 (5151 pairs -> 101); Abt-Buy max = 6");
}
