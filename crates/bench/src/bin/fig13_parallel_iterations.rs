//! **Figures 13 & 14** — parallel vs non-parallel labeling: pairs
//! crowdsourced per iteration, at likelihood thresholds 0.3 (Fig 13) and
//! 0.4 (Fig 14).
//!
//! Paper reference (Fig 13, Paper dataset): 1,237 crowdsourced pairs in just
//! 14 iterations — 908, 163, 40, 32, 20, 18, 11, 9, 9, 9, 7, 6, 4, 1 —
//! versus 1,237 one-pair iterations for Non-Parallel. Higher thresholds
//! (Fig 14) give sparser graphs and even fewer iterations.
//!
//! Pass `--threshold 0.4` (or set `CROWDJOIN_THRESHOLD`) for the Figure 14
//! variant; default is 0.3.

use crowdjoin_bench::{paper_workload, print_table, product_workload};
use crowdjoin_core::{run_parallel_rounds, sort_pairs, GroundTruthOracle, SortStrategy};

fn main() {
    let mut threshold: f64 =
        std::env::var("CROWDJOIN_THRESHOLD").ok().and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--threshold") {
        threshold = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--threshold needs a numeric value");
    }
    let figure = if (threshold - 0.4).abs() < 1e-9 { "Figure 14" } else { "Figure 13" };

    for wl in [paper_workload(), product_workload()] {
        let task = wl.task_at(threshold);
        let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
        let mut oracle = GroundTruthOracle::new(&wl.truth);
        let (result, stats) =
            run_parallel_rounds(task.candidates().num_objects(), order, &mut oracle);

        let rows: Vec<Vec<String>> = stats
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| vec![(i + 1).to_string(), n.to_string(), "1".to_string()])
            .collect();
        print_table(
            &format!(
                "{figure} — {} @ threshold {threshold}: pairs crowdsourced per iteration",
                wl.name
            ),
            &["iteration", "Parallel", "Non-Parallel"],
            &rows,
        );
        println!(
            "Parallel: {} pairs in {} iterations;  Non-Parallel: {} pairs in {} iterations",
            stats.total_crowdsourced(),
            stats.num_iterations(),
            result.num_crowdsourced(),
            result.num_crowdsourced(),
        );
    }
    println!("\npaper reference (Fig 13 Paper): 1,237 pairs in 14 iterations, first batch 908");
}
