//! **Ablation (ours)** — HIT batch-size sweep on the simulated platform:
//! money vs latency.
//!
//! The paper adopts 20 pairs/HIT from prior work [14, 25] without sweeping
//! it. Batching divides the per-assignment overhead across pairs (fewer
//! HITs → less money) but enlarges the unit of work (longer per-HIT
//! latency, coarser instant decisions). This sweep shows the trade-off on
//! the Paper workload.

use crowdjoin::runner::run_parallel_on_platform;
use crowdjoin_bench::{paper_workload, print_table};
use crowdjoin_core::{sort_pairs, SortStrategy};
use crowdjoin_sim::{Platform, PlatformConfig};

fn main() {
    let wl = paper_workload();
    let task = wl.task_at(0.3);
    let order = sort_pairs(task.candidates(), SortStrategy::ExpectedLikelihood);
    let n = task.candidates().num_objects();
    let seed = crowdjoin_bench::experiment_seed();

    let mut rows = Vec::new();
    for &batch in &[1usize, 5, 10, 20, 50, 100] {
        let cfg = PlatformConfig { batch_size: batch, ..PlatformConfig::perfect_workers(seed) };
        let mut platform = Platform::new(cfg);
        let report = run_parallel_on_platform(n, order.clone(), &wl.truth, &mut platform, true);
        rows.push(vec![
            batch.to_string(),
            report.stats.hits_published.to_string(),
            report.stats.total_cost_cents.to_string(),
            format!("{:.1} h", report.completion.as_hours()),
            report.result.num_crowdsourced().to_string(),
        ]);
    }
    print_table(
        "Ablation — batch size sweep (Paper @0.3, Parallel(ID), perfect workers)",
        &["pairs/HIT", "HITs", "cost (¢)", "completion", "crowdsourced"],
        &rows,
    );
    println!("\nexpected shape: cost falls roughly linearly with batch size (fixed price");
    println!("per assignment) while the crowdsourced pair count stays constant; very large");
    println!("batches stop helping once HITs outnumber available workers.");
}
