//! **Ablation (ours)** — how close is the likelihood-descending heuristic to
//! the exact expected-optimal labeling order?
//!
//! The expected-optimal ordering problem is NP-hard (Vesdapunt et al., VLDB
//! 2014; acknowledged in the paper's revision), so the heuristic has no
//! worst-case guarantee. On small random instances we can afford the exact
//! machinery from `crowdjoin_core::expected`: enumerate consistent worlds,
//! evaluate the heuristic's expected cost, and brute-force all permutations.

use crowdjoin_core::{Pair, ScoredPair, WorldEnumeration};
use crowdjoin_util::SplitMix64;

fn random_instance(seed: u64, n_objects: u32, n_pairs: usize) -> (usize, Vec<ScoredPair>) {
    let mut rng = SplitMix64::new(seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    while pairs.len() < n_pairs {
        let a = (rng.next_u64() % n_objects as u64) as u32;
        let b = (rng.next_u64() % n_objects as u64) as u32;
        if a != b {
            let p = Pair::new(a, b);
            if seen.insert(p) {
                pairs.push(ScoredPair::new(p, rng.next_f64()));
            }
        }
        if seen.len() as u64 >= (n_objects as u64) * (n_objects as u64 - 1) / 2 {
            break;
        }
    }
    (n_objects as usize, pairs)
}

fn main() {
    let trials = 200;
    let mut heuristic_total = 0.0;
    let mut optimal_total = 0.0;
    let mut random_total = 0.0;
    let mut heuristic_hits_optimum = 0;

    for trial in 0..trials {
        let (n, pairs) = random_instance(1000 + trial, 5, 6);
        let we = WorldEnumeration::new(n, &pairs).expect("small instance");

        // Heuristic: likelihood descending.
        let mut heuristic: Vec<usize> = (0..pairs.len()).collect();
        heuristic.sort_by(|&i, &j| pairs[j].likelihood.total_cmp(&pairs[i].likelihood));
        let h_cost = we.expected_cost(&heuristic);

        // Exact optimum.
        let (_, best) = we.brute_force_optimal();

        // Random order baseline (input order is already random).
        let identity: Vec<usize> = (0..pairs.len()).collect();
        let r_cost = we.expected_cost(&identity);

        heuristic_total += h_cost;
        optimal_total += best;
        random_total += r_cost;
        if (h_cost - best).abs() < 1e-9 {
            heuristic_hits_optimum += 1;
        }
    }

    println!("## Ablation — expected labeling order, {trials} random 6-pair instances\n");
    println!("mean E[crowdsourced pairs]:");
    println!("  expected-optimal (brute force) : {:.4}", optimal_total / trials as f64);
    println!("  likelihood-desc heuristic      : {:.4}", heuristic_total / trials as f64);
    println!("  random order                   : {:.4}", random_total / trials as f64);
    println!(
        "heuristic achieves the exact optimum on {heuristic_hits_optimum}/{trials} instances \
         ({:.0}%)",
        100.0 * heuristic_hits_optimum as f64 / trials as f64
    );
    println!(
        "mean heuristic gap vs optimum: {:.2}%",
        100.0 * (heuristic_total - optimal_total) / optimal_total
    );
}
