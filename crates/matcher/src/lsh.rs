//! MinHash/LSH banding — the **approximate** candidate path for the
//! low-floor regime.
//!
//! The exact prefix filter degenerates when the blended threshold `t`
//! approaches 0: every record indexes (nearly) its whole token set and the
//! join collapses back to the token-cross-product bound. MinHash banding
//! sidesteps that wall by never enumerating token postings at all:
//!
//! 1. each record's token set is summarized by `k = bands × rows` MinHash
//!    values — `sig_j(r) = min_{tok ∈ r} h_j(tok)` — where two sets agree
//!    on any one hash with probability exactly their Jaccard similarity
//!    `s`;
//! 2. the signature is cut into `bands` groups of `rows` values; each group
//!    is hashed to a bucket key, and records sharing a bucket in **any**
//!    band become a candidate pair. The collision probability is the
//!    classic S-curve `P(s) = 1 − (1 − s^rows)^bands`, with its knee near
//!    `s ≈ (1/bands)^(1/rows)` — pick `bands`/`rows` so the knee sits at
//!    the Jaccard level you still care about;
//! 3. every colliding pair is then re-scored **exactly** (same cosine /
//!    Jaccard / extra-measure blend as the exact path), so every emitted
//!    likelihood is bit-exact and the floor applies exactly.
//!
//! What is approximate is therefore *recall only*: a qualifying pair whose
//! sets collide in no band is silently missed. Recall is **measured, not
//! guaranteed** — `tests/lsh_recall.rs` pins measured recall against the
//! brute-force oracle on seeded workloads, and `BENCH_matcher.json`
//! records the low-floor LSH arm next to the exact arms. Callers that need
//! lossless output must use [`MatcherStrategy::Exact`]; the staged exact
//! entry point ([`crate::generate_candidates_prepared`]) rejects an LSH
//! config outright.
//!
//! Hashing is dependency-free and deterministic: per-hash seeds derive
//! from [`LSH_SEED`] through the workspace's [`SplitMix64`]/`derive_seed`
//! shim RNG, so a fixed `(dataset, bands, rows)` always yields the same
//! candidate set on every platform and thread count.

use crate::candidates::{MatcherConfig, MatcherStrategy, ScoredCandidate};
use crate::corpus::TokenizedCorpus;
use crate::similarity::jaccard;
use crate::tfidf::TfIdfIndex;
use crowdjoin_records::Dataset;
use crowdjoin_util::{derive_seed, FxHashMap, SplitMix64};

/// Root seed of the MinHash hash family (the workspace experiment seed;
/// per-hash seeds are `derive_seed(LSH_SEED, j)`).
pub const LSH_SEED: u64 = 20130622;

/// One 64-bit mix of a pre-mixed token value against a hash seed
/// (xor + the splitmix64 finalizer's multiply/shift avalanche).
#[inline]
fn mix(base: u64, seed: u64) -> u64 {
    let mut h = base ^ seed;
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// MinHash/LSH candidate generation (see the module docs). Emits every
/// *colliding* pair that shares ≥ 1 token and whose exactly-computed
/// blended likelihood clears `config.min_likelihood`, sorted by `(a, b)` —
/// a subset of what [`crate::generate_candidates`] with
/// [`MatcherStrategy::Exact`] emits, with bit-identical likelihoods on the
/// shared pairs.
///
/// # Panics
///
/// Panics if `config.strategy` is not [`MatcherStrategy::Lsh`], if the
/// corpus or index do not match the dataset, or if `config.field_weights`
/// does not match the schema arity.
#[must_use]
pub fn generate_candidates_lsh(
    dataset: &Dataset,
    corpus: &TokenizedCorpus,
    index: &TfIdfIndex,
    config: &MatcherConfig,
) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    let MatcherStrategy::Lsh { bands, rows } = config.strategy else {
        panic!("generate_candidates_lsh requires MatcherStrategy::Lsh");
    };
    assert_eq!(corpus.num_records(), dataset.len(), "corpus built for a different dataset");
    assert_eq!(index.num_records(), dataset.len(), "index built for a different dataset");
    let stage_clock = std::time::Instant::now();
    let mut span = crowdjoin_obs::obs_span!(
        "matcher",
        "matcher.lsh",
        crowdjoin_obs::NO_SHARD,
        records = dataset.len(),
    );

    let n = dataset.len();
    let k = bands * rows;
    let seeds: Vec<u64> = (0..k).map(|j| derive_seed(LSH_SEED, j as u64)).collect();

    // Signatures, record-major. Empty records keep all-MAX signatures and
    // are excluded from banding (they can never share a token anyway).
    let mut sig: Vec<u64> = vec![u64::MAX; n * k];
    for i in 0..n {
        let set = corpus.token_set(i);
        if set.is_empty() {
            continue;
        }
        let row = &mut sig[i * k..(i + 1) * k];
        for &tok in set {
            // One SplitMix64 draw per token, then a cheap avalanche per
            // hash function — k full generator constructions per token
            // would dominate the build.
            let base = SplitMix64::new(tok as u64).next_u64();
            for (j, &seed) in seeds.iter().enumerate() {
                let h = mix(base, seed);
                if h < row[j] {
                    row[j] = h;
                }
            }
        }
    }

    // Banding: records agreeing on all `rows` values of a band land in the
    // same bucket. Buckets are built in ascending record order, so pair
    // enumeration below yields a < b without extra care.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for g in 0..bands {
        buckets.clear();
        for i in 0..n {
            let row = &sig[i * k..(i + 1) * k];
            if row[0] == u64::MAX && corpus.token_set(i).is_empty() {
                continue;
            }
            let mut key = derive_seed(LSH_SEED, g as u64);
            for &v in &row[g * rows..(g + 1) * rows] {
                key = mix(v, key);
            }
            buckets.entry(key).or_default().push(i as u32);
        }
        for members in buckets.values() {
            for (x, &a) in members.iter().enumerate() {
                for &b in &members[x + 1..] {
                    if dataset.is_joinable(a as usize, b as usize) {
                        pairs.push((a, b));
                    }
                }
            }
        }
    }
    // Cross-band dedup (a pair can collide in several bands); the sort also
    // fixes the hash-map iteration order, making output deterministic.
    pairs.sort_unstable();
    pairs.dedup();

    // Exact verification: identical scoring to the exact path, so shared
    // pairs carry bit-identical likelihoods. Pairs sharing no token (a
    // signature collision between disjoint sets) are dropped to preserve
    // the exact path's "shares ≥ 1 token" contract.
    let mut out = Vec::new();
    for (a, b) in pairs {
        let set_a = corpus.token_set(a as usize);
        let set_b = corpus.token_set(b as usize);
        let jac = jaccard(set_a, set_b);
        if jac == 0.0 && !set_a.iter().any(|t| set_b.binary_search(t).is_ok()) {
            continue;
        }
        let cosine = index.cosine(a, b);
        let likelihood = config.blend(dataset, a, b, cosine, jac);
        if likelihood >= config.min_likelihood {
            out.push(ScoredCandidate { a, b, likelihood });
        }
    }
    span.set_field("pairs", out.len());
    crowdjoin_obs::counter("matcher.candidates.us", crowdjoin_obs::NO_SHARD)
        .add(stage_clock.elapsed().as_micros() as u64);
    out
}

/// Fraction of `exact`'s `(a, b)` pairs also present in `approx` (both
/// sorted by `(a, b)`, as the generators emit them). 1.0 for an empty
/// exact set.
#[must_use]
pub fn recall_of(approx: &[ScoredCandidate], exact: &[ScoredCandidate]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let mut found = 0usize;
    let mut i = 0usize;
    for e in exact {
        while i < approx.len() && (approx[i].a, approx[i].b) < (e.a, e.b) {
            i += 1;
        }
        if i < approx.len() && (approx[i].a, approx[i].b) == (e.a, e.b) {
            found += 1;
        }
    }
    found as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_candidates;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str], split: Option<usize>) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split, name: "t".into() }
    }

    fn lsh_config(bands: usize, rows: usize, floor: f64) -> MatcherConfig {
        MatcherConfig {
            min_likelihood: floor,
            strategy: MatcherStrategy::Lsh { bands, rows },
            ..MatcherConfig::for_arity(1)
        }
    }

    #[test]
    fn identical_records_always_collide() {
        let ds = dataset(&["sony bravia tv", "sony bravia tv", "canon camera", "zzz qqq"], None);
        let out = generate_candidates(&ds, &lsh_config(4, 4, 0.5));
        assert!(out.iter().any(|c| (c.a, c.b) == (0, 1)), "identical sets share every bucket");
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let names: Vec<String> =
            (0..60).map(|i| format!("tok{} tok{} shared", i % 7, i % 5)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs, None);
        let out = generate_candidates(&ds, &lsh_config(8, 2, 0.1));
        assert!(!out.is_empty());
        assert!(out.windows(2).all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b)));
    }

    #[test]
    fn lsh_is_a_subset_of_exact_with_identical_bits() {
        let names: Vec<String> =
            (0..120).map(|i| format!("alpha{} beta{} gamma{}", i % 13, i % 9, i % 4)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs, None);
        let exact = generate_candidates(
            &ds,
            &MatcherConfig { min_likelihood: 0.2, ..MatcherConfig::for_arity(1) },
        );
        let approx = generate_candidates(&ds, &lsh_config(8, 2, 0.2));
        let exact_of: std::collections::BTreeMap<(u32, u32), u64> =
            exact.iter().map(|c| ((c.a, c.b), c.likelihood.to_bits())).collect();
        for c in &approx {
            assert_eq!(
                exact_of.get(&(c.a, c.b)),
                Some(&c.likelihood.to_bits()),
                "LSH emitted ({}, {}) with drifted or missing exact counterpart",
                c.a,
                c.b
            );
        }
    }

    #[test]
    fn cross_join_emits_only_cross_pairs() {
        let ds =
            dataset(&["sony tv black", "other thing", "sony tv black", "sony tv dark"], Some(2));
        let out = generate_candidates(&ds, &lsh_config(4, 2, 0.1));
        assert!(out.iter().all(|c| ds.is_joinable(c.a as usize, c.b as usize)));
        assert!(out.iter().any(|c| (c.a, c.b) == (0, 2)));
    }

    #[test]
    fn empty_records_never_pair() {
        let ds = dataset(&["", "", "sony tv"], None);
        let out = generate_candidates(&ds, &lsh_config(4, 2, 0.0));
        assert!(out.iter().all(|c| c.a == 2 || c.b == 2 || (c.a != 0 && c.b != 1)));
        assert!(!out.iter().any(|c| (c.a, c.b) == (0, 1)), "two empty sets share no token");
    }

    #[test]
    fn recall_of_handles_edges() {
        let c = |a, b| ScoredCandidate { a, b, likelihood: 0.5 };
        assert_eq!(recall_of(&[], &[]), 1.0);
        assert_eq!(recall_of(&[], &[c(0, 1)]), 0.0);
        assert_eq!(recall_of(&[c(0, 1)], &[c(0, 1), c(1, 2)]), 0.5);
        assert_eq!(recall_of(&[c(0, 1), c(1, 2), c(2, 3)], &[c(1, 2)]), 1.0);
    }
}
