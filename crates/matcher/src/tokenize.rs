//! Tokenization.
//!
//! The matcher works over lowercase alphanumeric word tokens and, where a
//! finer signal is useful (model numbers, typos), character q-grams.

/// Splits `text` into lowercase alphanumeric word tokens.
///
/// Any non-alphanumeric character separates tokens; tokens are lowercased.
///
/// ```
/// use crowdjoin_matcher::tokenize_words;
/// assert_eq!(tokenize_words("Sony KDL-40 (Black)"), vec!["sony", "kdl", "40", "black"]);
/// ```
#[must_use]
pub fn tokenize_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// Character q-grams of a token (over its lowercase form), padded with `#`.
///
/// Padding makes prefixes/suffixes count: `qgrams("ab", 3)` works on `"#ab#"`.
/// Returns an empty vector for an empty string.
///
/// ```
/// use crowdjoin_matcher::qgrams;
/// assert_eq!(qgrams("ipad", 3), vec!["#ip", "ipa", "pad", "ad#"]);
/// ```
#[must_use]
pub fn qgrams(text: &str, q: usize) -> Vec<String> {
    assert!(q >= 2, "q-grams need q >= 2");
    if text.is_empty() {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('#')
        .chain(text.to_lowercase().chars())
        .chain(std::iter::once('#'))
        .collect();
    if padded.len() < q {
        return vec![padded.into_iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Distinct sorted tokens of `text` — the set representation used by the
/// set-overlap similarity functions.
#[must_use]
pub fn token_set(text: &str) -> Vec<String> {
    let mut tokens = tokenize_words(text);
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_on_punctuation_and_lowercase() {
        assert_eq!(tokenize_words("iPad 2nd-Gen!"), vec!["ipad", "2nd", "gen"]);
        assert_eq!(tokenize_words(""), Vec::<String>::new());
        assert_eq!(tokenize_words("...---..."), Vec::<String>::new());
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("ab", 2), vec!["#a", "ab", "b#"]);
        assert_eq!(qgrams("", 3), Vec::<String>::new());
        // Shorter than q after padding: one gram with everything.
        assert_eq!(qgrams("a", 4), vec!["#a#"]);
    }

    #[test]
    #[should_panic(expected = "q >= 2")]
    fn qgrams_reject_q1() {
        let _ = qgrams("abc", 1);
    }

    #[test]
    fn token_set_dedups_and_sorts() {
        assert_eq!(token_set("b a b A c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn unicode_safe() {
        // Multi-byte characters must not panic the q-gram windows.
        let grams = qgrams("héllo", 3);
        assert!(!grams.is_empty());
        let words = tokenize_words("crème brûlée 100€");
        assert_eq!(words, vec!["crème", "brûlée", "100"]);
    }
}
