//! Candidate generation — the "machine" half of the hybrid pipeline.
//!
//! Following CrowdER's workflow (citation 25 in the paper), the machine
//! stage computes a likelihood for record pairs and "weeds out" the
//! obviously non-matching ones; only pairs above a pruning floor survive to
//! be labeled by crowd + transitivity. Likelihood here is a weighted blend of
//! tf-idf cosine and Jaccard token overlap — both in `[0, 1]`, monotone in
//! textual closeness of the records.
//!
//! Two implementations are provided:
//!
//! * [`generate_candidates`] — inverted-index similarity join: only pairs
//!   sharing ≥1 token are materialized (subquadratic in practice);
//! * [`generate_candidates_bruteforce`] — full pairwise scan, used as the
//!   test oracle and as the baseline in the `candidate_gen` bench.

use crate::fields::ExtraMeasure;
use crate::similarity::jaccard;
use crate::tfidf::TfIdfIndex;
use crate::tokenize::tokenize_words;
use crowdjoin_records::Dataset;

/// A machine-scored candidate pair (`a < b` in the dataset's id space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCandidate {
    /// First record id.
    pub a: u32,
    /// Second record id.
    pub b: u32,
    /// Blended likelihood of matching, in `[0, 1]`.
    pub likelihood: f64,
}

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Pairs below this likelihood are pruned by the machine (the paper's
    /// experiments then sweep a *threshold* ≥ this floor).
    pub min_likelihood: f64,
    /// Weight of tf-idf cosine in the blend.
    pub cosine_weight: f64,
    /// Weight of Jaccard token overlap in the blend.
    pub jaccard_weight: f64,
    /// Per-field token weights (must match the dataset schema arity).
    pub field_weights: Vec<f64>,
    /// Additional per-field scoring terms (numeric closeness, edit
    /// distance, ...) applied to candidate pairs after token-based
    /// generation. Candidate *generation* still requires ≥1 shared token —
    /// the extra measures refine the likelihood, they don't create
    /// candidates.
    pub extra_measures: Vec<ExtraMeasure>,
}

impl MatcherConfig {
    /// A sensible default for a schema of `arity` fields: equal field
    /// weights, 60/40 cosine/Jaccard blend, pruning floor 0.05, no extra
    /// measures.
    #[must_use]
    pub fn for_arity(arity: usize) -> Self {
        Self {
            min_likelihood: 0.05,
            cosine_weight: 0.6,
            jaccard_weight: 0.4,
            field_weights: vec![1.0; arity],
            extra_measures: Vec::new(),
        }
    }

    fn validate(&self, arity: usize) {
        assert!(
            self.cosine_weight >= 0.0 && self.jaccard_weight >= 0.0,
            "blend weights must be non-negative"
        );
        for em in &self.extra_measures {
            assert!(em.weight >= 0.0, "blend weights must be non-negative");
            assert!(em.field < arity, "extra measure references field {} of {arity}", em.field);
        }
        assert!(self.total_weight() > 0.0, "at least one blend weight must be positive");
        assert!((0.0..=1.0).contains(&self.min_likelihood), "min_likelihood must be in [0,1]");
    }

    fn total_weight(&self) -> f64 {
        self.cosine_weight
            + self.jaccard_weight
            + self.extra_measures.iter().map(|em| em.weight).sum::<f64>()
    }

    fn blend(&self, dataset: &Dataset, a: u32, b: u32, cosine: f64, jac: f64) -> f64 {
        let mut acc = self.cosine_weight * cosine + self.jaccard_weight * jac;
        for em in &self.extra_measures {
            let va = dataset.table.record(a as usize).field(em.field);
            let vb = dataset.table.record(b as usize).field(em.field);
            acc += em.weight * em.measure.score(va, vb);
        }
        acc / self.total_weight()
    }
}

/// Concatenated distinct tokens of a record (all fields), sorted.
fn record_token_set(dataset: &Dataset, i: usize) -> Vec<String> {
    let mut tokens = Vec::new();
    for f in 0..dataset.table.schema().arity() {
        tokens.extend(tokenize_words(dataset.table.record(i).field(f)));
    }
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

/// Inverted-index candidate generation: scores every joinable pair sharing at
/// least one token and keeps those with likelihood ≥ `config.min_likelihood`.
///
/// Output is sorted by `(a, b)` and deduplicated; for cross-join datasets
/// only cross-table pairs appear.
///
/// # Panics
///
/// Panics if `config.field_weights` does not match the schema arity.
#[must_use]
pub fn generate_candidates(dataset: &Dataset, config: &MatcherConfig) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    let index = TfIdfIndex::build(dataset, &config.field_weights);
    let token_sets: Vec<Vec<String>> =
        (0..dataset.len()).map(|i| record_token_set(dataset, i)).collect();

    let mut out = Vec::new();
    for a in 0..dataset.len() as u32 {
        for (b, cosine) in index.accumulate_cosines(a) {
            // Emit each unordered pair once, from its smaller endpoint.
            if b <= a || !dataset.is_joinable(a as usize, b as usize) {
                continue;
            }
            let jac = jaccard(&token_sets[a as usize], &token_sets[b as usize]);
            let likelihood = config.blend(dataset, a, b, cosine, jac);
            if likelihood >= config.min_likelihood {
                out.push(ScoredCandidate { a, b, likelihood });
            }
        }
    }
    out.sort_unstable_by_key(|c| (c.a, c.b));
    out
}

/// Full pairwise scan — O(n²) reference implementation.
///
/// # Panics
///
/// Panics if `config.field_weights` does not match the schema arity.
#[must_use]
pub fn generate_candidates_bruteforce(
    dataset: &Dataset,
    config: &MatcherConfig,
) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    let index = TfIdfIndex::build(dataset, &config.field_weights);
    let token_sets: Vec<Vec<String>> =
        (0..dataset.len()).map(|i| record_token_set(dataset, i)).collect();
    let mut out = Vec::new();
    for a in 0..dataset.len() as u32 {
        for b in (a + 1)..dataset.len() as u32 {
            if !dataset.is_joinable(a as usize, b as usize) {
                continue;
            }
            let cosine = index.cosine(a, b);
            let jac = jaccard(&token_sets[a as usize], &token_sets[b as usize]);
            let likelihood = config.blend(dataset, a, b, cosine, jac);
            if likelihood >= config.min_likelihood {
                out.push(ScoredCandidate { a, b, likelihood });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str], split: Option<usize>) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split, name: "t".into() }
    }

    #[test]
    fn finds_similar_pairs() {
        let ds = dataset(
            &["sony bravia tv 40", "sony bravia tv 40 black", "canon eos camera", "zzz qqq"],
            None,
        );
        let cands = generate_candidates(&ds, &MatcherConfig::for_arity(1));
        let top = cands
            .iter()
            .max_by(|x, y| x.likelihood.total_cmp(&y.likelihood))
            .expect("candidates exist");
        assert_eq!((top.a, top.b), (0, 1));
        assert!(top.likelihood > 0.6);
        // The all-different record shares no tokens with anyone.
        assert!(cands.iter().all(|c| c.a != 3 && c.b != 3));
    }

    #[test]
    fn agrees_with_bruteforce() {
        let ds = dataset(
            &[
                "alpha beta gamma",
                "alpha beta delta",
                "gamma delta epsilon",
                "zeta eta theta",
                "alpha zeta",
                "beta gamma delta epsilon",
            ],
            None,
        );
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let fast = generate_candidates(&ds, &cfg);
        let mut slow = generate_candidates_bruteforce(&ds, &cfg);
        // Brute force also emits zero-likelihood disjoint pairs when the
        // floor is 0; the index only emits token-sharing pairs. Compare on
        // the shared support.
        slow.retain(|c| c.likelihood > 0.0);
        let fast: Vec<_> = fast.into_iter().filter(|c| c.likelihood > 0.0).collect();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_eq!((f.a, f.b), (s.a, s.b));
            assert!((f.likelihood - s.likelihood).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_join_excludes_same_side_pairs() {
        let ds = dataset(&["sony tv", "sony tv black", "sony tv", "other thing"], Some(2));
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let cands = generate_candidates(&ds, &cfg);
        for c in &cands {
            assert!(
                ds.is_joinable(c.a as usize, c.b as usize),
                "same-side pair ({}, {}) emitted",
                c.a,
                c.b
            );
        }
        // (0,1) same side — excluded even though nearly identical.
        assert!(!cands.iter().any(|c| (c.a, c.b) == (0, 1)));
        // (0,2) crosses the split.
        assert!(cands.iter().any(|c| (c.a, c.b) == (0, 2)));
    }

    #[test]
    fn pruning_floor_applies() {
        let ds = dataset(&["a b c d e f g h", "a x y z w v u t"], None);
        let loose = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let strict = MatcherConfig { min_likelihood: 0.9, ..MatcherConfig::for_arity(1) };
        assert_eq!(generate_candidates(&ds, &loose).len(), 1);
        assert!(generate_candidates(&ds, &strict).is_empty());
    }

    #[test]
    fn duplicates_score_above_nonduplicates_on_generated_data() {
        use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
        let cfg = PaperGenConfig {
            num_records: 60,
            clusters: ClusterSpec::Explicit(vec![(4, 5)]),
            perturb: PerturbConfig::light(),
            sibling_probability: 0.0,
            seed: 33,
        };
        let ds = generate_paper(&cfg);
        let cands = generate_candidates(
            &ds,
            &MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(5) },
        );
        let mut match_scores = vec![];
        let mut nonmatch_scores = vec![];
        for c in &cands {
            if ds.is_true_match(c.a as usize, c.b as usize) {
                match_scores.push(c.likelihood);
            } else {
                nonmatch_scores.push(c.likelihood);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&match_scores) > mean(&nonmatch_scores) + 0.2,
            "matcher signal too weak: matches {:.3} vs non {:.3}",
            mean(&match_scores),
            mean(&nonmatch_scores)
        );
    }

    #[test]
    fn numeric_price_measure_sharpens_product_scores() {
        use crate::fields::{ExtraMeasure, FieldMeasure};
        let mut table =
            crowdjoin_records::Table::new(crowdjoin_records::Schema::new(vec!["name", "price"]));
        // Same listing at two retailers (price within 2%), and a different
        // product of the same line (price 4x apart).
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv black", "499.99"]));
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv", "489.99"]));
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv black", "129.99"]));
        let ds = Dataset { table, entity_of: vec![0, 0, 1], split: None, name: "t".into() };
        let plain = MatcherConfig {
            min_likelihood: 0.0,
            field_weights: vec![1.0, 0.0],
            ..MatcherConfig::for_arity(2)
        };
        let priced = MatcherConfig {
            extra_measures: vec![ExtraMeasure {
                field: 1,
                measure: FieldMeasure::NumericRatio,
                weight: 1.0,
            }],
            ..plain.clone()
        };
        let score = |cfg: &MatcherConfig, a: u32, b: u32| {
            generate_candidates(&ds, cfg)
                .into_iter()
                .find(|c| (c.a, c.b) == (a, b))
                .map(|c| c.likelihood)
                .unwrap_or(0.0)
        };
        // Name-only scoring cannot separate (0,1) from (0,2): record 2 has
        // the *identical* name. The price measure must.
        assert!(score(&plain, 0, 2) >= score(&plain, 0, 1));
        let gap = score(&priced, 0, 1) - score(&priced, 0, 2);
        assert!(gap > 0.15, "price measure should separate: gap {gap}");
    }

    #[test]
    #[should_panic(expected = "references field")]
    fn extra_measure_field_out_of_range_rejected() {
        use crate::fields::{ExtraMeasure, FieldMeasure};
        let ds = dataset(&["a"], None);
        let cfg = MatcherConfig {
            extra_measures: vec![ExtraMeasure {
                field: 5,
                measure: FieldMeasure::Exact,
                weight: 1.0,
            }],
            ..MatcherConfig::for_arity(1)
        };
        let _ = generate_candidates(&ds, &cfg);
    }

    #[test]
    #[should_panic(expected = "blend weight")]
    fn zero_blend_rejected() {
        let ds = dataset(&["a"], None);
        let cfg = MatcherConfig {
            min_likelihood: 0.1,
            cosine_weight: 0.0,
            jaccard_weight: 0.0,
            field_weights: vec![1.0],
            extra_measures: Vec::new(),
        };
        let _ = generate_candidates(&ds, &cfg);
    }
}
