//! Candidate generation — the "machine" half of the hybrid pipeline.
//!
//! Following CrowdER's workflow (citation 25 in the paper), the machine
//! stage computes a likelihood for record pairs and "weeds out" the
//! obviously non-matching ones; only pairs above a pruning floor survive to
//! be labeled by crowd + transitivity. Likelihood here is a weighted blend of
//! tf-idf cosine and Jaccard token overlap — both in `[0, 1]`, monotone in
//! textual closeness of the records.
//!
//! Two implementations are provided:
//!
//! * [`generate_candidates`] — the blocked, prefix-filtered similarity
//!   join: the dataset is tokenized **once** into interned `u32` tokens
//!   (shared by the tf-idf and Jaccard paths — every build stage scales
//!   with [`MatcherConfig::threads`], bit-identically to serial), each
//!   record probes arena-backed CSR posting lists one cache-sized index
//!   *block* at a time (see [`crate::prefix`] for the filter-safety
//!   argument, `crate::block` for the blocking and the adaptive
//!   positional/length filter cascade), touched pairs accumulate into a
//!   block-local dense scratch array (touched-list reset, no per-record
//!   hashing), and probing parallelizes across record ranges. Output is
//!   exactly every pair that shares ≥ 1 token and clears
//!   `min_likelihood`, deterministically sorted by `(a, b)` regardless of
//!   thread count and block size. With [`MatcherStrategy::Lsh`] the same
//!   entry point instead runs the approximate MinHash/LSH banding join
//!   ([`crate::lsh`]);
//! * [`generate_candidates_bruteforce`] — full pairwise scan, the
//!   correctness oracle: the filtered path returns the bit-identical
//!   candidate set above the floor (property-tested in
//!   `tests/filter_equivalence.rs`).

use crate::corpus::TokenizedCorpus;
use crate::fields::ExtraMeasure;
use crate::prefix::{length_filtered, PrefixIndex, PrefixParams, BOUND_SLACK};
use crate::similarity::jaccard;
use crate::tfidf::TfIdfIndex;
use crowdjoin_records::Dataset;

/// A machine-scored candidate pair (`a < b` in the dataset's id space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCandidate {
    /// First record id.
    pub a: u32,
    /// Second record id.
    pub b: u32,
    /// Blended likelihood of matching, in `[0, 1]`.
    pub likelihood: f64,
}

/// How candidate pairs are discovered.
///
/// [`MatcherStrategy::Exact`] is the default and the only *lossless*
/// strategy: its output is bit-identical to the brute-force oracle
/// (property-pinned). [`MatcherStrategy::Lsh`] trades recall for speed in
/// the low-floor regime where prefix filtering degenerates — see
/// [`crate::lsh`] for the banding math and the measured-recall contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherStrategy {
    /// The prefix/positional/length-filtered similarity join; lossless.
    #[default]
    Exact,
    /// MinHash/LSH banding: `bands × rows` hash functions, one bucket join
    /// per band, exact re-scoring of colliding pairs. **Approximate** —
    /// every emitted pair is exactly scored, but pairs can be *missed*;
    /// recall is measured, not guaranteed.
    Lsh {
        /// Number of bands (each band hashed to a bucket key).
        bands: usize,
        /// MinHash rows per band.
        rows: usize,
    },
}

/// Matcher configuration.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Pairs below this likelihood are pruned by the machine (the paper's
    /// experiments then sweep a *threshold* ≥ this floor).
    pub min_likelihood: f64,
    /// Weight of tf-idf cosine in the blend.
    pub cosine_weight: f64,
    /// Weight of Jaccard token overlap in the blend.
    pub jaccard_weight: f64,
    /// Per-field token weights (must match the dataset schema arity).
    pub field_weights: Vec<f64>,
    /// Additional per-field scoring terms (numeric closeness, edit
    /// distance, ...) applied to candidate pairs after token-based
    /// generation. Candidate *generation* still requires ≥1 shared token —
    /// the extra measures refine the likelihood, they don't create
    /// candidates.
    pub extra_measures: Vec<ExtraMeasure>,
    /// Worker threads for candidate generation — probing *and* every build
    /// stage (tokenization, tf-idf, prefix index): 0 = one per available
    /// core, 1 = sequential, N = at most N. Output is identical for every
    /// value.
    pub threads: usize,
    /// Index-side records per probe block (see `crate::block`): 0 = auto
    /// (unblocked up to 16k index records, cache-sized 8k blocks beyond).
    /// Any value yields the identical candidate set — the knob trades cache
    /// locality only.
    pub block_records: usize,
    /// Candidate discovery strategy (exact prefix-filtered join by
    /// default; opt-in MinHash/LSH for the low-floor regime).
    pub strategy: MatcherStrategy,
}

impl MatcherConfig {
    /// A sensible default for a schema of `arity` fields: equal field
    /// weights, 60/40 cosine/Jaccard blend, pruning floor 0.05, no extra
    /// measures, one generation thread per core.
    #[must_use]
    pub fn for_arity(arity: usize) -> Self {
        Self {
            min_likelihood: 0.05,
            cosine_weight: 0.6,
            jaccard_weight: 0.4,
            field_weights: vec![1.0; arity],
            extra_measures: Vec::new(),
            threads: 0,
            block_records: 0,
            strategy: MatcherStrategy::Exact,
        }
    }

    pub(crate) fn validate(&self, arity: usize) {
        assert!(
            self.cosine_weight >= 0.0 && self.jaccard_weight >= 0.0,
            "blend weights must be non-negative"
        );
        for em in &self.extra_measures {
            assert!(em.weight >= 0.0, "blend weights must be non-negative");
            assert!(em.field < arity, "extra measure references field {} of {arity}", em.field);
        }
        assert!(self.total_weight() > 0.0, "at least one blend weight must be positive");
        assert!((0.0..=1.0).contains(&self.min_likelihood), "min_likelihood must be in [0,1]");
        if let MatcherStrategy::Lsh { bands, rows } = self.strategy {
            assert!(bands >= 1 && rows >= 1, "LSH needs at least one band and one row");
        }
    }

    pub(crate) fn total_weight(&self) -> f64 {
        self.cosine_weight
            + self.jaccard_weight
            + self.extra_measures.iter().map(|em| em.weight).sum::<f64>()
    }

    pub(crate) fn blend(&self, dataset: &Dataset, a: u32, b: u32, cosine: f64, jac: f64) -> f64 {
        let mut acc = self.cosine_weight * cosine + self.jaccard_weight * jac;
        for em in &self.extra_measures {
            let va = dataset.table.record(a as usize).field(em.field);
            let vb = dataset.table.record(b as usize).field(em.field);
            acc += em.weight * em.measure.score(va, vb);
        }
        acc / self.total_weight()
    }

    /// The blended prefilter threshold `t` of the prefix filter (see
    /// `crate::prefix`): every candidate clearing `min_likelihood` has
    /// `cosine >= t` or `jaccard >= t`. Non-positive when the blend cannot
    /// prune (extras alone can reach the floor, or the floor is 0).
    pub(crate) fn prefilter_threshold(&self) -> f64 {
        let token_weight = self.cosine_weight + self.jaccard_weight;
        if token_weight <= 0.0 {
            return 0.0;
        }
        let extras: f64 = self.extra_measures.iter().map(|em| em.weight).sum();
        (self.min_likelihood * self.total_weight() - extras) / token_weight
    }
}

/// Prefix-filtered candidate generation (see the module docs): every
/// joinable pair sharing at least one token whose blended likelihood
/// reaches `config.min_likelihood`, sorted by `(a, b)`.
///
/// Tokenization, tf-idf indexing, and probing happen internally; use
/// [`TokenizedCorpus::build`], [`TfIdfIndex::from_corpus`], and
/// [`generate_candidates_prepared`] to stage (and time) the phases
/// separately.
///
/// # Panics
///
/// Panics if `config.field_weights` does not match the schema arity.
#[must_use]
pub fn generate_candidates(dataset: &Dataset, config: &MatcherConfig) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    let corpus = TokenizedCorpus::build_threaded(dataset, config.threads);
    let index = TfIdfIndex::from_corpus_threaded(&corpus, &config.field_weights, config.threads);
    match config.strategy {
        MatcherStrategy::Exact => generate_candidates_prepared(dataset, &corpus, &index, config),
        MatcherStrategy::Lsh { .. } => {
            crate::lsh::generate_candidates_lsh(dataset, &corpus, &index, config)
        }
    }
}

/// The probing stage of [`generate_candidates`], over an already-built
/// corpus and tf-idf index. This is the staged **exact** path: callers
/// reaching for it ask for lossless, bit-identical-to-brute-force
/// semantics, so an approximate [`MatcherStrategy::Lsh`] config is
/// rejected rather than silently honored (route through
/// [`generate_candidates`] or [`crate::lsh::generate_candidates_lsh`]
/// instead).
///
/// Stage wall time lands in the always-on metrics registry as the
/// `matcher.candidates.us` counter (plus `matcher.prefix.us` for the
/// prefix-index build) — the `--timings` breakdown reads those.
///
/// # Panics
///
/// Panics if the corpus or index do not match the dataset, if
/// `config.field_weights` does not match the schema arity, or if
/// `config.strategy` is not [`MatcherStrategy::Exact`].
#[must_use]
pub fn generate_candidates_prepared(
    dataset: &Dataset,
    corpus: &TokenizedCorpus,
    index: &TfIdfIndex,
    config: &MatcherConfig,
) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    assert_eq!(
        config.strategy,
        MatcherStrategy::Exact,
        "generate_candidates_prepared is the exact (lossless) path; \
         use generate_candidates_lsh for the approximate LSH strategy"
    );
    assert_eq!(corpus.num_records(), dataset.len(), "corpus built for a different dataset");
    assert_eq!(index.num_records(), dataset.len(), "index built for a different dataset");
    let stage_clock = std::time::Instant::now();
    let prefix = {
        let _span = crowdjoin_obs::obs_span!(
            "matcher",
            "matcher.prefix",
            crowdjoin_obs::NO_SHARD,
            records = dataset.len(),
        );
        let clock = std::time::Instant::now();
        let prefix = PrefixIndex::build(
            corpus,
            index,
            PrefixParams {
                threshold: config.prefilter_threshold(),
                cos_weight_positive: config.cosine_weight > 0.0,
                jac_weight_positive: config.jaccard_weight > 0.0,
                split: dataset.split,
                threads: config.threads,
                block_records: config.block_records,
            },
        );
        crowdjoin_obs::counter("matcher.prefix.us", crowdjoin_obs::NO_SHARD)
            .add(clock.elapsed().as_micros() as u64);
        prefix
    };
    let gen = Generator { dataset, config, corpus, index, prefix };
    let probe_count = dataset.split.unwrap_or(dataset.len());
    let out = gen.run(probe_count, config.threads);
    crowdjoin_obs::counter("matcher.candidates.us", crowdjoin_obs::NO_SHARD)
        .add(stage_clock.elapsed().as_micros() as u64);
    out
}

/// The probing kernel plus everything it scores against.
struct Generator<'a> {
    dataset: &'a Dataset,
    config: &'a MatcherConfig,
    corpus: &'a TokenizedCorpus,
    index: &'a TfIdfIndex,
    prefix: PrefixIndex,
}

/// Dense per-worker scratch, sized to one index-side *block* (see
/// `crate::block`): for a block-local slot `li = b − block_lo`,
/// `stamp[li] == epoch` marks `b` as touched by the current (probe, block)
/// visit, `acc[li]` accumulates its partial cosine, `cnt[li]` its
/// token-overlap count, and `pos[li]` the number of probe tokens consumed
/// through the last counted Jaccard match (the positional filter's
/// cursor). Reset is O(1) per visit (bump the epoch); only touched entries
/// are ever visited. Keeping the arrays block-sized — instead of
/// index-side-sized — is the whole point of blocking: at 1M records the
/// unblocked scratch alone is ~20 MB and every posting touch is a cache
/// miss; a block's scratch lives in L2.
///
/// `cos_cur` / `jac_cur` are the probe's per-token-list cursors `(next,
/// end)` into the posting arenas, aligned with the probe's vector/token
/// list; each block visit consumes every list's entries belonging to that
/// block, so a posting entry is scanned exactly once per probe, in the
/// same per-pair order as an unblocked scan.
struct Scratch {
    stamp: Vec<u32>,
    acc: Vec<f64>,
    cnt: Vec<u32>,
    pos: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
    cos_cur: Vec<(u32, u32)>,
    jac_cur: Vec<(u32, u32)>,
}

impl Scratch {
    fn new(block_len: usize) -> Self {
        Self {
            stamp: vec![0; block_len],
            acc: vec![0.0; block_len],
            cnt: vec![0; block_len],
            pos: vec![0; block_len],
            touched: Vec::new(),
            epoch: 0,
            cos_cur: Vec::new(),
            jac_cur: Vec::new(),
        }
    }

    /// First touch of record `b` (block-local slot `li`) in this visit's
    /// epoch: zero its accumulators and put it on the touched list.
    #[inline]
    fn touch(&mut self, li: usize, b: u32, epoch: u32) {
        if self.stamp[li] != epoch {
            self.stamp[li] = epoch;
            self.acc[li] = 0.0;
            self.cnt[li] = 0;
            self.pos[li] = 0;
            self.touched.push(b);
        }
    }
}

impl Generator<'_> {
    /// Probes records `0..probe_count` on up to `threads` workers and
    /// returns the merged, `(a, b)`-sorted candidate list.
    fn run(&self, probe_count: usize, threads: usize) -> Vec<ScoredCandidate> {
        // Small enough that a few-thousand-record workload still spreads
        // over several chunks (and tests exercise the multi-worker merge),
        // large enough that queue traffic stays negligible at 100k records.
        const CHUNK: usize = 512;
        let scratch_len = self.prefix.blocks.scratch_len();
        let chunks = probe_count.div_ceil(CHUNK);
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = (if threads == 0 { hw } else { threads }).min(chunks.max(1));
        if workers <= 1 {
            let mut span =
                crowdjoin_obs::obs_span!("matcher", "matcher.probe", crowdjoin_obs::NO_SHARD);
            let mut scratch = Scratch::new(scratch_len);
            let mut out = Vec::new();
            for a in 0..probe_count as u32 {
                self.probe(a, &mut scratch, &mut out);
            }
            span.set_field("records", probe_count);
            span.set_field("candidates", out.len());
            return out;
        }

        // The engine-scheduler pattern: workers pull the next unclaimed
        // chunk of probe records; chunk outputs are reassembled in chunk
        // order, so the merged result is identical for every worker count.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: std::sync::Mutex<Vec<(usize, Vec<ScoredCandidate>)>> =
            std::sync::Mutex::new(Vec::with_capacity(chunks));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One span per probe worker thread (never per record —
                    // `probe` is the hot kernel and stays uninstrumented).
                    let mut span = crowdjoin_obs::obs_span!(
                        "matcher",
                        "matcher.probe",
                        crowdjoin_obs::NO_SHARD
                    );
                    let mut claimed = 0usize;
                    let mut found = 0usize;
                    let mut scratch = Scratch::new(scratch_len);
                    loop {
                        let chunk = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if chunk >= chunks {
                            span.set_field("chunks", claimed);
                            span.set_field("candidates", found);
                            return;
                        }
                        claimed += 1;
                        let lo = chunk * CHUNK;
                        let hi = ((chunk + 1) * CHUNK).min(probe_count);
                        let mut out = Vec::new();
                        for a in lo as u32..hi as u32 {
                            self.probe(a, &mut scratch, &mut out);
                        }
                        found += out.len();
                        results.lock().expect("results mutex poisoned").push((chunk, out));
                    }
                });
            }
        });
        let mut span =
            crowdjoin_obs::obs_span!("matcher", "matcher.merge", crowdjoin_obs::NO_SHARD);
        let mut results = results.into_inner().expect("results mutex poisoned");
        results.sort_unstable_by_key(|&(i, _)| i);
        let merged: Vec<ScoredCandidate> = results.into_iter().flat_map(|(_, out)| out).collect();
        span.set_field("candidates", merged.len());
        merged
    }

    /// Probes record `a` against the prefix postings, block by block, and
    /// emits every qualifying pair `(a, b)` with `b > a`, ascending in `b`.
    ///
    /// The probe first cuts each of its token lists to the entries it may
    /// scan (ids `> a` for a self join; everything for a cross join, whose
    /// postings hold only B-side records, all above every probe id), then
    /// consumes the lists one index-side *block* at a time: the next block
    /// is the one owning the smallest record id any cursor still points at
    /// (so runs of empty blocks are skipped in O(lists)), and a visit
    /// drains every list's entries belonging to that block into the
    /// block-local scratch before verifying the touched records. A pair's
    /// postings all live in the single block owning `b` and the lists are
    /// walked in the same order within the visit, so per pair the f64
    /// accumulation order — and hence every emitted likelihood bit — is
    /// identical to the unblocked scan; blocks are visited in ascending id
    /// order, so sorting each visit's emit range by `b` keeps the overall
    /// per-probe output ascending with no global sort.
    fn probe(&self, a: u32, s: &mut Scratch, out: &mut Vec<ScoredCandidate>) {
        let cross = self.dataset.split.is_some();
        let cos_arena = self.prefix.cos_arena();
        let jac_arena = self.prefix.jac_arena();
        let vec_a = self.index.vector(a);
        let set_a = self.corpus.token_set(a as usize);
        let la = set_a.len();

        s.cos_cur.clear();
        if self.prefix.cos_active {
            for &(token, _) in vec_a {
                let (lo, hi) = self.prefix.cos_range(token);
                let start = if cross {
                    lo
                } else {
                    lo + cos_arena[lo as usize..hi as usize].partition_point(|&(id, _)| id <= a)
                        as u32
                };
                s.cos_cur.push((start, hi));
            }
        }
        // The Jaccard walk order: global rank when any block tracks the
        // positional cursor (both sides must agree on one order for the
        // positional argument), plain set order otherwise. The overlap
        // counter is order-independent either way.
        s.jac_cur.clear();
        let probe_jac: &[u32] =
            if self.prefix.plan.any_pos { self.prefix.probe_tokens(a) } else { set_a };
        for &token in probe_jac {
            let (lo, hi) = self.prefix.jac_range(token);
            let start = if cross {
                lo
            } else {
                lo + jac_arena[lo as usize..hi as usize].partition_point(|&(id, _)| id <= a) as u32
            };
            s.jac_cur.push((start, hi));
        }

        let min_l = self.config.min_likelihood;
        // Bound checks compare blend *numerators* against this floor
        // (avoiding a division per touched pair): a real numerator below
        // `min_l·W − 1e-9` cannot round up to a blend ≥ min_l.
        let wc = self.config.cosine_weight;
        let wj = self.config.jaccard_weight;
        let extras_sum: f64 = self.config.extra_measures.iter().map(|em| em.weight).sum();
        let numer_floor = min_l * self.config.total_weight() - BOUND_SLACK;
        let t_len = self.prefix.t_len;

        loop {
            // The next non-empty block: the one owning the smallest record
            // id any cursor still points at.
            let mut next = u32::MAX;
            for &(cur, end) in &s.cos_cur {
                if cur < end {
                    next = next.min(cos_arena[cur as usize].0);
                }
            }
            for &(cur, end) in &s.jac_cur {
                if cur < end {
                    next = next.min(jac_arena[cur as usize].0);
                }
            }
            if next == u32::MAX {
                break;
            }
            let k = self.prefix.blocks.block_of(next);
            let (blo, bhi) = self.prefix.blocks.range(k);
            if s.epoch == u32::MAX {
                s.stamp.fill(0);
                s.epoch = 0;
            }
            s.epoch += 1;
            let epoch = s.epoch;
            s.touched.clear();

            // Index loop, not zip: `s.touch` needs `&mut *s` inside, which
            // an iterator over `s.cos_cur` would hold hostage.
            #[allow(clippy::needless_range_loop)]
            for i in 0..s.cos_cur.len() {
                let (mut cur, end) = s.cos_cur[i];
                let wa = vec_a[i].1;
                while cur < end {
                    let (b, wb) = cos_arena[cur as usize];
                    if b >= bhi {
                        break;
                    }
                    cur += 1;
                    let li = (b - blo) as usize;
                    s.touch(li, b, epoch);
                    s.acc[li] += wa as f64 * wb as f64;
                }
                s.cos_cur[i] = (cur, end);
            }
            // This block's cascade decisions (see `crate::block`): the
            // length filter skips entries before they ever touch scratch —
            // its predicate depends only on the two set sizes, so the
            // verifier re-derives exactly which pairs were skipped. The
            // positional cursor `pos` points just past the highest-ranked
            // counted match; everything uncounted must sit after it.
            let len_on = self.prefix.jac_filtered && self.prefix.plan.len_on[k];
            let pos_on = self.prefix.jac_filtered && self.prefix.plan.pos_on[k];
            for i in 0..s.jac_cur.len() {
                let (mut cur, end) = s.jac_cur[i];
                while cur < end {
                    let (b, lb) = jac_arena[cur as usize];
                    if b >= bhi {
                        break;
                    }
                    cur += 1;
                    if len_on && length_filtered(t_len, la, lb as usize) {
                        continue;
                    }
                    let li = (b - blo) as usize;
                    s.touch(li, b, epoch);
                    s.cnt[li] += 1;
                    if pos_on {
                        s.pos[li] = (i + 1) as u32;
                    }
                }
                s.jac_cur[i] = (cur, end);
            }

            let emit_start = out.len();
            for &b in &s.touched {
                let li = (b - blo) as usize;
                let set_b = self.corpus.token_set(b as usize);
                // Size + overlap + positional filter: jac <= shared_ub /
                // (|a|+|b|-shared_ub), where the true intersection is at
                // most the counted overlap plus the *positionally possible*
                // uncounted remainder — min(b's unindexed suffix, probe
                // tokens after the last counted match) — and never more
                // than the smaller set. Touched records share a token, so
                // neither set is empty. A length-filtered pair's counter is
                // incomplete (its postings were skipped), so it falls back
                // to the size-only bound; it can only qualify through
                // cosine anyway. In a pos-off block `pos` stays 0 and the
                // remainder degrades to `min(jac_cut, |a|)` — the plain
                // prefix bound.
                let min_len = la.min(set_b.len());
                let jac_cut = self.prefix.jac_cut[b as usize];
                let len_cut = len_on && length_filtered(t_len, la, set_b.len());
                let shared_ub = if jac_cut == u32::MAX || len_cut {
                    min_len
                } else {
                    let remaining = jac_cut.min(la as u32 - s.pos[li]);
                    ((s.cnt[li] + remaining) as usize).min(min_len)
                };
                let jac_ub = shared_ub as f64 / (la + set_b.len() - shared_ub) as f64;
                let suffix = self.prefix.cos_suffix_bound[b as usize];
                // Clamp below at 0: sublinear tf damping gives fractional
                // field weights *negative* vector components, so the
                // accumulated dot product can be negative while the true
                // cosine clamps to 0 — an unclamped bound would
                // underestimate the blend numerator.
                let cos_ub = if self.prefix.cos_active {
                    (s.acc[li] + suffix + BOUND_SLACK).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                if wc * cos_ub + wj * jac_ub + extras_sum < numer_floor {
                    continue;
                }
                // Exact cosine. When b's vector is fully indexed, the dense
                // accumulator received exactly the shared-token products in
                // ascending token-id order — the same f64 operations as the
                // merge in `TfIdfIndex::cosine` — so `acc` IS the merge
                // cosine. When a tail remains, complete the dot product
                // against b's few unindexed entries: if none is shared with
                // `a`, the merge would add nothing (adding an exact ±0.0
                // product never changes the sum's bits) and `acc` is again
                // the merge cosine verbatim; otherwise `acc + Σ shared-tail
                // products` nails the true cosine to within
                // summation-order rounding (≪ 1e-9), and the slacked bound
                // prunes almost every pair the full merge would have
                // rejected.
                let cos = if self.prefix.cos_active && suffix == 0.0 {
                    s.acc[li].clamp(0.0, 1.0)
                } else if self.prefix.cos_active {
                    let mut extra = 0.0f64;
                    let mut shared_tail = false;
                    for &(tok, wb) in self.prefix.cos_tail(b) {
                        if let Ok(j) = vec_a.binary_search_by_key(&tok, |e| e.0) {
                            shared_tail = true;
                            extra += vec_a[j].1 as f64 * wb as f64;
                        }
                    }
                    if !shared_tail {
                        s.acc[li].clamp(0.0, 1.0)
                    } else {
                        let refined = (s.acc[li] + extra + BOUND_SLACK).clamp(0.0, 1.0);
                        if wc * refined + wj * jac_ub + extras_sum < numer_floor {
                            continue;
                        }
                        self.index.cosine(a, b)
                    }
                } else {
                    self.index.cosine(a, b)
                };
                if wc * cos + wj * jac_ub + extras_sum < numer_floor {
                    continue;
                }
                // Exact Jaccard. When b's whole token set is indexed, a's
                // whole token set is walked, and the length filter did not
                // skip this pair's postings, the overlap counter is the
                // exact intersection size and the formula below is
                // `similarity::jaccard` verbatim; otherwise fall back to
                // the merge join.
                let jac = if jac_cut == 0 && !len_cut {
                    let shared = s.cnt[li] as usize;
                    shared as f64 / (la + set_b.len() - shared) as f64
                } else {
                    jaccard(set_a, set_b)
                };
                // With exact cosine and Jaccard in hand, this bound only
                // prunes when extra measures exist (it skips their
                // evaluation).
                if wc * cos + wj * jac + extras_sum < numer_floor {
                    continue;
                }
                let likelihood = self.config.blend(self.dataset, a, b, cos, jac);
                if likelihood >= min_l {
                    out.push(ScoredCandidate { a, b, likelihood });
                }
            }
            // Emit in ascending b (touched order is posting-scan order);
            // blocks are visited ascending, so the merged output needs no
            // global sort.
            out[emit_start..].sort_unstable_by_key(|c| c.b);
        }
    }
}

/// Full pairwise scan — O(n²) reference implementation and the correctness
/// oracle for the filtered path. Unlike [`generate_candidates`] it also
/// emits qualifying pairs that share **no** token (e.g. two empty records,
/// or extras-only likelihood): the filtered path's contract is exactly the
/// brute-force output restricted to token-sharing pairs.
///
/// # Panics
///
/// Panics if `config.field_weights` does not match the schema arity.
#[must_use]
pub fn generate_candidates_bruteforce(
    dataset: &Dataset,
    config: &MatcherConfig,
) -> Vec<ScoredCandidate> {
    config.validate(dataset.table.schema().arity());
    let corpus = TokenizedCorpus::build(dataset);
    let index = TfIdfIndex::from_corpus(&corpus, &config.field_weights);
    let mut out = Vec::new();
    for a in 0..dataset.len() as u32 {
        for b in (a + 1)..dataset.len() as u32 {
            if !dataset.is_joinable(a as usize, b as usize) {
                continue;
            }
            let cosine = index.cosine(a, b);
            let jac = jaccard(corpus.token_set(a as usize), corpus.token_set(b as usize));
            let likelihood = config.blend(dataset, a, b, cosine, jac);
            if likelihood >= config.min_likelihood {
                out.push(ScoredCandidate { a, b, likelihood });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str], split: Option<usize>) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split, name: "t".into() }
    }

    #[test]
    fn finds_similar_pairs() {
        let ds = dataset(
            &["sony bravia tv 40", "sony bravia tv 40 black", "canon eos camera", "zzz qqq"],
            None,
        );
        let cands = generate_candidates(&ds, &MatcherConfig::for_arity(1));
        let top = cands
            .iter()
            .max_by(|x, y| x.likelihood.total_cmp(&y.likelihood))
            .expect("candidates exist");
        assert_eq!((top.a, top.b), (0, 1));
        assert!(top.likelihood > 0.6);
        // The all-different record shares no tokens with anyone.
        assert!(cands.iter().all(|c| c.a != 3 && c.b != 3));
    }

    #[test]
    fn agrees_with_bruteforce_bit_identically() {
        let ds = dataset(
            &[
                "alpha beta gamma",
                "alpha beta delta",
                "gamma delta epsilon",
                "zeta eta theta",
                "alpha zeta",
                "beta gamma delta epsilon",
            ],
            None,
        );
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let fast = generate_candidates(&ds, &cfg);
        let mut slow = generate_candidates_bruteforce(&ds, &cfg);
        // Brute force also emits zero-likelihood disjoint pairs when the
        // floor is 0; the filtered join only emits token-sharing pairs.
        // Compare on the shared support.
        slow.retain(|c| c.likelihood > 0.0);
        let fast: Vec<_> = fast.into_iter().filter(|c| c.likelihood > 0.0).collect();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_eq!((f.a, f.b), (s.a, s.b));
            assert_eq!(
                f.likelihood.to_bits(),
                s.likelihood.to_bits(),
                "likelihood drifted on ({}, {})",
                f.a,
                f.b
            );
        }
    }

    #[test]
    fn filtered_path_matches_bruteforce_at_high_floors() {
        let ds = dataset(
            &[
                "sony bravia tv 40",
                "sony bravia tv 40 black",
                "sony tv 46",
                "canon eos camera kit",
                "canon eos camera",
                "alpha beta gamma delta",
                "alpha beta gamma",
            ],
            None,
        );
        for floor in [0.2, 0.4, 0.6, 0.8] {
            let cfg = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(1) };
            let fast = generate_candidates(&ds, &cfg);
            let slow = generate_candidates_bruteforce(&ds, &cfg);
            assert_eq!(fast.len(), slow.len(), "floor {floor}");
            for (f, s) in fast.iter().zip(slow.iter()) {
                assert_eq!((f.a, f.b), (s.a, s.b), "floor {floor}");
                assert_eq!(f.likelihood.to_bits(), s.likelihood.to_bits(), "floor {floor}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        // 2500 probe records = 5 chunks of 512, so the explicit `threads:
        // 4` run genuinely spawns workers and merges multiple chunks
        // (including the final partial one) — even on a 1-core machine.
        let names: Vec<String> =
            (0..2500).map(|i| format!("rec{} tok{} x{}", i % 97, i % 53, i % 31)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs, None);
        let sequential =
            generate_candidates(&ds, &MatcherConfig { threads: 1, ..MatcherConfig::for_arity(1) });
        let parallel =
            generate_candidates(&ds, &MatcherConfig { threads: 4, ..MatcherConfig::for_arity(1) });
        assert!(!sequential.is_empty());
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(parallel.iter()) {
            assert_eq!((s.a, s.b), (p.a, p.b));
            assert_eq!(s.likelihood.to_bits(), p.likelihood.to_bits());
        }
        assert!(
            sequential.windows(2).all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b)),
            "output sorted and deduplicated"
        );
    }

    #[test]
    fn cross_join_excludes_same_side_pairs() {
        let ds = dataset(&["sony tv", "sony tv black", "sony tv", "other thing"], Some(2));
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let cands = generate_candidates(&ds, &cfg);
        for c in &cands {
            assert!(
                ds.is_joinable(c.a as usize, c.b as usize),
                "same-side pair ({}, {}) emitted",
                c.a,
                c.b
            );
        }
        // (0,1) same side — excluded even though nearly identical.
        assert!(!cands.iter().any(|c| (c.a, c.b) == (0, 1)));
        // (0,2) crosses the split.
        assert!(cands.iter().any(|c| (c.a, c.b) == (0, 2)));
    }

    #[test]
    fn pruning_floor_applies() {
        let ds = dataset(&["a b c d e f g h", "a x y z w v u t"], None);
        let loose = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let strict = MatcherConfig { min_likelihood: 0.9, ..MatcherConfig::for_arity(1) };
        assert_eq!(generate_candidates(&ds, &loose).len(), 1);
        assert!(generate_candidates(&ds, &strict).is_empty());
    }

    #[test]
    fn staged_pipeline_matches_one_shot() {
        let ds = dataset(&["sony tv", "sony tv black", "canon camera", "sony camera"], None);
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &cfg.field_weights);
        let staged = generate_candidates_prepared(&ds, &corpus, &index, &cfg);
        let one_shot = generate_candidates(&ds, &cfg);
        assert_eq!(staged.len(), one_shot.len());
        for (s, o) in staged.iter().zip(one_shot.iter()) {
            assert_eq!((s.a, s.b), (o.a, o.b));
            assert_eq!(s.likelihood.to_bits(), o.likelihood.to_bits());
        }
    }

    #[test]
    fn duplicates_score_above_nonduplicates_on_generated_data() {
        use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
        let cfg = PaperGenConfig {
            num_records: 60,
            clusters: ClusterSpec::Explicit(vec![(4, 5)]),
            perturb: PerturbConfig::light(),
            sibling_probability: 0.0,
            seed: 33,
        };
        let ds = generate_paper(&cfg);
        let cands = generate_candidates(
            &ds,
            &MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(5) },
        );
        let mut match_scores = vec![];
        let mut nonmatch_scores = vec![];
        for c in &cands {
            if ds.is_true_match(c.a as usize, c.b as usize) {
                match_scores.push(c.likelihood);
            } else {
                nonmatch_scores.push(c.likelihood);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&match_scores) > mean(&nonmatch_scores) + 0.2,
            "matcher signal too weak: matches {:.3} vs non {:.3}",
            mean(&match_scores),
            mean(&nonmatch_scores)
        );
    }

    #[test]
    fn numeric_price_measure_sharpens_product_scores() {
        use crate::fields::{ExtraMeasure, FieldMeasure};
        let mut table =
            crowdjoin_records::Table::new(crowdjoin_records::Schema::new(vec!["name", "price"]));
        // Same listing at two retailers (price within 2%), and a different
        // product of the same line (price 4x apart).
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv black", "499.99"]));
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv", "489.99"]));
        table.push(crowdjoin_records::Record::new(vec!["sony kd40 tv black", "129.99"]));
        let ds = Dataset { table, entity_of: vec![0, 0, 1], split: None, name: "t".into() };
        let plain = MatcherConfig {
            min_likelihood: 0.0,
            field_weights: vec![1.0, 0.0],
            ..MatcherConfig::for_arity(2)
        };
        let priced = MatcherConfig {
            extra_measures: vec![ExtraMeasure {
                field: 1,
                measure: FieldMeasure::NumericRatio,
                weight: 1.0,
            }],
            ..plain.clone()
        };
        let score = |cfg: &MatcherConfig, a: u32, b: u32| {
            generate_candidates(&ds, cfg)
                .into_iter()
                .find(|c| (c.a, c.b) == (a, b))
                .map(|c| c.likelihood)
                .unwrap_or(0.0)
        };
        // Name-only scoring cannot separate (0,1) from (0,2): record 2 has
        // the *identical* name. The price measure must.
        assert!(score(&plain, 0, 2) >= score(&plain, 0, 1));
        let gap = score(&priced, 0, 1) - score(&priced, 0, 2);
        assert!(gap > 0.15, "price measure should separate: gap {gap}");
    }

    #[test]
    fn negative_tfidf_components_do_not_drop_candidates() {
        // Fractional field weights give price tokens tf 0.25, and
        // 1 + ln(0.25) < 0 — negative vector components. A pair whose dot
        // product is negative (cosine clamps to 0) but whose Jaccard alone
        // clears the floor must survive the verifier's cosine bound.
        // Regression: an unclamped `acc + suffix` bound went negative and
        // dropped such pairs.
        let mut table =
            crowdjoin_records::Table::new(crowdjoin_records::Schema::new(vec!["name", "price"]));
        table.push(crowdjoin_records::Record::new(vec!["black alpha beta gamma delta", "1254.88"]));
        table.push(crowdjoin_records::Record::new(vec!["black 1254 zeta eta theta", "999.99"]));
        // Filler records make "black" common (low idf) so the shared-name
        // contribution stays small against the negative "1254" product.
        for i in 0..6 {
            table.push(crowdjoin_records::Record::new(vec![
                match i {
                    0 => "black filler one",
                    1 => "black filler two",
                    2 => "black filler three",
                    3 => "black filler four",
                    4 => "black filler five",
                    _ => "black filler six",
                },
                "10.00",
            ]));
        }
        let n = table.len();
        let ds =
            Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() };
        let cfg = MatcherConfig {
            min_likelihood: 0.05,
            field_weights: vec![1.0, 0.25],
            ..MatcherConfig::for_arity(2)
        };
        let fast = generate_candidates(&ds, &cfg);
        let slow = generate_candidates_bruteforce(&ds, &cfg);
        assert!(
            slow.iter().any(|c| (c.a, c.b) == (0, 1)),
            "test setup: the oracle must emit the negative-dot pair"
        );
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert_eq!((f.a, f.b), (s.a, s.b));
            assert_eq!(f.likelihood.to_bits(), s.likelihood.to_bits());
        }
    }

    #[test]
    fn zero_weight_field_tokens_still_generate_candidates() {
        // Two records that only share a token in a zero-weight field: the
        // pair has cosine 0 but positive Jaccard, and the Jaccard join must
        // still discover it (the brute-force oracle emits it).
        let mut table =
            crowdjoin_records::Table::new(crowdjoin_records::Schema::new(vec!["name", "price"]));
        table.push(crowdjoin_records::Record::new(vec!["alpha beta", "499"]));
        table.push(crowdjoin_records::Record::new(vec!["gamma delta", "499"]));
        let ds = Dataset { table, entity_of: vec![0, 1], split: None, name: "t".into() };
        let cfg = MatcherConfig {
            min_likelihood: 0.05,
            field_weights: vec![1.0, 0.0],
            ..MatcherConfig::for_arity(2)
        };
        let fast = generate_candidates(&ds, &cfg);
        let slow = generate_candidates_bruteforce(&ds, &cfg);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 1, "price token \"499\" is shared: jac 1/5 = 0.2, blend 0.08");
        assert_eq!(fast[0].likelihood.to_bits(), slow[0].likelihood.to_bits());
    }

    #[test]
    #[should_panic(expected = "references field")]
    fn extra_measure_field_out_of_range_rejected() {
        use crate::fields::{ExtraMeasure, FieldMeasure};
        let ds = dataset(&["a"], None);
        let cfg = MatcherConfig {
            extra_measures: vec![ExtraMeasure {
                field: 5,
                measure: FieldMeasure::Exact,
                weight: 1.0,
            }],
            ..MatcherConfig::for_arity(1)
        };
        let _ = generate_candidates(&ds, &cfg);
    }

    #[test]
    #[should_panic(expected = "blend weight")]
    fn zero_blend_rejected() {
        let ds = dataset(&["a"], None);
        let cfg = MatcherConfig {
            min_likelihood: 0.1,
            cosine_weight: 0.0,
            jaccard_weight: 0.0,
            field_weights: vec![1.0],
            extra_measures: Vec::new(),
            threads: 0,
            block_records: 0,
            strategy: MatcherStrategy::Exact,
        };
        let _ = generate_candidates(&ds, &cfg);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn degenerate_lsh_rejected() {
        let ds = dataset(&["a"], None);
        let cfg = MatcherConfig {
            strategy: MatcherStrategy::Lsh { bands: 0, rows: 4 },
            ..MatcherConfig::for_arity(1)
        };
        let _ = generate_candidates(&ds, &cfg);
    }

    #[test]
    #[should_panic(expected = "exact (lossless) path")]
    fn prepared_path_rejects_lsh_strategy() {
        let ds = dataset(&["a b", "a c"], None);
        let cfg = MatcherConfig {
            strategy: MatcherStrategy::Lsh { bands: 4, rows: 2 },
            ..MatcherConfig::for_arity(1)
        };
        let corpus = TokenizedCorpus::build(&ds);
        let index = TfIdfIndex::from_corpus(&corpus, &cfg.field_weights);
        let _ = generate_candidates_prepared(&ds, &corpus, &index, &cfg);
    }

    #[test]
    fn length_skewed_records_match_bruteforce() {
        // Wide size spread stresses the PPJoin length window: the short
        // records fall outside most long records' windows at 0.3, while
        // borderline sizes sit exactly on the t·|a| boundary. Output must
        // stay bit-identical to brute force at every floor.
        let names: Vec<String> = (0..80)
            .map(|i| {
                let len = 1 + (i * 7) % 23;
                (0..len).map(|j| format!("t{}", (i + j * 3) % 31)).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs, None);
        for floor in [0.05, 0.25, 1.0 / 3.0, 0.5, 0.75] {
            let cfg = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(1) };
            let fast = generate_candidates(&ds, &cfg);
            let slow = generate_candidates_bruteforce(&ds, &cfg);
            assert_eq!(fast.len(), slow.len(), "floor {floor}");
            for (f, s) in fast.iter().zip(slow.iter()) {
                assert_eq!((f.a, f.b), (s.a, s.b), "floor {floor}");
                assert_eq!(f.likelihood.to_bits(), s.likelihood.to_bits(), "floor {floor}");
            }
        }
    }
}
