//! Deterministic chunked parallelism for the matcher's build stages.
//!
//! Every parallel stage in this crate follows the same engine-scheduler
//! pattern already used by the probe loop in [`crate::candidates`]: the
//! input range `0..n` is cut into fixed-size chunks, workers pull the next
//! unclaimed chunk off an atomic counter, and the per-chunk outputs are
//! reassembled **in chunk order** before anything downstream consumes them.
//! Because chunk boundaries depend only on `n` (never on the worker count),
//! the reassembled output is bit-identical for every `threads` value — the
//! property the equivalence suite pins.

/// Resolves a `threads` config value (0 = one per available core) against
/// the number of independent work units.
pub(crate) fn resolve_workers(threads: usize, units: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (if threads == 0 { hw } else { threads }).min(units.max(1))
}

/// Maps `work` over the chunks of `0..n` (each `chunk_size` long, the last
/// one partial) on up to `threads` workers, returning the per-chunk outputs
/// in chunk order. With one worker (or one chunk) the map runs inline on
/// the calling thread; either way the result is identical.
pub(crate) fn map_chunks<T, F>(n: usize, chunk_size: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let chunks = n.div_ceil(chunk_size);
    let bounds = |c: usize| c * chunk_size..((c + 1) * chunk_size).min(n);
    let workers = resolve_workers(threads, chunks);
    if workers <= 1 {
        return (0..chunks).map(|c| work(bounds(c))).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(Vec::with_capacity(chunks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if c >= chunks {
                    return;
                }
                let out = work(bounds(c));
                results.lock().expect("results mutex poisoned").push((c, out));
            });
        }
    });
    let mut results = results.into_inner().expect("results mutex poisoned");
    results.sort_unstable_by_key(|&(c, _)| c);
    results.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_order_is_preserved_for_every_worker_count() {
        for threads in [1, 2, 3, 8] {
            let out = map_chunks(10, 3, threads, |r| r.collect::<Vec<usize>>());
            assert_eq!(out, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8], vec![9]]);
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = map_chunks(0, 4, 4, |r| r.len());
        assert!(out.is_empty());
    }
}
