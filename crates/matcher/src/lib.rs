//! # crowdjoin-matcher — the machine half of the hybrid join
//!
//! The paper's pipeline first uses "machine-based techniques to generate a
//! candidate set of matching pairs" with a per-pair likelihood (CrowdER-style
//! similarity pruning), and only then involves the crowd. This crate is that
//! machine stage:
//!
//! * [`tokenize`] — word and q-gram tokenizers;
//! * [`similarity`] — Jaccard, Dice, overlap, Levenshtein, Jaro(-Winkler);
//! * [`tfidf`] — sparse tf-idf vectors + inverted index with cosine scoring;
//! * [`candidates`] — the similarity join producing [`ScoredCandidate`]s
//!   (indexed and brute-force variants).
//!
//! ```
//! use crowdjoin_matcher::{generate_candidates, MatcherConfig};
//! use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
//!
//! let dataset = generate_paper(&PaperGenConfig {
//!     num_records: 40,
//!     clusters: ClusterSpec::Explicit(vec![(4, 3)]),
//!     perturb: PerturbConfig::light(),
//!     sibling_probability: 0.0,
//!     seed: 7,
//! });
//! let candidates = generate_candidates(&dataset, &MatcherConfig::for_arity(5));
//! assert!(!candidates.is_empty());
//! assert!(candidates.iter().all(|c| (0.0..=1.0).contains(&c.likelihood)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod fields;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;

pub use candidates::{
    generate_candidates, generate_candidates_bruteforce, MatcherConfig, ScoredCandidate,
};
pub use fields::{ExtraMeasure, FieldMeasure};
pub use similarity::{
    dice, jaccard, jaro, jaro_winkler, levenshtein, levenshtein_similarity, overlap,
};
pub use tfidf::TfIdfIndex;
pub use tokenize::{qgrams, token_set, tokenize_words};
