//! # crowdjoin-matcher — the machine half of the hybrid join
//!
//! The paper's pipeline first uses "machine-based techniques to generate a
//! candidate set of matching pairs" with a per-pair likelihood (CrowdER-style
//! similarity pruning), and only then involves the crowd. This crate is that
//! machine stage:
//!
//! * [`tokenize`] — word and q-gram tokenizers;
//! * [`corpus`] — one-pass tokenization of a dataset into interned `u32`
//!   tokens (a [`TokenizedCorpus`] is shared by the tf-idf and Jaccard
//!   paths, so nothing is ever tokenized twice);
//! * [`similarity`] — Jaccard, Dice, overlap, Levenshtein, Jaro(-Winkler);
//! * [`tfidf`] — sparse tf-idf vectors + inverted index with cosine scoring;
//! * [`candidates`] — the prefix-filtered, blocked, parallel similarity
//!   join producing [`ScoredCandidate`]s (see [`prefix`] for the
//!   AllPairs-style filter and its safety argument; the crate-internal
//!   `block` module holds the cache-sized probe blocking and the adaptive
//!   positional/length filter cascade), plus the brute-force oracle;
//! * [`lsh`] — the opt-in MinHash/LSH banding strategy for the low-floor
//!   regime (approximate recall, exact likelihoods);
//! * [`stream`] — incremental candidate generation for streaming
//!   ingestion: per-record insert, delta pairs, exact snapshots
//!   bit-identical to the batch join.
//!
//! ```
//! use crowdjoin_matcher::{generate_candidates, MatcherConfig};
//! use crowdjoin_records::{generate_paper, ClusterSpec, PaperGenConfig, PerturbConfig};
//!
//! let dataset = generate_paper(&PaperGenConfig {
//!     num_records: 40,
//!     clusters: ClusterSpec::Explicit(vec![(4, 3)]),
//!     perturb: PerturbConfig::light(),
//!     sibling_probability: 0.0,
//!     seed: 7,
//! });
//! let candidates = generate_candidates(&dataset, &MatcherConfig::for_arity(5));
//! assert!(!candidates.is_empty());
//! assert!(candidates.iter().all(|c| (0.0..=1.0).contains(&c.likelihood)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod block;
pub mod candidates;
pub mod corpus;
pub mod fields;
pub mod lsh;
pub(crate) mod par;
pub mod prefix;
pub mod similarity;
pub mod stream;
pub mod tfidf;
pub mod tokenize;

pub use candidates::{
    generate_candidates, generate_candidates_bruteforce, generate_candidates_prepared,
    MatcherConfig, MatcherStrategy, ScoredCandidate,
};
pub use corpus::TokenizedCorpus;
pub use fields::{ExtraMeasure, FieldMeasure};
pub use lsh::{generate_candidates_lsh, recall_of};
pub use similarity::{
    dice, jaccard, jaro, jaro_winkler, levenshtein, levenshtein_similarity, overlap,
};
pub use stream::{DeltaPair, StreamDelta, StreamMatcher};
pub use tfidf::TfIdfIndex;
pub use tokenize::{qgrams, token_set, tokenize_words};
