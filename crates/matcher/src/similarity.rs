//! String and set similarity functions.
//!
//! These are the standard entity-resolution similarity measures the paper's
//! machine stage relies on ("the likelihood can be the similarity computed by
//! a given similarity function"). Set measures take **sorted, deduplicated**
//! token slices (see [`crate::token_set`]); string measures work on raw
//! `&str`.

/// Size of the intersection of two sorted deduplicated slices.
fn intersection_size<T: Ord>(a: &[T], b: &[T]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut shared = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

/// Jaccard similarity `|A∩B| / |A∪B|` of two sorted deduplicated slices.
/// Defined as 1 for two empty sets.
#[must_use]
pub fn jaccard<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let shared = intersection_size(a, b);
    shared as f64 / (a.len() + b.len() - shared) as f64
}

/// Dice coefficient `2|A∩B| / (|A|+|B|)`. Defined as 1 for two empty sets.
#[must_use]
pub fn dice<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)`. Defined as 1 if either set is
/// empty.
#[must_use]
pub fn overlap<T: Ord>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    intersection_size(a, b) as f64 / a.len().min(b.len()) as f64
}

/// Levenshtein edit distance (unit costs), O(|a|·|b|) time, O(min) space.
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity `1 − dist/max_len`, in `[0, 1]`.
/// Defined as 1 for two empty strings.
#[must_use]
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity, in `[0, 1]`.
#[must_use]
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(b_used.iter()).filter(|(_, &u)| u).map(|(&c, _)| c).collect();
    let transpositions = matches_a.iter().zip(matches_b.iter()).filter(|(x, y)| x != y).count() / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale 0.1 (max prefix 4).
#[must_use]
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(s: &str) -> Vec<String> {
        crate::token_set(s)
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard(&set("a b c"), &set("a b c")), 1.0);
        assert_eq!(jaccard(&set("a b"), &set("c d")), 0.0);
        assert!((jaccard(&set("a b c"), &set("b c d")) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard::<String>(&[], &[]), 1.0);
    }

    #[test]
    fn dice_and_overlap_known_values() {
        assert!((dice(&set("a b c"), &set("b c d")) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap(&set("a b"), &set("a b c d")), 1.0);
        assert_eq!(overlap::<String>(&[], &set("x")), 1.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        // Classic reference pairs (values from the literature).
        assert!((jaro("martha", "marhta") - 0.944_444).abs() < 1e-5);
        assert!((jaro_winkler("martha", "marhta") - 0.961_111).abs() < 1e-5);
        assert!((jaro("dixon", "dicksonx") - 0.766_667).abs() < 1e-5);
        assert!((jaro_winkler("dixon", "dicksonx") - 0.813_333).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    proptest! {
        /// All similarities stay in [0,1], are symmetric, and score identity
        /// as 1.
        #[test]
        fn similarity_axioms(a in "[a-c ]{0,12}", b in "[a-c ]{0,12}") {
            let (sa, sb) = (set(&a), set(&b));
            for (name, v, w) in [
                ("jaccard", jaccard(&sa, &sb), jaccard(&sb, &sa)),
                ("dice", dice(&sa, &sb), dice(&sb, &sa)),
                ("overlap", overlap(&sa, &sb), overlap(&sb, &sa)),
                ("lev", levenshtein_similarity(&a, &b), levenshtein_similarity(&b, &a)),
                ("jaro", jaro(&a, &b), jaro(&b, &a)),
                ("jw", jaro_winkler(&a, &b), jaro_winkler(&b, &a)),
            ] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{name} out of range: {v}");
                prop_assert!((v - w).abs() < 1e-12, "{name} asymmetric: {v} vs {w}");
            }
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert!((jaccard(&sa, &sa) - 1.0).abs() < 1e-12);
        }

        /// Levenshtein satisfies the triangle inequality.
        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }
    }
}
