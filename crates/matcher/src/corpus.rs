//! One-pass tokenization of a dataset into interned integer tokens.
//!
//! The matcher used to tokenize every record twice — once for the tf-idf
//! index and once for the Jaccard token sets — and compared `String`s in
//! both. A [`TokenizedCorpus`] walks every field exactly once, interns each
//! word through a workspace-level [`Interner`], and keeps two views that the
//! whole scoring stage shares:
//!
//! * per record and field, the token ids **in text order** (tf-idf term
//!   counts need multiplicity and field attribution);
//! * per record, the sorted deduplicated token-id set over **all** fields
//!   (the set representation behind Jaccard and the prefix filter).
//!
//! Token ids are dense and assigned in first-encounter order, so everything
//! built on a corpus is deterministic for a fixed dataset.

use crate::tokenize::tokenize_words;
use crowdjoin_records::{Dataset, Record};
use crowdjoin_util::Interner;

/// A dataset tokenized once: interned per-field token lists plus sorted
/// per-record token sets.
#[derive(Debug, Clone)]
pub struct TokenizedCorpus {
    interner: Interner,
    arity: usize,
    /// All records' tokens, record-major then field-major, text order.
    flat: Vec<u32>,
    /// `flat` slice bounds: record `i`, field `f` spans
    /// `bounds[i * arity + f] .. bounds[i * arity + f + 1]`.
    bounds: Vec<u32>,
    /// All records' sorted deduplicated token sets, concatenated.
    set_flat: Vec<u32>,
    /// `set_flat` slice bounds: record `i` spans
    /// `set_bounds[i] .. set_bounds[i + 1]`.
    set_bounds: Vec<u32>,
}

/// One worker's tokenization of a contiguous record chunk: token ids are
/// *chunk-local* (dense first-encounter within the chunk); `field_lens`
/// holds one entry per record-field, in order, so the merge can rebuild the
/// bounds tables without re-tokenizing.
struct ChunkTokens {
    interner: Interner,
    flat: Vec<u32>,
    field_lens: Vec<u32>,
}

impl TokenizedCorpus {
    /// Tokenizes every field of every record exactly once, sequentially.
    /// Equivalent to [`Self::build_threaded`] with one thread.
    #[must_use]
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_threaded(dataset, 1)
    }

    /// Tokenizes every field of every record exactly once, on up to
    /// `threads` workers (0 = one per available core).
    ///
    /// Workers tokenize disjoint record chunks into *chunk-local*
    /// dictionaries; the merge absorbs those dictionaries in chunk order
    /// ([`Interner::absorb`]), which reassigns every token the id a
    /// sequential pass would have given it. The result is bit-identical to
    /// [`Self::build`] for every thread count.
    #[must_use]
    pub fn build_threaded(dataset: &Dataset, threads: usize) -> Self {
        let mut span =
            crowdjoin_obs::obs_span!("matcher", "matcher.tokenize", crowdjoin_obs::NO_SHARD);
        let clock = std::time::Instant::now();
        let arity = dataset.table.schema().arity();
        let n = dataset.len();
        let mut interner = Interner::new();
        let mut flat: Vec<u32> = Vec::new();
        let mut bounds: Vec<u32> = Vec::with_capacity(n * arity + 1);
        let mut set_flat: Vec<u32> = Vec::new();
        let mut set_bounds: Vec<u32> = Vec::with_capacity(n + 1);
        let mut scratch: Vec<u32> = Vec::new();
        bounds.push(0);
        set_bounds.push(0);
        // Records per work unit: large enough that chunk-local dictionaries
        // amortize their hashing, small enough that mid-size workloads still
        // spread over several workers.
        const CHUNK: usize = 2048;
        if crate::par::resolve_workers(threads, n.div_ceil(CHUNK)) <= 1 {
            // Sequential fast path: intern straight into the global
            // dictionary, no remap pass.
            for i in 0..n {
                let record_start = flat.len();
                for f in 0..arity {
                    for token in tokenize_words(dataset.table.record(i).field(f)) {
                        flat.push(interner.intern(&token));
                    }
                    bounds.push(u32::try_from(flat.len()).expect("corpus overflow"));
                }
                scratch.clear();
                scratch.extend_from_slice(&flat[record_start..]);
                scratch.sort_unstable();
                scratch.dedup();
                set_flat.extend_from_slice(&scratch);
                set_bounds.push(u32::try_from(set_flat.len()).expect("corpus overflow"));
            }
        } else {
            let chunks = crate::par::map_chunks(n, CHUNK, threads, |range| {
                let mut local = ChunkTokens {
                    interner: Interner::new(),
                    flat: Vec::new(),
                    field_lens: Vec::with_capacity(range.len() * arity),
                };
                for i in range {
                    for f in 0..arity {
                        let before = local.flat.len();
                        for token in tokenize_words(dataset.table.record(i).field(f)) {
                            local.flat.push(local.interner.intern(&token));
                        }
                        local.field_lens.push(
                            u32::try_from(local.flat.len() - before).expect("field overflow"),
                        );
                    }
                }
                local
            });
            for chunk in &chunks {
                let remap = interner.absorb(&chunk.interner);
                let mut cursor = 0usize;
                for record_fields in chunk.field_lens.chunks(arity) {
                    let record_start = flat.len();
                    for &len in record_fields {
                        flat.extend(
                            chunk.flat[cursor..cursor + len as usize]
                                .iter()
                                .map(|&local| remap[local as usize]),
                        );
                        cursor += len as usize;
                        bounds.push(u32::try_from(flat.len()).expect("corpus overflow"));
                    }
                    scratch.clear();
                    scratch.extend_from_slice(&flat[record_start..]);
                    scratch.sort_unstable();
                    scratch.dedup();
                    set_flat.extend_from_slice(&scratch);
                    set_bounds.push(u32::try_from(set_flat.len()).expect("corpus overflow"));
                }
            }
        }
        span.set_field("records", n);
        span.set_field("vocabulary", interner.len());
        // Stage wall time for the `--timings` breakdown: one counter add
        // per corpus build, read back from the metrics registry.
        crowdjoin_obs::counter("matcher.tokenize.us", crowdjoin_obs::NO_SHARD)
            .add(clock.elapsed().as_micros() as u64);
        Self { interner, arity, flat, bounds, set_flat, set_bounds }
    }

    /// An empty corpus over a schema of `arity` fields, ready for
    /// incremental [`Self::insert_record`] calls — the streaming path's
    /// starting point.
    #[must_use]
    pub fn empty(arity: usize) -> Self {
        Self {
            interner: Interner::new(),
            arity,
            flat: Vec::new(),
            bounds: vec![0],
            set_flat: Vec::new(),
            set_bounds: vec![0],
        }
    }

    /// Tokenizes and appends one record, returning its new record id.
    ///
    /// This is the streaming analogue of [`Self::build`]: only the inserted
    /// record is tokenized, and inserting a dataset's records one by one in
    /// dataset order produces a corpus identical to the batch build (token
    /// ids are assigned in the same first-encounter order), so everything
    /// downstream stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the record's arity differs from the corpus arity, or on
    /// token-arena overflow (> `u32::MAX` tokens).
    pub fn insert_record(&mut self, record: &Record) -> usize {
        assert_eq!(
            record.values().len(),
            self.arity,
            "record arity {} does not match corpus arity {}",
            record.values().len(),
            self.arity
        );
        let id = self.num_records();
        let record_start = self.flat.len();
        for f in 0..self.arity {
            for token in tokenize_words(record.field(f)) {
                self.flat.push(self.interner.intern(&token));
            }
            self.bounds.push(u32::try_from(self.flat.len()).expect("corpus overflow"));
        }
        let mut scratch: Vec<u32> = self.flat[record_start..].to_vec();
        scratch.sort_unstable();
        scratch.dedup();
        self.set_flat.extend_from_slice(&scratch);
        self.set_bounds.push(u32::try_from(self.set_flat.len()).expect("corpus overflow"));
        id
    }

    /// Number of records.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.set_bounds.len() - 1
    }

    /// Number of distinct tokens across the corpus (all fields).
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.interner.len()
    }

    /// Schema arity the corpus was built against.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The token dictionary.
    #[must_use]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Record `i`, field `f`: interned tokens in text order (with
    /// multiplicity).
    #[must_use]
    pub fn field_tokens(&self, i: usize, f: usize) -> &[u32] {
        assert!(f < self.arity, "field {f} out of range for arity {}", self.arity);
        let lo = self.bounds[i * self.arity + f] as usize;
        let hi = self.bounds[i * self.arity + f + 1] as usize;
        &self.flat[lo..hi]
    }

    /// Record `i`: sorted deduplicated token-id set over all fields — the
    /// integer analogue of the old per-record `Vec<String>` token set.
    #[must_use]
    pub fn token_set(&self, i: usize) -> &[u32] {
        let lo = self.set_bounds[i] as usize;
        let hi = self.set_bounds[i + 1] as usize;
        &self.set_flat[lo..hi]
    }

    /// Document frequency (over all fields' token sets) of every token:
    /// `df[id]` = number of records whose token set contains `id`.
    #[must_use]
    pub fn set_doc_freq(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.vocabulary_size()];
        for &id in &self.set_flat {
            df[id as usize] += 1;
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Record, Schema, Table};

    fn dataset(rows: &[(&str, &str)]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name", "price"]));
        for (name, price) in rows {
            table.push(Record::new(vec![*name, *price]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    #[test]
    fn fields_tokenize_in_text_order_with_multiplicity() {
        let ds = dataset(&[("Sony TV sony", "499.99"), ("", "10")]);
        let corpus = TokenizedCorpus::build(&ds);
        // "sony" repeats (case-folded), so the field list keeps both copies.
        assert_eq!(corpus.field_tokens(0, 0), &[0, 1, 0]);
        assert_eq!(corpus.field_tokens(0, 1), &[2, 3]); // "499", "99"
        assert_eq!(corpus.field_tokens(1, 0), &[] as &[u32]);
        assert_eq!(corpus.interner().resolve(0), "sony");
        assert_eq!(corpus.interner().resolve(3), "99");
    }

    #[test]
    fn token_sets_are_sorted_dedup_over_all_fields() {
        let ds = dataset(&[("b a b", "a c"), ("zz", "")]);
        let corpus = TokenizedCorpus::build(&ds);
        let resolve =
            |ids: &[u32]| ids.iter().map(|&i| corpus.interner().resolve(i)).collect::<Vec<_>>();
        let mut names = resolve(corpus.token_set(0));
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b", "c"]);
        let set = corpus.token_set(0);
        assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted strictly: {set:?}");
        assert_eq!(resolve(corpus.token_set(1)), vec!["zz"]);
    }

    #[test]
    fn doc_freq_counts_records_not_occurrences() {
        let ds = dataset(&[("a a a", ""), ("a b", ""), ("b", "")]);
        let corpus = TokenizedCorpus::build(&ds);
        let df = corpus.set_doc_freq();
        let a = corpus.interner().get("a").unwrap() as usize;
        let b = corpus.interner().get("b").unwrap() as usize;
        assert_eq!(df[a], 2, "'a' appears in two records");
        assert_eq!(df[b], 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = dataset(&[]);
        let corpus = TokenizedCorpus::build(&ds);
        assert_eq!(corpus.num_records(), 0);
        assert_eq!(corpus.vocabulary_size(), 0);
    }

    #[test]
    fn incremental_inserts_reproduce_the_batch_build() {
        let rows = [("sony tv 40", "499.99"), ("", "10"), ("tv sony black", "499.99")];
        let ds = dataset(&rows);
        let batch = TokenizedCorpus::build(&ds);
        let mut inc = TokenizedCorpus::empty(2);
        for (i, _) in rows.iter().enumerate() {
            assert_eq!(inc.insert_record(ds.table.record(i)), i);
        }
        assert_eq!(inc.num_records(), batch.num_records());
        assert_eq!(inc.vocabulary_size(), batch.vocabulary_size());
        for i in 0..rows.len() {
            for f in 0..2 {
                assert_eq!(
                    inc.field_tokens(i, f),
                    batch.field_tokens(i, f),
                    "record {i} field {f}"
                );
            }
            assert_eq!(inc.token_set(i), batch.token_set(i), "record {i}");
        }
        assert_eq!(inc.set_doc_freq(), batch.set_doc_freq());
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        // > 2048 records so the threaded path genuinely crosses chunk
        // boundaries (and token first-encounters span multiple chunks).
        let rows: Vec<(String, String)> = (0..4500)
            .map(|i| (format!("tok{} shared{} x{}", i % 311, i % 97, i % 13), format!("{i}")))
            .collect();
        let refs: Vec<(&str, &str)> = rows.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let ds = dataset(&refs);
        let serial = TokenizedCorpus::build(&ds);
        for threads in [2, 4] {
            let par = TokenizedCorpus::build_threaded(&ds, threads);
            assert_eq!(par.vocabulary_size(), serial.vocabulary_size(), "threads {threads}");
            assert_eq!(par.flat, serial.flat, "threads {threads}");
            assert_eq!(par.bounds, serial.bounds, "threads {threads}");
            assert_eq!(par.set_flat, serial.set_flat, "threads {threads}");
            assert_eq!(par.set_bounds, serial.set_bounds, "threads {threads}");
            for id in 0..serial.vocabulary_size() as u32 {
                assert_eq!(par.interner().resolve(id), serial.interner().resolve(id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn insert_record_rejects_arity_mismatch() {
        let mut corpus = TokenizedCorpus::empty(2);
        corpus.insert_record(&Record::new(vec!["only one field"]));
    }
}
