//! Incremental candidate generation — the streaming counterpart of the
//! batch similarity join.
//!
//! A [`StreamMatcher`] accepts records one at a time. Inserting a record
//! re-tokenizes **only that record** ([`TokenizedCorpus::insert_record`]),
//! probes a growable prefix-posting index over the records that already
//! arrived, and emits exactly the delta candidate pairs (new record × old
//! corpus) that can still matter — it never re-joins the world.
//!
//! # Why the batch filters cannot be replayed verbatim
//!
//! The batch path's cosine prefix filter is built from tf-idf weights, and
//! idf (`ln(1 + n/df)`) drifts as the corpus grows: a prefix cut that was
//! sound at `n` records can be unsound at `n + 1`. The positional filter
//! additionally orders tokens by global document frequency, which also
//! drifts. The streaming index therefore prunes only with **arrival-
//! invariant** quantities:
//!
//! * **Jaccard prune threshold.** A pair whose final blended likelihood
//!   reaches `min_likelihood` satisfies `wc·cos + wj·jac + Σᵢwᵢ·eᵢ ≥
//!   min_l·W`. Bounding `cos ≤ 1` and `eᵢ ≤ 1` gives `jac ≥ t_j =
//!   (min_l·W − wc − Σᵢwᵢ)/wj` (when `wj > 0`; always `≤ 1`). `t_j`
//!   depends only on the config, never on the corpus.
//! * **Prefix pigeonhole in token-id order.** Each arrived record indexes
//!   the first `|b| − ⌈t_j·|b|⌉ + 1` tokens of its **id-sorted** token set
//!   (the whole set when `t_j ≤ 0`). The pigeonhole argument of
//!   [`crate::prefix`] holds for *any* fixed prefix of that size: if
//!   `jac(a, b) ≥ t_j` then `|a ∩ b| ≥ ⌈t_j·|b|⌉`, and a prefix missing
//!   every shared token leaves room for only `⌈t_j·|b|⌉ − 1` of them.
//!   Token ids of already-arrived records never change, so the indexed
//!   prefix is final the moment it is written. The new record probes with
//!   its **full** token set, so every qualifying (new × old) pair is
//!   touched.
//! * **Length filter.** `jac ≤ min(|a|,|b|)/max(|a|,|b|)` uses only the
//!   two set sizes — arrival-invariant, applied at the slacked `t_j`.
//!
//! Both thresholds carry the same float slacks as the batch filters
//! (`FILTER_SLACK`, `BOUND_SLACK`), so rounding can only keep extra pairs.
//!
//! # Materialization and exact scoring
//!
//! A touched pair is **materialized** (kept forever) iff
//! `wc·1 + wj·jac + Σᵢwᵢ ≥ min_l·W − slack` with its exact Jaccard — an
//! arrival-invariant superset of every pair that can ever clear the floor,
//! since cosine and the extra measures are bounded by 1. Final likelihoods
//! are *not* assigned at insert time (idf keeps drifting); instead
//! [`StreamMatcher::candidates`] takes a snapshot: it rebuilds the tf-idf
//! index over the current corpus (one pass — no pair re-discovery) and
//! re-scores only the materialized pairs through the exact batch kernels
//! ([`TfIdfIndex::cosine`], [`crate::similarity::jaccard`], the config
//! blend). The result is **bit-identical** to running
//! [`crate::generate_candidates`] over the arrived records — the property
//! pinned by `tests/stream_matcher_oracle.rs` against the brute-force
//! oracle.
//!
//! [`StreamMatcher::close_canonical`] is the same snapshot under a caller-
//! chosen record permutation (the streaming service sorts arrivals back
//! into their external-id order), which makes the final candidate set
//! independent of arrival order, bit for bit.

use crate::candidates::{MatcherConfig, MatcherStrategy, ScoredCandidate};
use crate::corpus::TokenizedCorpus;
use crate::prefix::{length_filtered, BOUND_SLACK, FILTER_SLACK};
use crate::similarity::jaccard;
use crate::tfidf::TfIdfIndex;
use crowdjoin_records::{Dataset, Record, Schema, Table};

/// One delta candidate discovered by an insert: the old record `a`, the
/// just-inserted record `b` (`a < b` always), and their exact Jaccard.
///
/// The Jaccard is final (token sets never change); the blended likelihood
/// is not assigned until a snapshot, because tf-idf weights drift as the
/// corpus grows. Callers that need a provisional ordering mid-stream order
/// by `jaccard`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaPair {
    /// The already-arrived endpoint.
    pub a: u32,
    /// The just-inserted endpoint.
    pub b: u32,
    /// Exact Jaccard similarity of the two token sets (arrival-invariant).
    pub jaccard: f64,
}

/// The result of one [`StreamMatcher::insert`]: the new record's id and
/// every materialized (new × old) candidate pair.
#[derive(Debug, Clone)]
pub struct StreamDelta {
    /// Id assigned to the inserted record (arrival order).
    pub record: u32,
    /// Newly materialized candidate pairs, ascending by old-record id.
    pub pairs: Vec<DeltaPair>,
}

/// The growable prefix-posting index behind [`StreamMatcher`] — the
/// incremental counterpart of the batch `PrefixIndex` (whose CSR arenas
/// are frozen at build time). Token `t`'s postings hold `(record,
/// token-set size)` for every already-arrived record that indexed `t` in
/// its token-id-order prefix.
#[derive(Debug, Default)]
struct StreamPostings {
    lists: Vec<Vec<(u32, u32)>>,
}

impl StreamPostings {
    /// Grows the token axis to cover `vocab` tokens.
    fn grow(&mut self, vocab: usize) {
        if self.lists.len() < vocab {
            self.lists.resize_with(vocab, Vec::new);
        }
    }

    /// Indexes record `id` (token-set size `len`) under `token`.
    fn insert(&mut self, token: u32, id: u32, len: u32) {
        self.lists[token as usize].push((id, len));
    }

    /// Postings of `token` (empty for tokens newer than the last grow).
    fn postings(&self, token: u32) -> &[(u32, u32)] {
        self.lists.get(token as usize).map_or(&[], Vec::as_slice)
    }
}

/// Incremental candidate generation over records that arrive one at a
/// time. See the module docs for the discovery/materialization split and
/// the bit-identity contract with the batch path.
///
/// Streaming is the self-join (dedup) shape: every arrived record is
/// joinable with every other (`split = None`). Only the lossless
/// [`MatcherStrategy::Exact`] strategy is supported.
#[derive(Debug)]
pub struct StreamMatcher {
    config: MatcherConfig,
    dataset: Dataset,
    corpus: TokenizedCorpus,
    postings: StreamPostings,
    /// The arrival-invariant Jaccard prune threshold `t_j` (module docs);
    /// `≤ 0` disables pruning (every token indexed, no length filter).
    prune: f64,
    /// Materialized pairs `(a, b, exact jaccard)`, `a < b`.
    materialized: Vec<(u32, u32, f64)>,
    /// Per-record probe stamp (dedup of touched records within an insert).
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl StreamMatcher {
    /// An empty streaming matcher over `schema`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid for the schema's arity or uses a
    /// non-[`MatcherStrategy::Exact`] strategy.
    #[must_use]
    pub fn new(schema: Schema, config: MatcherConfig) -> Self {
        let arity = schema.arity();
        config.validate(arity);
        assert_eq!(
            config.strategy,
            MatcherStrategy::Exact,
            "streaming ingestion is the exact (lossless) path; LSH is batch-only"
        );
        let extras: f64 = config.extra_measures.iter().map(|em| em.weight).sum();
        let prune = if config.jaccard_weight > 0.0 {
            (config.min_likelihood * config.total_weight() - config.cosine_weight - extras)
                / config.jaccard_weight
        } else {
            0.0
        };
        let dataset = Dataset {
            table: Table::new(schema),
            entity_of: Vec::new(),
            split: None,
            name: "stream".into(),
        };
        Self {
            config,
            dataset,
            corpus: TokenizedCorpus::empty(arity),
            postings: StreamPostings::default(),
            prune,
            materialized: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Number of records arrived so far.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.corpus.num_records()
    }

    /// Number of materialized candidate pairs (the arrival-invariant
    /// superset a snapshot re-scores; see the module docs).
    #[must_use]
    pub fn num_materialized(&self) -> usize {
        self.materialized.len()
    }

    /// The arrived records as a dataset, in arrival order.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The incrementally built corpus (arrival order).
    #[must_use]
    pub fn corpus(&self) -> &TokenizedCorpus {
        &self.corpus
    }

    /// The matcher configuration.
    #[must_use]
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Inserts one record: tokenizes it, probes the existing postings for
    /// every (new × old) pair that can still clear the floor, materializes
    /// those pairs, and finally indexes the new record's own token-id-order
    /// prefix so later arrivals can discover it.
    ///
    /// Cost is proportional to the record's tokens plus the postings they
    /// touch — never the corpus size.
    ///
    /// # Panics
    ///
    /// Panics if the record's arity differs from the schema.
    pub fn insert(&mut self, record: &Record) -> StreamDelta {
        let id = self.corpus.insert_record(record);
        let id32 = u32::try_from(id).expect("stream corpus overflow");
        self.dataset.table.push(record.clone());
        self.dataset.entity_of.push(id32);
        self.postings.grow(self.corpus.vocabulary_size());
        self.stamp.push(0);

        // Probe: full token set of the new record against the old records'
        // indexed prefixes, with the length filter at the slacked t_j.
        self.epoch += 1;
        self.touched.clear();
        let set = self.corpus.token_set(id);
        let la = set.len();
        let t_len = self.prune - FILTER_SLACK;
        let filtered = self.prune > 0.0;
        for &token in set {
            for &(b, lb) in self.postings.postings(token) {
                if filtered && length_filtered(t_len, la, lb as usize) {
                    continue;
                }
                let bi = b as usize;
                if self.stamp[bi] != self.epoch {
                    self.stamp[bi] = self.epoch;
                    self.touched.push(b);
                }
            }
        }
        self.touched.sort_unstable();

        // Materialize: exact Jaccard, keep iff the pair can ever qualify
        // with cosine and every extra measure bounded by 1.
        let wc = self.config.cosine_weight;
        let wj = self.config.jaccard_weight;
        let extras_sum: f64 = self.config.extra_measures.iter().map(|em| em.weight).sum();
        let numer_floor = self.config.min_likelihood * self.config.total_weight() - BOUND_SLACK;
        let mut pairs = Vec::new();
        for &b in &self.touched {
            let jac = jaccard(self.corpus.token_set(b as usize), set);
            if wc + wj * jac + extras_sum >= numer_floor {
                self.materialized.push((b, id32, jac));
                pairs.push(DeltaPair { a: b, b: id32, jaccard: jac });
            }
        }

        // Index the new record's prefix: the first `len − ⌈t_j·len⌉ + 1`
        // tokens of its id-sorted set (the whole set when t_j ≤ 0). The
        // set slice is already id-sorted — a fixed, arrival-invariant
        // order, which is all the pigeonhole needs.
        let prefix_len = if filtered {
            let required = ((self.prune - BOUND_SLACK) * la as f64).ceil() as usize;
            if required < 1 {
                la
            } else {
                la - required + 1
            }
        } else {
            la
        };
        for &token in &set[..prefix_len] {
            self.postings.insert(token, id32, la as u32);
        }
        StreamDelta { record: id32, pairs }
    }

    /// Snapshot: the exact candidate set over everything that arrived, in
    /// arrival-id space — bit-identical to
    /// [`crate::generate_candidates`] on [`Self::dataset`]. Rebuilds the
    /// tf-idf index (one pass over the corpus) and re-scores only the
    /// materialized pairs; no pair discovery happens here.
    #[must_use]
    pub fn candidates(&self) -> Vec<ScoredCandidate> {
        let index = TfIdfIndex::from_corpus(&self.corpus, &self.config.field_weights);
        let mut out: Vec<ScoredCandidate> = self
            .materialized
            .iter()
            .filter_map(|&(a, b, jac)| {
                let cos = index.cosine(a, b);
                let likelihood = self.config.blend(&self.dataset, a, b, cos, jac);
                (likelihood >= self.config.min_likelihood).then_some(ScoredCandidate {
                    a,
                    b,
                    likelihood,
                })
            })
            .collect();
        out.sort_unstable_by_key(|c| (c.a, c.b));
        out
    }

    /// Snapshot under a caller-chosen record order: `order[r]` is the
    /// arrival id that becomes canonical id `r`. Returns the re-ordered
    /// dataset plus its exact candidate set — bit-identical to
    /// [`crate::generate_candidates`] on that dataset, and therefore
    /// independent of the order records actually arrived in.
    ///
    /// This is the close path of a streaming job: arrivals are sorted back
    /// into their external-id order so the downstream engine run is
    /// byte-identical to the batch pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the arrival ids.
    #[must_use]
    pub fn close_canonical(&self, order: &[u32]) -> (Dataset, Vec<ScoredCandidate>) {
        let n = self.num_records();
        assert_eq!(order.len(), n, "order must cover every arrived record");
        let mut rank = vec![u32::MAX; n];
        for (r, &a) in order.iter().enumerate() {
            assert!(
                rank[a as usize] == u32::MAX,
                "arrival id {a} appears twice in the close order"
            );
            rank[a as usize] = r as u32;
        }
        let mut table = Table::new(self.dataset.table.schema().clone());
        for &a in order {
            table.push(self.dataset.table.record(a as usize).clone());
        }
        let dataset = Dataset {
            table,
            entity_of: (0..n as u32).collect(),
            split: None,
            name: self.dataset.name.clone(),
        };
        let corpus = TokenizedCorpus::build(&dataset);
        let index = TfIdfIndex::from_corpus(&corpus, &self.config.field_weights);
        let mut out: Vec<ScoredCandidate> = self
            .materialized
            .iter()
            .filter_map(|&(a, b, jac)| {
                let (ca, cb) = {
                    let (ra, rb) = (rank[a as usize], rank[b as usize]);
                    if ra < rb {
                        (ra, rb)
                    } else {
                        (rb, ra)
                    }
                };
                // The stored Jaccard is exact and id-free (set sizes and
                // overlap are the same integers under any permutation).
                let cos = index.cosine(ca, cb);
                let likelihood = self.config.blend(&dataset, ca, cb, cos, jac);
                (likelihood >= self.config.min_likelihood).then_some(ScoredCandidate {
                    a: ca,
                    b: cb,
                    likelihood,
                })
            })
            .collect();
        out.sort_unstable_by_key(|c| (c.a, c.b));
        (dataset, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, generate_candidates_bruteforce};

    fn record(name: &str) -> Record {
        Record::new(vec![name])
    }

    fn schema() -> Schema {
        Schema::new(vec!["name"])
    }

    fn assert_bit_identical(got: &[ScoredCandidate], want: &[ScoredCandidate], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: candidate count");
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!((g.a, g.b), (w.a, w.b), "{ctx}");
            assert_eq!(
                g.likelihood.to_bits(),
                w.likelihood.to_bits(),
                "{ctx}: likelihood drifted on ({}, {})",
                g.a,
                g.b
            );
        }
    }

    #[test]
    fn first_record_inserts_cleanly_into_an_empty_index() {
        // Regression companion to the PrefixIndex empty-corpus fix: the
        // very first insert probes an index with no postings at all.
        let mut sm = StreamMatcher::new(schema(), MatcherConfig::for_arity(1));
        let delta = sm.insert(&record("sony tv"));
        assert_eq!(delta.record, 0);
        assert!(delta.pairs.is_empty());
        assert!(sm.candidates().is_empty());
        // And with the unfiltered t ≤ 0 config (floor 0) too.
        let cfg = MatcherConfig { min_likelihood: 0.0, ..MatcherConfig::for_arity(1) };
        let mut sm = StreamMatcher::new(schema(), cfg);
        let delta = sm.insert(&record("sony tv"));
        assert!(delta.pairs.is_empty());
    }

    #[test]
    fn snapshot_matches_batch_after_every_insert() {
        let names = [
            "sony bravia tv 40",
            "sony bravia tv 40 black",
            "canon eos camera",
            "sony tv 46",
            "",
            "canon eos camera kit",
        ];
        for floor in [0.0, 0.05, 0.3, 0.6] {
            let cfg = MatcherConfig { min_likelihood: floor, ..MatcherConfig::for_arity(1) };
            let mut sm = StreamMatcher::new(schema(), cfg.clone());
            let mut table = Table::new(schema());
            for (i, name) in names.iter().enumerate() {
                sm.insert(&record(name));
                table.push(record(name));
                let prefix = Dataset {
                    table: table.clone(),
                    entity_of: (0..=i as u32).collect(),
                    split: None,
                    name: "t".into(),
                };
                let batch = generate_candidates(&prefix, &cfg);
                assert_bit_identical(&sm.candidates(), &batch, &format!("floor {floor} after {i}"));
            }
        }
    }

    #[test]
    fn deltas_cover_every_final_candidate() {
        let names =
            ["alpha beta gamma", "alpha beta delta", "gamma delta epsilon", "alpha zeta", "beta"];
        let cfg = MatcherConfig { min_likelihood: 0.05, ..MatcherConfig::for_arity(1) };
        let mut sm = StreamMatcher::new(schema(), cfg);
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for name in names {
            let delta = sm.insert(&record(name));
            // Delta pairs always pair the new record with an older one.
            for p in &delta.pairs {
                assert!(p.a < p.b);
                assert_eq!(p.b, delta.record);
                seen.push((p.a, p.b));
            }
        }
        for c in sm.candidates() {
            assert!(seen.contains(&(c.a, c.b)), "candidate ({}, {}) never in a delta", c.a, c.b);
        }
    }

    #[test]
    fn close_canonical_is_arrival_order_invariant() {
        let names = [
            "sony bravia tv 40",
            "sony bravia tv 40 black",
            "canon eos camera",
            "sony tv 46",
            "canon eos camera kit",
            "alpha beta gamma",
        ];
        let cfg = MatcherConfig { min_likelihood: 0.05, ..MatcherConfig::for_arity(1) };
        // Canonical dataset in external order.
        let mut table = Table::new(schema());
        for name in names {
            table.push(record(name));
        }
        let canonical = Dataset {
            table,
            entity_of: (0..names.len() as u32).collect(),
            split: None,
            name: "stream".into(),
        };
        let batch = generate_candidates(&canonical, &cfg);
        assert!(!batch.is_empty());
        // Stream in several arrival orders; close must reproduce the batch
        // output bit for bit every time.
        for arrivals in
            [vec![0usize, 1, 2, 3, 4, 5], vec![5, 4, 3, 2, 1, 0], vec![2, 5, 0, 3, 1, 4]]
        {
            let mut sm = StreamMatcher::new(schema(), cfg.clone());
            // order[r] = arrival id of the record with external id r.
            let mut order = vec![0u32; names.len()];
            for (arrival, &external) in arrivals.iter().enumerate() {
                sm.insert(&record(names[external]));
                order[external] = arrival as u32;
            }
            let (ds, cands) = sm.close_canonical(&order);
            assert_eq!(ds.len(), names.len());
            for (i, name) in names.iter().enumerate() {
                assert_eq!(ds.table.record(i).field(0), *name, "arrivals {arrivals:?}");
            }
            assert_bit_identical(&cands, &batch, &format!("arrivals {arrivals:?}"));
        }
    }

    #[test]
    fn bruteforce_restricted_to_token_sharing_is_the_same_oracle() {
        let names = ["a b c", "a b d", "c d e", "f g", "a f"];
        let cfg = MatcherConfig { min_likelihood: 0.05, ..MatcherConfig::for_arity(1) };
        let mut sm = StreamMatcher::new(schema(), cfg.clone());
        for name in names {
            sm.insert(&record(name));
        }
        let slow = generate_candidates_bruteforce(sm.dataset(), &cfg);
        let corpus = sm.corpus();
        let shares = |a: usize, b: usize| {
            let (sa, sb) = (corpus.token_set(a), corpus.token_set(b));
            sa.iter().any(|t| sb.binary_search(t).is_ok())
        };
        let slow: Vec<ScoredCandidate> =
            slow.into_iter().filter(|c| shares(c.a as usize, c.b as usize)).collect();
        assert_bit_identical(&sm.candidates(), &slow, "bruteforce oracle");
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn close_order_must_be_a_permutation() {
        let mut sm = StreamMatcher::new(schema(), MatcherConfig::for_arity(1));
        sm.insert(&record("a"));
        sm.insert(&record("b"));
        let _ = sm.close_canonical(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "LSH is batch-only")]
    fn lsh_strategy_rejected() {
        let cfg = MatcherConfig {
            strategy: crate::candidates::MatcherStrategy::Lsh { bands: 4, rows: 2 },
            ..MatcherConfig::for_arity(1)
        };
        let _ = StreamMatcher::new(schema(), cfg);
    }
}
