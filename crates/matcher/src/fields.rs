//! Per-field similarity measures for the scoring stage.
//!
//! Token-based generation (tf-idf cosine + Jaccard) treats every field as a
//! bag of words, which wastes fields with structure: prices are numbers
//! ("499.99" vs "489.99" share no tokens but are clearly close), and short
//! names benefit from character-level edit measures. A [`FieldMeasure`]
//! computes a `[0, 1]` similarity for one schema field of a candidate pair;
//! the matcher blends them into the final likelihood with configurable
//! weights (see [`crate::MatcherConfig::extra_measures`]).

use crate::similarity::{jaro_winkler, levenshtein_similarity};

/// A field-level similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldMeasure {
    /// Normalized Levenshtein similarity on the raw field strings.
    Levenshtein,
    /// Jaro–Winkler similarity (favors shared prefixes; good for names).
    JaroWinkler,
    /// Numeric closeness `min/max` of the parsed values (1 for equal, → 0
    /// as they diverge; 0 when either side fails to parse, 1 when both are
    /// zero).
    NumericRatio,
    /// Exact string equality (1 or 0) — for code-like fields.
    Exact,
}

impl FieldMeasure {
    /// Computes the measure on two field values. Always in `[0, 1]`.
    #[must_use]
    pub fn score(self, a: &str, b: &str) -> f64 {
        match self {
            FieldMeasure::Levenshtein => levenshtein_similarity(a.trim(), b.trim()),
            FieldMeasure::JaroWinkler => jaro_winkler(a.trim(), b.trim()),
            FieldMeasure::NumericRatio => {
                match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
                    (Ok(x), Ok(y)) if x >= 0.0 && y >= 0.0 => {
                        if x == 0.0 && y == 0.0 {
                            1.0
                        } else {
                            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
                            if hi == 0.0 {
                                1.0
                            } else {
                                (lo / hi).clamp(0.0, 1.0)
                            }
                        }
                    }
                    _ => 0.0,
                }
            }
            FieldMeasure::Exact => f64::from(a.trim() == b.trim()),
        }
    }
}

/// One extra scoring term: apply `measure` to schema field `field` with
/// blend weight `weight`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtraMeasure {
    /// Schema field index.
    pub field: usize,
    /// The measure to apply.
    pub measure: FieldMeasure,
    /// Blend weight (non-negative).
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_ratio_basics() {
        let m = FieldMeasure::NumericRatio;
        assert_eq!(m.score("100", "100"), 1.0);
        assert!((m.score("100", "50") - 0.5).abs() < 1e-12);
        assert!((m.score("50", "100") - 0.5).abs() < 1e-12);
        assert_eq!(m.score("0", "0"), 1.0);
        assert_eq!(m.score("abc", "100"), 0.0);
        assert_eq!(m.score("", ""), 0.0, "unparsable");
        assert!((m.score(" 499.99 ", "489.99") - 489.99 / 499.99).abs() < 1e-9);
    }

    #[test]
    fn exact_measure() {
        let m = FieldMeasure::Exact;
        assert_eq!(m.score("kd40", "kd40"), 1.0);
        assert_eq!(m.score("kd40", "kd46"), 0.0);
        assert_eq!(m.score(" kd40 ", "kd40"), 1.0, "trimmed");
    }

    #[test]
    fn string_measures_delegate() {
        assert_eq!(FieldMeasure::Levenshtein.score("same", "same"), 1.0);
        assert!(FieldMeasure::JaroWinkler.score("martha", "marhta") > 0.9);
        assert!(FieldMeasure::Levenshtein.score("abc", "xyz") < 0.01);
    }

    #[test]
    fn all_measures_bounded() {
        let cases = [("", ""), ("a", ""), ("499.99", "0"), ("-5", "3"), ("x y z", "x")];
        for m in [
            FieldMeasure::Levenshtein,
            FieldMeasure::JaroWinkler,
            FieldMeasure::NumericRatio,
            FieldMeasure::Exact,
        ] {
            for (a, b) in cases {
                let s = m.score(a, b);
                assert!((0.0..=1.0).contains(&s), "{m:?} on ({a:?},{b:?}) gave {s}");
                let t = m.score(b, a);
                assert!((s - t).abs() < 1e-12, "{m:?} asymmetric on ({a:?},{b:?})");
            }
        }
    }

    #[test]
    fn negative_numbers_score_zero() {
        // Negative magnitudes have no meaningful ratio semantics here.
        assert_eq!(FieldMeasure::NumericRatio.score("-5", "5"), 0.0);
    }
}
