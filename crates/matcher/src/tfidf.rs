//! Tf-idf vectors and cosine scoring over a record corpus.
//!
//! Each record becomes a sparse, L2-normalized tf-idf vector over its
//! interned word tokens (with optional per-field weights). Vectors are built
//! from a [`TokenizedCorpus`] — the dataset is tokenized exactly once and the
//! interned ids are shared with the Jaccard path — and the same inverted
//! index that backs cosine scoring also drives candidate generation: only
//! record pairs sharing at least one token can have non-zero cosine, so one
//! term-at-a-time accumulation pass finds and scores them together (the
//! standard similarity-join trick the paper's machine stage (CrowdER) uses to
//! weed out obviously non-matching pairs).

use crate::corpus::TokenizedCorpus;
use crowdjoin_records::Dataset;
use crowdjoin_util::FxHashMap;

/// Sparse tf-idf index over a dataset's records.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// Per record: sorted `(token_id, weight)` with L2 norm 1. Token ids are
    /// the corpus interner's ids.
    vectors: Vec<Vec<(u32, f32)>>,
    /// Inverted index: token id → `(record, weight)` postings, ascending by
    /// record id.
    postings: Vec<Vec<(u32, f32)>>,
}

impl TfIdfIndex {
    /// Builds the index over all records of `dataset` (tokenizing the
    /// dataset itself; prefer [`TfIdfIndex::from_corpus`] when a
    /// [`TokenizedCorpus`] already exists).
    ///
    /// `field_weights` scales each schema field's token counts (e.g. weigh a
    /// product name above its price); it must match the schema arity.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the schema arity.
    #[must_use]
    pub fn build(dataset: &Dataset, field_weights: &[f64]) -> Self {
        Self::from_corpus(&TokenizedCorpus::build(dataset), field_weights)
    }

    /// Builds the index from an already-tokenized corpus — no re-tokenization,
    /// and the vectors share the corpus's interned token ids.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the corpus arity.
    #[must_use]
    pub fn from_corpus(corpus: &TokenizedCorpus, field_weights: &[f64]) -> Self {
        let _span = crowdjoin_obs::obs_span!(
            "matcher",
            "matcher.index",
            crowdjoin_obs::NO_SHARD,
            records = corpus.num_records(),
        );
        let arity = corpus.arity();
        assert_eq!(field_weights.len(), arity, "one weight per schema field required");
        let n = corpus.num_records();
        let vocab = corpus.vocabulary_size();

        // Pass 1: per-record weighted term counts (zero-weight fields are
        // skipped entirely) and document frequencies over those counts.
        // Occurrences are sorted by token id and aggregated in one sweep —
        // O(k log k) per record with no hashing, regardless of how many
        // distinct tokens a long text field carries.
        let mut doc_freq: Vec<u32> = vec![0; vocab];
        let mut record_counts: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        let mut occurrences: Vec<(u32, f64)> = Vec::new();
        for i in 0..n {
            occurrences.clear();
            for (f, &w) in field_weights.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                occurrences.extend(corpus.field_tokens(i, f).iter().map(|&id| (id, w)));
            }
            occurrences.sort_unstable_by_key(|&(id, _)| id);
            let mut counts: Vec<(u32, f64)> = Vec::new();
            for &(id, w) in &occurrences {
                match counts.last_mut() {
                    Some((last, c)) if *last == id => *c += w,
                    _ => counts.push((id, w)),
                }
            }
            for &(id, _) in &counts {
                doc_freq[id as usize] += 1;
            }
            record_counts.push(counts);
        }

        // Pass 2: tf-idf weights, L2 normalization, postings. (Tokens that
        // only ever appear in zero-weight fields keep df 0 and an unused idf
        // slot; their postings stay empty.)
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (1.0 + n as f64 / df as f64).ln() })
            .collect();
        let mut vectors: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
        let mut postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); vocab];
        for (i, counts) in record_counts.into_iter().enumerate() {
            let mut vec: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(id, tf)| (id, (1.0 + tf.ln()) * idf[id as usize]))
                .collect();
            let norm = vec.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            let mut out = Vec::with_capacity(vec.len());
            if norm > 0.0 {
                vec.sort_unstable_by_key(|&(id, _)| id);
                for (id, w) in vec {
                    let w = (w / norm) as f32;
                    out.push((id, w));
                    postings[id as usize].push((i as u32, w));
                }
            }
            vectors.push(out);
        }
        Self { vectors, postings }
    }

    /// Number of indexed records.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.vectors.len()
    }

    /// Number of token-id slots (the corpus vocabulary size; tokens confined
    /// to zero-weight fields have empty postings).
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Record `i`'s sparse unit vector: sorted `(token_id, weight)` entries.
    #[must_use]
    pub fn vector(&self, i: u32) -> &[(u32, f32)] {
        &self.vectors[i as usize]
    }

    /// Cosine similarity between two indexed records, in `[0, 1]`.
    #[must_use]
    pub fn cosine(&self, a: u32, b: u32) -> f64 {
        let (va, vb) = (&self.vectors[a as usize], &self.vectors[b as usize]);
        let mut i = 0;
        let mut j = 0;
        let mut dot = 0.0f64;
        while i < va.len() && j < vb.len() {
            match va[i].0.cmp(&vb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += va[i].1 as f64 * vb[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }

    /// For record `i`, accumulates cosine scores against every *other* record
    /// sharing at least one token, returning `(record, cosine)` pairs
    /// (unsorted). This is the term-at-a-time similarity-join kernel; the
    /// filtered candidate generator supersedes it on large inputs, but it
    /// remains the reference (and the benchmark baseline) for the
    /// unfiltered inverted-index join.
    #[must_use]
    pub fn accumulate_cosines(&self, i: u32) -> Vec<(u32, f64)> {
        let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
        for &(token, w) in &self.vectors[i as usize] {
            for &(j, wj) in &self.postings[token as usize] {
                if j != i {
                    *acc.entry(j).or_insert(0.0) += w as f64 * wj as f64;
                }
            }
        }
        acc.into_iter().map(|(j, s)| (j, s.clamp(0.0, 1.0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    #[test]
    fn identical_records_cosine_one() {
        let ds = dataset(&["sony tv black", "sony tv black", "canon camera"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!((idx.cosine(0, 1) - 1.0).abs() < 1e-6);
        assert!(idx.cosine(0, 2) < 0.2);
    }

    #[test]
    fn disjoint_records_cosine_zero() {
        let ds = dataset(&["alpha beta", "gamma delta"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        // "zx99" is rare; "tv" appears everywhere. A pair sharing the rare
        // token must outscore a pair sharing only the common one.
        let ds = dataset(&["tv zx99", "tv zx99 extra", "tv other", "tv another", "tv more"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!(idx.cosine(0, 1) > idx.cosine(0, 2));
    }

    #[test]
    fn accumulate_matches_pairwise_cosine() {
        let ds = dataset(&[
            "sony bravia tv",
            "sony tv bravia black",
            "canon eos camera",
            "sony camera",
            "unrelated words here",
        ]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        for i in 0..5u32 {
            let mut acc = idx.accumulate_cosines(i);
            acc.sort_unstable_by_key(|&(j, _)| j);
            for (j, s) in acc {
                assert!((s - idx.cosine(i, j)).abs() < 1e-9, "({i},{j}): {s}");
            }
            // Records with zero shared tokens are absent.
            for j in 0..5u32 {
                if j != i && idx.cosine(i, j) == 0.0 {
                    assert!(
                        !idx.accumulate_cosines(i).iter().any(|&(k, _)| k == j),
                        "({i},{j}) should not appear"
                    );
                }
            }
        }
    }

    #[test]
    fn field_weights_change_scores() {
        let mut table = Table::new(Schema::new(vec!["name", "price"]));
        table.push(Record::new(vec!["sony tv", "100"]));
        table.push(Record::new(vec!["sony tv", "999"]));
        let ds = Dataset { table, entity_of: vec![0, 1], split: None, name: "t".into() };
        let heavy_name = TfIdfIndex::build(&ds, &[1.0, 0.0]);
        let with_price = TfIdfIndex::build(&ds, &[1.0, 1.0]);
        assert!((heavy_name.cosine(0, 1) - 1.0).abs() < 1e-6, "identical names, price ignored");
        assert!(with_price.cosine(0, 1) < 1.0, "prices differ");
    }

    #[test]
    fn from_corpus_matches_build_and_shares_ids() {
        let ds = dataset(&["sony tv", "sony camera", "tv stand"]);
        let corpus = TokenizedCorpus::build(&ds);
        let a = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let b = TfIdfIndex::build(&ds, &[1.0]);
        for i in 0..3u32 {
            assert_eq!(a.vector(i), b.vector(i));
        }
        // Vector entries use the corpus's interned ids.
        let sony = corpus.interner().get("sony").unwrap();
        assert!(a.vector(0).iter().any(|&(id, _)| id == sony));
    }

    #[test]
    #[should_panic(expected = "one weight per schema field")]
    fn wrong_weight_arity_rejected() {
        let ds = dataset(&["a"]);
        let _ = TfIdfIndex::build(&ds, &[1.0, 2.0]);
    }

    #[test]
    fn empty_record_has_empty_vector() {
        let ds = dataset(&["", "something"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
        assert!(idx.accumulate_cosines(0).is_empty());
    }
}
