//! Tf-idf vectors and cosine scoring over a record corpus.
//!
//! Each record becomes a sparse, L2-normalized tf-idf vector over its word
//! tokens (with optional per-field weights). The same inverted index that
//! backs cosine scoring also drives candidate generation: only record pairs
//! sharing at least one token can have non-zero cosine, so one
//! term-at-a-time accumulation pass finds and scores them together (the
//! standard similarity-join trick the paper's machine stage (CrowdER) uses to
//! weed out obviously non-matching pairs).

use crate::tokenize::tokenize_words;
use crowdjoin_records::Dataset;
use crowdjoin_util::FxHashMap;

/// Sparse tf-idf index over a dataset's records.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// Per record: sorted `(token_id, weight)` with L2 norm 1.
    vectors: Vec<Vec<(u32, f32)>>,
    /// Inverted index: token id → `(record, weight)` postings.
    postings: Vec<Vec<(u32, f32)>>,
}

impl TfIdfIndex {
    /// Builds the index over all records of `dataset`.
    ///
    /// `field_weights` scales each schema field's token counts (e.g. weigh a
    /// product name above its price); it must match the schema arity.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the schema arity.
    #[must_use]
    pub fn build(dataset: &Dataset, field_weights: &[f64]) -> Self {
        let arity = dataset.table.schema().arity();
        assert_eq!(field_weights.len(), arity, "one weight per schema field required");
        let n = dataset.len();

        // Pass 1: vocabulary and document frequencies.
        let mut token_ids: FxHashMap<String, u32> = FxHashMap::default();
        let mut doc_freq: Vec<u32> = Vec::new();
        let mut record_counts: Vec<FxHashMap<u32, f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut counts: FxHashMap<u32, f64> = FxHashMap::default();
            for (f, &w) in field_weights.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                for token in tokenize_words(dataset.table.record(i).field(f)) {
                    let next_id = token_ids.len() as u32;
                    let id = *token_ids.entry(token).or_insert(next_id);
                    if id as usize == doc_freq.len() {
                        doc_freq.push(0);
                    }
                    *counts.entry(id).or_insert(0.0) += w;
                }
            }
            for &id in counts.keys() {
                doc_freq[id as usize] += 1;
            }
            record_counts.push(counts);
        }

        // Pass 2: tf-idf weights, L2 normalization, postings.
        let idf: Vec<f64> = doc_freq.iter().map(|&df| (1.0 + n as f64 / df as f64).ln()).collect();
        let mut vectors: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n);
        let mut postings: Vec<Vec<(u32, f32)>> = vec![Vec::new(); doc_freq.len()];
        for (i, counts) in record_counts.into_iter().enumerate() {
            let mut vec: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(id, tf)| (id, (1.0 + tf.ln()) * idf[id as usize]))
                .collect();
            let norm = vec.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
            let mut out = Vec::with_capacity(vec.len());
            if norm > 0.0 {
                vec.sort_unstable_by_key(|&(id, _)| id);
                for (id, w) in vec {
                    let w = (w / norm) as f32;
                    out.push((id, w));
                    postings[id as usize].push((i as u32, w));
                }
            }
            vectors.push(out);
        }
        Self { vectors, postings }
    }

    /// Number of indexed records.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.vectors.len()
    }

    /// Number of distinct tokens.
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Cosine similarity between two indexed records, in `[0, 1]`.
    #[must_use]
    pub fn cosine(&self, a: u32, b: u32) -> f64 {
        let (va, vb) = (&self.vectors[a as usize], &self.vectors[b as usize]);
        let mut i = 0;
        let mut j = 0;
        let mut dot = 0.0f64;
        while i < va.len() && j < vb.len() {
            match va[i].0.cmp(&vb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += va[i].1 as f64 * vb[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }

    /// For record `i`, accumulates cosine scores against every *other* record
    /// sharing at least one token, returning `(record, cosine)` pairs
    /// (unsorted). This is the term-at-a-time similarity-join kernel.
    #[must_use]
    pub fn accumulate_cosines(&self, i: u32) -> Vec<(u32, f64)> {
        let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
        for &(token, w) in &self.vectors[i as usize] {
            for &(j, wj) in &self.postings[token as usize] {
                if j != i {
                    *acc.entry(j).or_insert(0.0) += w as f64 * wj as f64;
                }
            }
        }
        acc.into_iter().map(|(j, s)| (j, s.clamp(0.0, 1.0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    #[test]
    fn identical_records_cosine_one() {
        let ds = dataset(&["sony tv black", "sony tv black", "canon camera"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!((idx.cosine(0, 1) - 1.0).abs() < 1e-6);
        assert!(idx.cosine(0, 2) < 0.2);
    }

    #[test]
    fn disjoint_records_cosine_zero() {
        let ds = dataset(&["alpha beta", "gamma delta"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        // "zx99" is rare; "tv" appears everywhere. A pair sharing the rare
        // token must outscore a pair sharing only the common one.
        let ds = dataset(&["tv zx99", "tv zx99 extra", "tv other", "tv another", "tv more"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!(idx.cosine(0, 1) > idx.cosine(0, 2));
    }

    #[test]
    fn accumulate_matches_pairwise_cosine() {
        let ds = dataset(&[
            "sony bravia tv",
            "sony tv bravia black",
            "canon eos camera",
            "sony camera",
            "unrelated words here",
        ]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        for i in 0..5u32 {
            let mut acc = idx.accumulate_cosines(i);
            acc.sort_unstable_by_key(|&(j, _)| j);
            for (j, s) in acc {
                assert!((s - idx.cosine(i, j)).abs() < 1e-9, "({i},{j}): {s}");
            }
            // Records with zero shared tokens are absent.
            for j in 0..5u32 {
                if j != i && idx.cosine(i, j) == 0.0 {
                    assert!(
                        !idx.accumulate_cosines(i).iter().any(|&(k, _)| k == j),
                        "({i},{j}) should not appear"
                    );
                }
            }
        }
    }

    #[test]
    fn field_weights_change_scores() {
        let mut table = Table::new(Schema::new(vec!["name", "price"]));
        table.push(Record::new(vec!["sony tv", "100"]));
        table.push(Record::new(vec!["sony tv", "999"]));
        let ds = Dataset { table, entity_of: vec![0, 1], split: None, name: "t".into() };
        let heavy_name = TfIdfIndex::build(&ds, &[1.0, 0.0]);
        let with_price = TfIdfIndex::build(&ds, &[1.0, 1.0]);
        assert!((heavy_name.cosine(0, 1) - 1.0).abs() < 1e-6, "identical names, price ignored");
        assert!(with_price.cosine(0, 1) < 1.0, "prices differ");
    }

    #[test]
    #[should_panic(expected = "one weight per schema field")]
    fn wrong_weight_arity_rejected() {
        let ds = dataset(&["a"]);
        let _ = TfIdfIndex::build(&ds, &[1.0, 2.0]);
    }

    #[test]
    fn empty_record_has_empty_vector() {
        let ds = dataset(&["", "something"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
        assert!(idx.accumulate_cosines(0).is_empty());
    }
}
