//! Tf-idf vectors and cosine scoring over a record corpus.
//!
//! Each record becomes a sparse, L2-normalized tf-idf vector over its
//! interned word tokens (with optional per-field weights). Vectors are built
//! from a [`TokenizedCorpus`] — the dataset is tokenized exactly once and the
//! interned ids are shared with the Jaccard path — and the same inverted
//! index that backs cosine scoring also drives candidate generation: only
//! record pairs sharing at least one token can have non-zero cosine, so one
//! term-at-a-time accumulation pass finds and scores them together (the
//! standard similarity-join trick the paper's machine stage (CrowdER) uses to
//! weed out obviously non-matching pairs).

use crate::corpus::TokenizedCorpus;
use crowdjoin_records::Dataset;
use crowdjoin_util::FxHashMap;

/// Sparse tf-idf index over a dataset's records.
///
/// Both the per-record vectors and the inverted index live in contiguous
/// CSR arenas — one flat entry array plus an offset table each — so the
/// similarity join streams cache-line-dense slices instead of chasing one
/// heap allocation per record or token.
#[derive(Debug, Clone)]
pub struct TfIdfIndex {
    /// All records' sorted `(token_id, weight)` entries (L2 norm 1 per
    /// record), record-major. Token ids are the corpus interner's ids.
    vec_entries: Vec<(u32, f32)>,
    /// `vec_entries` offsets: record `i` spans
    /// `vec_bounds[i]..vec_bounds[i+1]`; `num_records + 1` long.
    vec_bounds: Vec<u32>,
    /// Inverted index entries `(record, weight)`, token-major, ascending by
    /// record id within a token.
    post_entries: Vec<(u32, f32)>,
    /// `post_entries` offsets, `vocab + 1` long.
    post_bounds: Vec<u32>,
}

impl TfIdfIndex {
    /// Builds the index over all records of `dataset` (tokenizing the
    /// dataset itself; prefer [`TfIdfIndex::from_corpus`] when a
    /// [`TokenizedCorpus`] already exists).
    ///
    /// `field_weights` scales each schema field's token counts (e.g. weigh a
    /// product name above its price); it must match the schema arity.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the schema arity.
    #[must_use]
    pub fn build(dataset: &Dataset, field_weights: &[f64]) -> Self {
        Self::from_corpus(&TokenizedCorpus::build(dataset), field_weights)
    }

    /// Builds the index from an already-tokenized corpus — no re-tokenization,
    /// and the vectors share the corpus's interned token ids. Equivalent to
    /// [`TfIdfIndex::from_corpus_threaded`] with one thread.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the corpus arity.
    #[must_use]
    pub fn from_corpus(corpus: &TokenizedCorpus, field_weights: &[f64]) -> Self {
        Self::from_corpus_threaded(corpus, field_weights, 1)
    }

    /// [`TfIdfIndex::from_corpus`] on up to `threads` workers (0 = one per
    /// available core).
    ///
    /// Both passes are embarrassingly parallel over records: workers emit
    /// per-chunk arenas that are concatenated in chunk order, so the
    /// record-major layout is byte-identical to the sequential build.
    /// Document frequencies are integer sums over the concatenated count
    /// arena and the posting CSR fill walks records in ascending id order —
    /// neither depends on the worker count, so the whole index is
    /// bit-identical to [`TfIdfIndex::from_corpus`] for every `threads`
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `field_weights.len()` differs from the corpus arity.
    #[must_use]
    pub fn from_corpus_threaded(
        corpus: &TokenizedCorpus,
        field_weights: &[f64],
        threads: usize,
    ) -> Self {
        let _span = crowdjoin_obs::obs_span!(
            "matcher",
            "matcher.index",
            crowdjoin_obs::NO_SHARD,
            records = corpus.num_records(),
        );
        let clock = std::time::Instant::now();
        let arity = corpus.arity();
        assert_eq!(field_weights.len(), arity, "one weight per schema field required");
        let n = corpus.num_records();
        let vocab = corpus.vocabulary_size();
        // Records per work unit (both passes are cheap per record, so
        // chunks are bigger than the probe loop's).
        const CHUNK: usize = 4096;

        // Pass 1: per-record weighted term counts (zero-weight fields are
        // skipped entirely) and document frequencies over those counts.
        // Occurrences are sorted by token id and aggregated in one sweep —
        // O(k log k) per record with no hashing, regardless of how many
        // distinct tokens a long text field carries. Counts live in one
        // flat arena (record `i` spans `count_bounds[i]..count_bounds[i+1]`);
        // workers fill disjoint chunks of it, concatenated in chunk order.
        let counted = crate::par::map_chunks(n, CHUNK, threads, |range| {
            let mut entries: Vec<(u32, f64)> = Vec::new();
            let mut lens: Vec<u32> = Vec::with_capacity(range.len());
            let mut occurrences: Vec<(u32, f64)> = Vec::new();
            for i in range {
                occurrences.clear();
                for (f, &w) in field_weights.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    occurrences.extend(corpus.field_tokens(i, f).iter().map(|&id| (id, w)));
                }
                occurrences.sort_unstable_by_key(|&(id, _)| id);
                let start = entries.len();
                for &(id, w) in &occurrences {
                    // Merge repeats within this record only — never across
                    // the arena boundary into the previous record's last
                    // entry.
                    if entries.len() > start {
                        let last = entries.last_mut().expect("non-empty past start");
                        if last.0 == id {
                            last.1 += w;
                            continue;
                        }
                    }
                    entries.push((id, w));
                }
                lens.push(u32::try_from(entries.len() - start).expect("tf-idf arena overflow"));
            }
            (entries, lens)
        });
        let mut doc_freq: Vec<u32> = vec![0; vocab];
        let mut count_entries: Vec<(u32, f64)> = Vec::new();
        let mut count_bounds: Vec<u32> = Vec::with_capacity(n + 1);
        count_bounds.push(0);
        for (entries, lens) in counted {
            count_entries.extend_from_slice(&entries);
            for len in lens {
                let end = count_bounds.last().expect("non-empty bounds") + len;
                assert!((end as usize) <= count_entries.len(), "tf-idf arena overflow");
                count_bounds.push(end);
            }
        }
        for &(id, _) in &count_entries {
            doc_freq[id as usize] += 1;
        }

        // Pass 2: tf-idf weights, L2 normalization, record-major vector
        // arena, plus per-token posting counts for the CSR fill below.
        // (Tokens that only ever appear in zero-weight fields keep df 0 and
        // an unused idf slot; their postings stay empty.)
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (1.0 + n as f64 / df as f64).ln() })
            .collect();
        let weighted = crate::par::map_chunks(n, CHUNK, threads, |range| {
            let mut entries: Vec<(u32, f32)> = Vec::new();
            let mut lens: Vec<u32> = Vec::with_capacity(range.len());
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            for i in range {
                let lo = count_bounds[i] as usize;
                let hi = count_bounds[i + 1] as usize;
                scratch.clear();
                scratch.extend(
                    count_entries[lo..hi]
                        .iter()
                        .map(|&(id, tf)| (id, (1.0 + tf.ln()) * idf[id as usize])),
                );
                let norm = scratch.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                let start = entries.len();
                if norm > 0.0 {
                    // Counts were aggregated in ascending id order, so the
                    // vector is already sorted.
                    for &(id, w) in &scratch {
                        entries.push((id, (w / norm) as f32));
                    }
                }
                lens.push(u32::try_from(entries.len() - start).expect("tf-idf arena overflow"));
            }
            (entries, lens)
        });
        drop(count_entries);
        let mut vec_entries: Vec<(u32, f32)> = Vec::new();
        let mut vec_bounds: Vec<u32> = Vec::with_capacity(n + 1);
        vec_bounds.push(0);
        let mut post_count: Vec<u32> = vec![0; vocab];
        for (entries, lens) in weighted {
            vec_entries.extend_from_slice(&entries);
            for len in lens {
                let end = vec_bounds.last().expect("non-empty bounds") + len;
                assert!((end as usize) <= vec_entries.len(), "tf-idf arena overflow");
                vec_bounds.push(end);
            }
        }
        for &(id, _) in &vec_entries {
            post_count[id as usize] += 1;
        }

        // CSR fill of the inverted index: offsets from the per-token
        // counts, then one stable sweep over the record-major vectors —
        // records are visited in ascending id order, so each token's
        // postings ascend by record id.
        let mut post_bounds: Vec<u32> = vec![0; vocab + 1];
        for t in 0..vocab {
            post_bounds[t + 1] = post_bounds[t] + post_count[t];
        }
        let mut cursor: Vec<u32> = post_bounds[..vocab].to_vec();
        let mut post_entries: Vec<(u32, f32)> = vec![(0, 0.0); vec_entries.len()];
        for i in 0..n {
            let lo = vec_bounds[i] as usize;
            let hi = vec_bounds[i + 1] as usize;
            for &(id, w) in &vec_entries[lo..hi] {
                let c = &mut cursor[id as usize];
                post_entries[*c as usize] = (i as u32, w);
                *c += 1;
            }
        }
        crowdjoin_obs::counter("matcher.index.us", crowdjoin_obs::NO_SHARD)
            .add(clock.elapsed().as_micros() as u64);
        Self { vec_entries, vec_bounds, post_entries, post_bounds }
    }

    /// Number of indexed records.
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.vec_bounds.len() - 1
    }

    /// Number of token-id slots (the corpus vocabulary size; tokens confined
    /// to zero-weight fields have empty postings).
    #[must_use]
    pub fn vocabulary_size(&self) -> usize {
        self.post_bounds.len() - 1
    }

    /// Record `i`'s sparse unit vector: sorted `(token_id, weight)` entries.
    #[must_use]
    pub fn vector(&self, i: u32) -> &[(u32, f32)] {
        let i = i as usize;
        &self.vec_entries[self.vec_bounds[i] as usize..self.vec_bounds[i + 1] as usize]
    }

    /// Token `t`'s inverted-index postings: `(record, weight)`, ascending
    /// by record id.
    fn postings(&self, t: u32) -> &[(u32, f32)] {
        let t = t as usize;
        &self.post_entries[self.post_bounds[t] as usize..self.post_bounds[t + 1] as usize]
    }

    /// Cosine similarity between two indexed records, in `[0, 1]`.
    #[must_use]
    pub fn cosine(&self, a: u32, b: u32) -> f64 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let mut i = 0;
        let mut j = 0;
        let mut dot = 0.0f64;
        while i < va.len() && j < vb.len() {
            match va[i].0.cmp(&vb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += va[i].1 as f64 * vb[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot.clamp(0.0, 1.0)
    }

    /// For record `i`, accumulates cosine scores against every *other* record
    /// sharing at least one token, returning `(record, cosine)` pairs
    /// (unsorted). This is the term-at-a-time similarity-join kernel; the
    /// filtered candidate generator supersedes it on large inputs, but it
    /// remains the reference (and the benchmark baseline) for the
    /// unfiltered inverted-index join.
    #[must_use]
    pub fn accumulate_cosines(&self, i: u32) -> Vec<(u32, f64)> {
        let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
        for &(token, w) in self.vector(i) {
            for &(j, wj) in self.postings(token) {
                if j != i {
                    *acc.entry(j).or_insert(0.0) += w as f64 * wj as f64;
                }
            }
        }
        acc.into_iter().map(|(j, s)| (j, s.clamp(0.0, 1.0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdjoin_records::{Dataset, Record, Schema, Table};

    fn dataset(names: &[&str]) -> Dataset {
        let mut table = Table::new(Schema::new(vec!["name"]));
        for n in names {
            table.push(Record::new(vec![*n]));
        }
        let n = table.len();
        Dataset { table, entity_of: (0..n as u32).collect(), split: None, name: "t".into() }
    }

    #[test]
    fn identical_records_cosine_one() {
        let ds = dataset(&["sony tv black", "sony tv black", "canon camera"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!((idx.cosine(0, 1) - 1.0).abs() < 1e-6);
        assert!(idx.cosine(0, 2) < 0.2);
    }

    #[test]
    fn disjoint_records_cosine_zero() {
        let ds = dataset(&["alpha beta", "gamma delta"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        // "zx99" is rare; "tv" appears everywhere. A pair sharing the rare
        // token must outscore a pair sharing only the common one.
        let ds = dataset(&["tv zx99", "tv zx99 extra", "tv other", "tv another", "tv more"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert!(idx.cosine(0, 1) > idx.cosine(0, 2));
    }

    #[test]
    fn accumulate_matches_pairwise_cosine() {
        let ds = dataset(&[
            "sony bravia tv",
            "sony tv bravia black",
            "canon eos camera",
            "sony camera",
            "unrelated words here",
        ]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        for i in 0..5u32 {
            let mut acc = idx.accumulate_cosines(i);
            acc.sort_unstable_by_key(|&(j, _)| j);
            for (j, s) in acc {
                assert!((s - idx.cosine(i, j)).abs() < 1e-9, "({i},{j}): {s}");
            }
            // Records with zero shared tokens are absent.
            for j in 0..5u32 {
                if j != i && idx.cosine(i, j) == 0.0 {
                    assert!(
                        !idx.accumulate_cosines(i).iter().any(|&(k, _)| k == j),
                        "({i},{j}) should not appear"
                    );
                }
            }
        }
    }

    #[test]
    fn field_weights_change_scores() {
        let mut table = Table::new(Schema::new(vec!["name", "price"]));
        table.push(Record::new(vec!["sony tv", "100"]));
        table.push(Record::new(vec!["sony tv", "999"]));
        let ds = Dataset { table, entity_of: vec![0, 1], split: None, name: "t".into() };
        let heavy_name = TfIdfIndex::build(&ds, &[1.0, 0.0]);
        let with_price = TfIdfIndex::build(&ds, &[1.0, 1.0]);
        assert!((heavy_name.cosine(0, 1) - 1.0).abs() < 1e-6, "identical names, price ignored");
        assert!(with_price.cosine(0, 1) < 1.0, "prices differ");
    }

    #[test]
    fn from_corpus_matches_build_and_shares_ids() {
        let ds = dataset(&["sony tv", "sony camera", "tv stand"]);
        let corpus = TokenizedCorpus::build(&ds);
        let a = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        let b = TfIdfIndex::build(&ds, &[1.0]);
        for i in 0..3u32 {
            assert_eq!(a.vector(i), b.vector(i));
        }
        // Vector entries use the corpus's interned ids.
        let sony = corpus.interner().get("sony").unwrap();
        assert!(a.vector(0).iter().any(|&(id, _)| id == sony));
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        // > 4096 records so chunk boundaries are genuinely crossed.
        let names: Vec<String> =
            (0..9000).map(|i| format!("tok{} shared{} x{}", i % 311, i % 97, i % 13)).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let corpus = TokenizedCorpus::build(&ds);
        let serial = TfIdfIndex::from_corpus(&corpus, &[1.0]);
        for threads in [2, 4] {
            let par = TfIdfIndex::from_corpus_threaded(&corpus, &[1.0], threads);
            assert_eq!(par.vec_bounds, serial.vec_bounds, "threads {threads}");
            assert_eq!(par.post_bounds, serial.post_bounds, "threads {threads}");
            for (p, s) in par.vec_entries.iter().zip(serial.vec_entries.iter()) {
                assert_eq!(p.0, s.0);
                assert_eq!(p.1.to_bits(), s.1.to_bits(), "threads {threads}");
            }
            for (p, s) in par.post_entries.iter().zip(serial.post_entries.iter()) {
                assert_eq!(p.0, s.0);
                assert_eq!(p.1.to_bits(), s.1.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one weight per schema field")]
    fn wrong_weight_arity_rejected() {
        let ds = dataset(&["a"]);
        let _ = TfIdfIndex::build(&ds, &[1.0, 2.0]);
    }

    #[test]
    fn empty_record_has_empty_vector() {
        let ds = dataset(&["", "something"]);
        let idx = TfIdfIndex::build(&ds, &[1.0]);
        assert_eq!(idx.cosine(0, 1), 0.0);
        assert!(idx.accumulate_cosines(0).is_empty());
    }
}
